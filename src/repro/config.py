"""Global configuration for the WASP reproduction.

:class:`WaspConfig` collects the tunables that the paper either states
explicitly (Section 8.2: ``alpha = 0.8``, ``p_max = 3``, a 40-second
monitoring interval, a 30-second checkpointing interval) or leaves as policy
thresholds (``t_max``, the maximum tolerable adaptation overhead used by the
Figure-6 decision tree).  All experiments build their configuration from
:func:`WaspConfig.paper_defaults` so the reproduction stays faithful by
default while remaining easy to ablate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from .errors import ConfigurationError


@dataclass(frozen=True)
class WaspConfig:
    """Tunable parameters of the WASP controller and its substrates.

    Attributes:
        alpha: Maximum bandwidth-utilization threshold used by the placement
            ILP (Constraints 2 and 3 of Section 4.1).  Must lie in (0, 1).
        p_max: Maximum parallelism a single adaptation round may scale an
            operator to before the policy prefers re-planning (Section 6.2).
        t_max_s: Maximum tolerable adaptation overhead in seconds; if the
            estimated state-migration time exceeds it the policy scales out
            and partitions the state instead (Sections 6.2 and 8.7.2).
        monitor_interval_s: Period of the global metric monitor / adaptation
            loop in seconds (Section 8.2 uses 40 s "to allow any adapted
            query to stabilize").
        checkpoint_interval_s: Localized checkpointing period (Section 8.3).
        tick_s: Simulation tick length in seconds.
        slo_s: Latency SLO used by the Degrade baseline (Section 8.4 sets
            10 s).
        backlog_health_s: Queueing delay below which an execution is still
            considered healthy; absorbs transient workload spikes, which the
            paper explicitly ignores (Section 7).
        waste_utilization: Utilization threshold below which a stage is
            flagged as wasteful and considered for scale-down (Section 4.2).
        scale_down_step: Number of tasks removed per scale-down iteration;
            the paper argues for a gradual reduction of 1 per iteration.
        max_scale_out_per_round: Cap on additional tasks acquired per
            adaptation round, preventing resource hoarding (Section 6.2).
        estimation_error: Relative error injected into the WAN monitor's
            bandwidth measurements; the alpha headroom must absorb it.
        seed: Master seed from which every component RNG stream is derived.
    """

    alpha: float = 0.8
    p_max: int = 3
    t_max_s: float = 30.0
    monitor_interval_s: float = 40.0
    checkpoint_interval_s: float = 30.0
    tick_s: float = 1.0
    slo_s: float = 10.0
    backlog_health_s: float = 2.0
    waste_utilization: float = 0.5
    scale_down_step: int = 1
    max_scale_out_per_round: int = 4
    estimation_error: float = 0.0
    reconfig_base_overhead_s: float = 2.0
    replan_deploy_overhead_s: float = 8.0
    replan_cooldown_s: float = 120.0
    #: Route state migrations through the best single relay site when that
    #: beats the direct link (bulk transfers only; see network/relay.py).
    migration_relays: bool = False
    #: Transactional adaptation: how often a rolled-back action is retried
    #: against re-measured bandwidth before falling through the technique
    #: chain (scale-out with state partitioning, then abandoning state).
    adaptation_max_retries: int = 2
    #: Simulated-time penalty added to the transition per retry attempt
    #: (bounded backoff: attempt k pays k * backoff on top of the transfer).
    adaptation_retry_backoff_s: float = 5.0
    #: Engine backend: "reference" executes the per-parcel FluidQueue loops
    #: in :mod:`repro.engine.runtime`; "dense" runs the numpy
    #: structure-of-arrays kernel in :mod:`repro.engine.dense`, converting
    #: to/from the reference representation only at adaptation boundaries.
    engine_backend: str = "reference"
    #: Age resolution of the dense backend's bucketed queues: each queue
    #: keeps this many tick-wide age buckets; events older than the window
    #: collapse into the last bucket (their exact mean generation time is
    #: preserved, so delay metrics stay exact).
    dense_age_buckets: int = 16
    seed: int = 20201207  # Middleware '20 started December 7, 2020.

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1), got {self.alpha}"
            )
        if self.p_max < 1:
            raise ConfigurationError(f"p_max must be >= 1, got {self.p_max}")
        if self.t_max_s <= 0:
            raise ConfigurationError(f"t_max_s must be > 0, got {self.t_max_s}")
        if self.monitor_interval_s <= 0:
            raise ConfigurationError(
                f"monitor_interval_s must be > 0, got {self.monitor_interval_s}"
            )
        if self.checkpoint_interval_s <= 0:
            raise ConfigurationError(
                "checkpoint_interval_s must be > 0, got "
                f"{self.checkpoint_interval_s}"
            )
        if self.tick_s <= 0:
            raise ConfigurationError(f"tick_s must be > 0, got {self.tick_s}")
        if self.slo_s <= 0:
            raise ConfigurationError(f"slo_s must be > 0, got {self.slo_s}")
        if not 0.0 <= self.waste_utilization < 1.0:
            raise ConfigurationError(
                "waste_utilization must be in [0, 1), got "
                f"{self.waste_utilization}"
            )
        if self.scale_down_step < 1:
            raise ConfigurationError(
                f"scale_down_step must be >= 1, got {self.scale_down_step}"
            )
        if self.max_scale_out_per_round < 1:
            raise ConfigurationError(
                "max_scale_out_per_round must be >= 1, got "
                f"{self.max_scale_out_per_round}"
            )
        if self.estimation_error < 0:
            raise ConfigurationError(
                f"estimation_error must be >= 0, got {self.estimation_error}"
            )
        if self.reconfig_base_overhead_s < 0:
            raise ConfigurationError(
                "reconfig_base_overhead_s must be >= 0, got "
                f"{self.reconfig_base_overhead_s}"
            )
        if self.replan_deploy_overhead_s < 0:
            raise ConfigurationError(
                "replan_deploy_overhead_s must be >= 0, got "
                f"{self.replan_deploy_overhead_s}"
            )
        if self.replan_cooldown_s < 0:
            raise ConfigurationError(
                "replan_cooldown_s must be >= 0, got "
                f"{self.replan_cooldown_s}"
            )
        if self.adaptation_max_retries < 0:
            raise ConfigurationError(
                "adaptation_max_retries must be >= 0, got "
                f"{self.adaptation_max_retries}"
            )
        if self.adaptation_retry_backoff_s < 0:
            raise ConfigurationError(
                "adaptation_retry_backoff_s must be >= 0, got "
                f"{self.adaptation_retry_backoff_s}"
            )
        if self.engine_backend not in ("reference", "dense"):
            raise ConfigurationError(
                "engine_backend must be 'reference' or 'dense', got "
                f"{self.engine_backend!r}"
            )
        if self.dense_age_buckets < 4:
            raise ConfigurationError(
                f"dense_age_buckets must be >= 4, got {self.dense_age_buckets}"
            )

    @classmethod
    def paper_defaults(cls) -> "WaspConfig":
        """Return the configuration used throughout Section 8."""
        return cls()

    def with_overrides(self, **overrides: Any) -> "WaspConfig":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides)


DEFAULT_CONFIG = WaspConfig.paper_defaults()

"""WAN-aware task placement (Section 4.1, Equations 1-5).

Given a stage with parallelism ``p``, the placement problem chooses how many
tasks ``p[s]`` to run at each site ``s``:

    min   sum_s p[s] * (l(u -> s) + l(s -> d))        for all u, d     (1)
    s.t.  (p[s] / p) * lambda_I_from_u  <  alpha * B(u -> s)           (2)
          (p[s] / p) * lambda_O_to_d    <  alpha * B(s -> d)           (3)
          0 <= p[s] <= A[s]                                            (4)
          sum_s p[s] = p                                               (5)

The paper solves this with Gurobi.  We exploit the structure instead: for a
*single* stage with its upstream and downstream deployments fixed (which is
exactly how WASP re-assigns, one stage at a time), constraints (2)-(4) are
independent per-site upper bounds and the objective is linear with identical
unit items, so sorting sites by their latency coefficient and filling
greedily is provably optimal (exchange argument: swapping any task from a
cheaper feasible site to a costlier one never helps).  A
:func:`solve_with_milp` cross-check via ``scipy.optimize.milp`` is provided
and exercised by the test suite to guard the reduction.

Refinement over the paper's formulation: constraint (2) is applied per
upstream *flow* - the traffic on link ``u -> s`` is only the share of ``u``'s
output routed to ``s``, not the stage's entire input - which is the
physically binding form (the paper's text describes exactly this splitting in
Figure 4).  Local flows (``u == s``) consume no WAN bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol

from ..errors import InfeasiblePlacementError, PlacementError
from ..engine.runtime import MBIT_BYTES


class NetworkView(Protocol):
    """What placement needs to know about the network (monitor or topology)."""

    def bandwidth_mbps(self, src: str, dst: str) -> float: ...

    def latency_ms(self, src: str, dst: str) -> float: ...


@dataclass(frozen=True)
class UpstreamFlow:
    """Traffic offered by one upstream site towards the stage being placed.

    Attributes:
        site: Upstream site.
        eps: Expected events/second leaving that site for this stage
            (lambda-hat based, Section 3.3).
        event_bytes: Wire size of those events.
    """

    site: str
    eps: float
    event_bytes: float


@dataclass(frozen=True)
class DownstreamDemand:
    """Where the stage's output must go.

    Attributes:
        site: Downstream site hosting consumer tasks.
        fraction: Fraction of the stage's output routed to that site
            (task-count share under balanced partitioning).
        eps: Total expected output rate of the stage being placed.
        event_bytes: Wire size of the stage's output events.
    """

    site: str
    fraction: float
    eps: float
    event_bytes: float


@dataclass(frozen=True)
class PlacementProblem:
    """One stage-placement instance.

    ``relaxed`` drops the bandwidth constraints (2)-(3), keeping only slot
    capacity and the latency objective.  The initial deployment falls back
    to it when no bandwidth-feasible placement exists - a query must deploy
    *somewhere* and rely on backpressure - whereas adaptation treats the
    infeasibility itself as the signal to scale out (Section 6.2).
    """

    parallelism: int
    upstream: list[UpstreamFlow]
    downstream: list[DownstreamDemand]
    available_slots: dict[str, int]
    alpha: float = 0.8
    relaxed: bool = False
    #: Events/second one task must process (lambda_hat_I / p under balanced
    #: partitioning).  Combined with per-site task rates it excludes sites
    #: whose (possibly straggling) slots cannot keep up.
    per_task_demand_eps: float = 0.0
    #: Per-site achievable task rate in stage-input events/second
    #: (effective slot rate / stage cost).  None disables the check.
    site_task_rate_eps: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise PlacementError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if not 0 < self.alpha < 1:
            raise PlacementError(f"alpha must be in (0, 1), got {self.alpha}")
        if not self.available_slots:
            raise PlacementError("no candidate sites supplied")


@dataclass(frozen=True)
class PlacementSolution:
    """Solved assignment: tasks per site plus the objective value."""

    assignment: dict[str, int]
    cost: float
    per_site_cost: dict[str, float] = field(default_factory=dict)

    def sites(self) -> list[str]:
        return sorted(s for s, n in self.assignment.items() if n > 0)

    def total_tasks(self) -> int:
        return sum(self.assignment.values())


def site_cost_ms(
    site: str,
    problem: PlacementProblem,
    network: NetworkView,
) -> float:
    """Latency coefficient of hosting one task at ``site`` (Equation 1).

    The upstream/downstream latencies are weighted by traffic share so that
    the objective reflects the delay experienced by the data stream rather
    than treating a trickle and a torrent alike.
    """
    total_in = sum(f.eps for f in problem.upstream)
    cost = 0.0
    for flow in problem.upstream:
        weight = flow.eps / total_in if total_in > 0 else 1.0 / max(
            1, len(problem.upstream)
        )
        cost += weight * network.latency_ms(flow.site, site)
    for demand in problem.downstream:
        cost += demand.fraction * network.latency_ms(site, demand.site)
    return cost


def per_site_capacity(
    site: str,
    problem: PlacementProblem,
    network: NetworkView,
) -> int:
    """Maximum tasks placeable at ``site`` under constraints (2)-(4).

    Constraint (2): the flow ``u -> site`` is ``flow.eps * p[s]/p``; it must
    stay below ``alpha * B(u -> site)``, giving
    ``p[s] <= alpha * B * p / flow_rate`` per upstream.  Constraint (3) is
    symmetric for downstream demands.  Strict inequality in the paper is
    honoured by a tiny epsilon shave.
    """
    p = problem.parallelism
    cap = float(problem.available_slots.get(site, 0))
    if problem.relaxed:
        return max(0, int(cap))
    if (
        problem.site_task_rate_eps is not None
        and problem.per_task_demand_eps > 0
    ):
        # A task placed here must process its balanced share; a straggling
        # or weak site that cannot keep up hosts no tasks at all.
        rate = problem.site_task_rate_eps.get(site, float("inf"))
        if rate < problem.per_task_demand_eps:
            return 0
    eps_shave = 1e-9
    for flow in problem.upstream:
        if flow.site == site or flow.eps <= 0:
            continue
        bw_eps = (
            network.bandwidth_mbps(flow.site, site)
            * MBIT_BYTES
            / flow.event_bytes
        )
        limit = problem.alpha * bw_eps * p / flow.eps
        # A vanishing flow (or unbounded link) makes the quotient overflow
        # to inf: the constraint simply does not bind.
        if math.isfinite(limit):
            cap = min(cap, math.floor(limit - eps_shave))
    for demand in problem.downstream:
        if demand.site == site:
            continue
        out_to_d = demand.eps * demand.fraction
        if out_to_d <= 0:
            continue
        bw_eps = (
            network.bandwidth_mbps(site, demand.site)
            * MBIT_BYTES
            / demand.event_bytes
        )
        limit = problem.alpha * bw_eps * p / out_to_d
        if math.isfinite(limit):
            cap = min(cap, math.floor(limit - eps_shave))
    return max(0, int(cap))


def solve_placement(
    problem: PlacementProblem,
    network: NetworkView,
) -> PlacementSolution:
    """Solve the placement ILP via the greedy reduction.

    Raises:
        InfeasiblePlacementError: If the per-site capacities cannot host all
            ``p`` tasks - the signal the adaptation policy uses to fall back
            to operator scaling (Section 6.2).
    """
    costs = {
        site: site_cost_ms(site, problem, network)
        for site in problem.available_slots
    }
    caps = {
        site: per_site_capacity(site, problem, network)
        for site in problem.available_slots
    }
    if sum(caps.values()) < problem.parallelism:
        raise InfeasiblePlacementError(
            f"cannot place {problem.parallelism} tasks: per-site capacities "
            f"{caps} admit only {sum(caps.values())}"
        )
    assignment: dict[str, int] = {}
    remaining = problem.parallelism
    for site in sorted(problem.available_slots, key=lambda s: (costs[s], s)):
        if remaining == 0:
            break
        take = min(caps[site], remaining)
        if take > 0:
            assignment[site] = take
            remaining -= take
    total_cost = sum(costs[s] * n for s, n in assignment.items())
    return PlacementSolution(
        assignment=assignment, cost=total_cost, per_site_cost=costs
    )


def max_placeable_tasks(
    problem: PlacementProblem,
    network: NetworkView,
) -> int:
    """Upper bound on parallelism the network/slots admit (for scale-out)."""
    return sum(
        per_site_capacity(site, problem, network)
        for site in problem.available_slots
    )


def solve_with_milp(
    problem: PlacementProblem,
    network: NetworkView,
) -> PlacementSolution:
    """Reference MILP solution via scipy, used to cross-check the greedy.

    Solves ``min c.x`` subject to ``0 <= x[s] <= cap[s]`` and
    ``sum x = p`` with integrality, which is the full Equations 1-5 system
    after folding the per-site bandwidth constraints into ``cap``.
    """
    import numpy as np
    from scipy.optimize import Bounds, LinearConstraint, milp

    sites = sorted(problem.available_slots)
    costs = np.array(
        [site_cost_ms(site, problem, network) for site in sites]
    )
    caps = np.array(
        [per_site_capacity(site, problem, network) for site in sites],
        dtype=float,
    )
    if caps.sum() < problem.parallelism:
        raise InfeasiblePlacementError(
            f"cannot place {problem.parallelism} tasks (milp)"
        )
    constraint = LinearConstraint(
        np.ones((1, len(sites))), problem.parallelism, problem.parallelism
    )
    result = milp(
        c=costs,
        constraints=[constraint],
        integrality=np.ones(len(sites)),
        bounds=Bounds(0, caps),
    )
    if not result.success:
        raise InfeasiblePlacementError(f"milp failed: {result.message}")
    assignment = {
        site: int(round(x))
        for site, x in zip(sites, result.x)
        if round(x) > 0
    }
    return PlacementSolution(
        assignment=assignment,
        cost=float(result.fun),
        per_site_cost={s: float(c) for s, c in zip(sites, costs)},
    )

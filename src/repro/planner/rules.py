"""Environment-independent logical plan rewrites.

Before evaluating placement-dependent alternatives, the Query Planner
applies rewrites that are beneficial regardless of the runtime environment,
"similar to query optimization in the context of RDBMS (e.g., pushing filter
operation upstream)" (Section 4.3).  Each rule is a pure function
``LogicalPlan -> LogicalPlan`` returning a new plan (the input is never
mutated); :func:`optimize` applies all rules to a fixed point.

Without per-attribute schemas, the rules implemented here are the structural
ones that are safe universally:

* **filter-below-union** - a filter consuming a union distributes to each
  union input, reducing the rate crossing the (potentially wide-area) link
  into the union;
* **merge-consecutive-filters** - adjacent filters fuse into one with the
  product selectivity;
* **prune-noop-maps** - identity maps (selectivity 1, no size change) that
  merely relay events are removed.

Pushing filters into *source* stages is handled by operator chaining in the
physical plan (:mod:`repro.engine.physical`), so a filter adjacent to a
source already executes inside the source's site.
"""

from __future__ import annotations

from typing import Callable

from ..engine.logical import LogicalPlan
from ..engine.operators import OperatorKind, OperatorSpec

Rule = Callable[[LogicalPlan], LogicalPlan]


def _rebuild(
    plan: LogicalPlan,
    operators: dict[str, OperatorSpec],
    edges: list[tuple[str, str]],
) -> LogicalPlan:
    return LogicalPlan.from_edges(plan.name, operators.values(), edges)


def push_filter_below_union(plan: LogicalPlan) -> LogicalPlan:
    """Rewrite ``union -> filter`` into per-branch filters feeding the union.

    The filter must be the union's only consumer-side transformation (single
    upstream) and stateless; one clone is created per union input.
    """
    for op in plan.topological():
        if op.kind is not OperatorKind.FILTER or op.stateful:
            continue
        upstream = plan.upstream(op.name)
        if len(upstream) != 1 or upstream[0].kind is not OperatorKind.UNION:
            continue
        union_op = upstream[0]
        # Only safe if the filter is the union's sole consumer; otherwise
        # other consumers would see filtered data.
        if len(plan.downstream(union_op.name)) != 1:
            continue

        operators = dict(plan.operators)
        edges = [e for e in plan.edges]
        union_inputs = [u.name for u in plan.upstream(union_op.name)]
        # Remove old edges: inputs -> union, union -> filter.
        edges = [
            e
            for e in edges
            if e not in {(u, union_op.name) for u in union_inputs}
            and e != (union_op.name, op.name)
        ]
        # The union now feeds the filter's consumers directly.
        filter_consumers = [d.name for d in plan.downstream(op.name)]
        edges = [e for e in edges if e[0] != op.name]
        for consumer in filter_consumers:
            edges.append((union_op.name, consumer))
        # Clone the filter onto each branch.
        del operators[op.name]
        for i, branch in enumerate(union_inputs):
            clone = OperatorSpec(
                name=f"{op.name}@{branch}",
                kind=OperatorKind.FILTER,
                selectivity=op.selectivity,
                cost=op.cost,
                event_bytes=op.event_bytes,
            )
            operators[clone.name] = clone
            edges.append((branch, clone.name))
            edges.append((clone.name, union_op.name))
        return _rebuild(plan, operators, edges)
    return plan


def merge_consecutive_filters(plan: LogicalPlan) -> LogicalPlan:
    """Fuse ``filter -> filter`` chains into a single filter."""
    for op in plan.topological():
        if op.kind is not OperatorKind.FILTER:
            continue
        downstream = plan.downstream(op.name)
        if len(downstream) != 1:
            continue
        succ = downstream[0]
        if succ.kind is not OperatorKind.FILTER:
            continue
        if len(plan.upstream(succ.name)) != 1:
            continue
        operators = dict(plan.operators)
        edges = list(plan.edges)
        merged = OperatorSpec(
            name=op.name,
            kind=OperatorKind.FILTER,
            selectivity=op.selectivity * succ.selectivity,
            cost=op.cost + succ.cost * op.selectivity,
            event_bytes=succ.event_bytes,
        )
        operators[op.name] = merged
        del operators[succ.name]
        new_edges = []
        for src, dst in edges:
            if (src, dst) == (op.name, succ.name):
                continue
            if src == succ.name:
                new_edges.append((op.name, dst))
            else:
                new_edges.append((src, dst))
        return _rebuild(plan, operators, new_edges)
    return plan


def prune_noop_maps(plan: LogicalPlan) -> LogicalPlan:
    """Remove identity maps: selectivity 1 whose output size equals input.

    A map is a no-op relay when it neither filters nor changes event size;
    its upstreams connect directly to its downstreams.
    """
    for op in plan.topological():
        if op.kind is not OperatorKind.MAP or op.stateful:
            continue
        if op.selectivity != 1.0:
            continue
        upstream = plan.upstream(op.name)
        if len(upstream) != 1:
            continue
        if abs(upstream[0].event_bytes - op.event_bytes) > 1e-9:
            continue
        operators = dict(plan.operators)
        del operators[op.name]
        edges = []
        for src, dst in plan.edges:
            if dst == op.name:
                continue
            if src == op.name:
                edges.append((upstream[0].name, dst))
            else:
                edges.append((src, dst))
        edges = list(dict.fromkeys(edges))
        return _rebuild(plan, operators, edges)
    return plan


ALL_RULES: tuple[Rule, ...] = (
    push_filter_below_union,
    merge_consecutive_filters,
    prune_noop_maps,
)


def optimize(plan: LogicalPlan, rules: tuple[Rule, ...] = ALL_RULES,
             max_passes: int = 20) -> LogicalPlan:
    """Apply all rules to a fixed point (bounded by ``max_passes``)."""
    current = plan
    for _ in range(max_passes):
        changed = False
        for rule in rules:
            rewritten = rule(current)
            if rewritten is not current:
                current = rewritten
                changed = True
        if not changed:
            break
    return current

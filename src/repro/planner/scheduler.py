"""Scheduler: deploys physical plans onto the topology (Section 3.1).

The scheduler is deliberately mechanical: it owns slot accounting and task
lists, nothing else.  Deciding *where* tasks go is the placement solver's
job (:mod:`repro.planner.placement`); deciding *when and what* to change is
the Reconfiguration Manager's (:mod:`repro.core.controller`).  Keeping the
mutation surface small makes every adaptation action auditable: each one is
a diff of (stage, site, count) allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.physical import PhysicalPlan, Stage
from ..errors import InsufficientSlotsError, SchedulingError
from ..network.topology import Topology


@dataclass(frozen=True)
class AssignmentDiff:
    """The slot-level effect of one stage mutation."""

    stage: str
    added: dict[str, int]
    removed: dict[str, int]

    @property
    def moved_pairs(self) -> int:
        return min(sum(self.added.values()), sum(self.removed.values()))


class Scheduler:
    """Allocates slots and maintains task lists for one running query."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._initial_slots: int | None = None

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def initial_slots(self) -> int | None:
        """Slot count right after the initial deployment (baseline for the
        "extra slots" series of Figure 10c)."""
        return self._initial_slots

    def extra_slots(self) -> int:
        if self._initial_slots is None:
            return 0
        return self._topology.total_used_slots() - self._initial_slots

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #

    def deploy(
        self, plan: PhysicalPlan, assignments: dict[str, dict[str, int]]
    ) -> None:
        """Initial deployment: create all tasks and claim their slots."""
        for stage in plan.topological_stages():
            assignment = assignments.get(stage.name)
            if not assignment:
                raise SchedulingError(
                    f"no assignment for stage {stage.name!r}"
                )
            if stage.tasks:
                raise SchedulingError(
                    f"stage {stage.name!r} already has tasks deployed"
                )
            self._apply_stage_assignment(stage, assignment)
            stage.initial_parallelism = stage.parallelism
        if self._initial_slots is None:
            self._initial_slots = self._topology.total_used_slots()

    def undeploy(self, plan: PhysicalPlan) -> None:
        """Tear down every task of the plan and release its slots."""
        for stage in plan.topological_stages():
            for task in list(stage.tasks):
                self._release_site(task.site)
            stage.clear_tasks()

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def apply_assignment(
        self, stage: Stage, new_assignment: dict[str, int]
    ) -> AssignmentDiff:
        """Reshape a stage to ``new_assignment`` (re-assign / scale).

        Tasks that can stay at their original sites are not touched
        (Section 4.1: only ``S - S'`` is migrated).  Returns the diff so the
        caller can plan state migrations for the moved tasks.
        """
        current = stage.placement()
        added: dict[str, int] = {}
        removed: dict[str, int] = {}
        for site in sorted(set(current) | set(new_assignment)):
            delta = new_assignment.get(site, 0) - current.get(site, 0)
            if delta > 0:
                added[site] = delta
            elif delta < 0:
                removed[site] = -delta
        # Allocate first so a failure leaves the stage intact.
        for site, count in added.items():
            try:
                self._topology.site(site).allocate(count)
            except InsufficientSlotsError:
                # Roll back what this call already allocated.
                for done_site, done_count in added.items():
                    if done_site == site:
                        break
                    self._topology.site(done_site).release(done_count)
                raise
        for site, count in removed.items():
            for _ in range(count):
                stage.remove_task_at(site)
            self._release_site(site, count)
        for site, count in added.items():
            for _ in range(count):
                stage.add_task(site)
        return AssignmentDiff(stage=stage.name, added=added, removed=removed)

    def add_tasks(self, stage: Stage, assignment: dict[str, int]) -> AssignmentDiff:
        """Scale up/out: add tasks on top of the existing placement."""
        target = stage.placement()
        for site, count in assignment.items():
            target[site] = target.get(site, 0) + count
        return self.apply_assignment(stage, target)

    def remove_task(self, stage: Stage, site: str) -> AssignmentDiff:
        """Scale down by one task at ``site`` (Section 4.2 removes one per
        iteration, prioritizing performance stability)."""
        target = stage.placement()
        if target.get(site, 0) < 1:
            raise SchedulingError(
                f"stage {stage.name!r} has no task at {site!r} to remove"
            )
        target[site] -= 1
        if target[site] == 0:
            del target[site]
        if not target:
            raise SchedulingError(
                f"cannot remove the last task of stage {stage.name!r}"
            )
        return self.apply_assignment(stage, target)

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #

    def evacuate_failed_sites(self, plan: PhysicalPlan) -> dict[str, int]:
        """Drop tasks stranded on failed sites; returns lost tasks per stage.

        Slots on a failed site are released wholesale (the site lost them
        anyway); the controller is responsible for re-deploying capacity
        after recovery.
        """
        lost: dict[str, int] = {}
        failed_sites = {s.name for s in self._topology if s.failed}
        if not failed_sites:
            return lost
        for stage in plan.topological_stages():
            stranded = [t for t in stage.tasks if t.site in failed_sites]
            for task in stranded:
                stage.remove_task(task)
                lost[stage.name] = lost.get(stage.name, 0) + 1
        for site_name in failed_sites:
            self._topology.site(site_name).release_all()
        return lost

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _apply_stage_assignment(
        self, stage: Stage, assignment: dict[str, int]
    ) -> None:
        for site, count in sorted(assignment.items()):
            if count < 0:
                raise SchedulingError(
                    f"negative task count for {stage.name!r} at {site!r}"
                )
            self._topology.site(site).allocate(count)
            for _ in range(count):
                stage.add_task(site)

    def _release_site(self, site: str, count: int = 1) -> None:
        site_obj = self._topology.site(site)
        # A failed site already had its slots revoked wholesale.
        if not site_obj.failed and site_obj.used_slots >= count:
            site_obj.release(count)

"""A small branch-and-bound integer linear program solver.

The WASP prototype calls Gurobi for its placement ILP (Section 8.1).  Gurobi
is not available offline, so this module provides a self-contained
branch-and-bound solver over scipy's LP relaxation (``linprog``/HiGHS).  The
production code path uses the greedy reduction in
:mod:`repro.planner.placement`; this solver exists as the Gurobi stand-in for
general instances and as an independent oracle in the test suite.

The solver handles::

    min  c . x
    s.t. A_ub . x <= b_ub
         A_eq . x == b_eq
         lb <= x <= ub,  x integer

with best-bound pruning and most-fractional branching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..errors import PlacementError


@dataclass(frozen=True)
class IntegerProgram:
    """A bounded integer linear program in standard minimization form."""

    c: np.ndarray
    a_ub: np.ndarray | None = None
    b_ub: np.ndarray | None = None
    a_eq: np.ndarray | None = None
    b_eq: np.ndarray | None = None
    lb: np.ndarray | None = None
    ub: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.c)
        if n == 0:
            raise PlacementError("integer program has no variables")
        if self.a_ub is not None and self.a_ub.shape[1] != n:
            raise PlacementError("a_ub column count != len(c)")
        if self.a_eq is not None and self.a_eq.shape[1] != n:
            raise PlacementError("a_eq column count != len(c)")
        if self.lb is not None and len(self.lb) != n:
            raise PlacementError("lb length != len(c)")
        if self.ub is not None and len(self.ub) != n:
            raise PlacementError("ub length != len(c)")

    @property
    def n_vars(self) -> int:
        return len(self.c)


@dataclass(frozen=True)
class IlpSolution:
    """An optimal integer solution."""

    x: np.ndarray
    objective: float
    nodes_explored: int


class Infeasible(PlacementError):
    """No integer point satisfies the constraints."""


_INT_TOL = 1e-6


def _solve_relaxation(
    program: IntegerProgram,
    extra_lb: np.ndarray,
    extra_ub: np.ndarray,
) -> tuple[np.ndarray, float] | None:
    """LP relaxation under tightened bounds; None if infeasible."""
    bounds = list(zip(extra_lb, extra_ub))
    if any(lo > hi + 1e-12 for lo, hi in bounds):
        return None
    result = linprog(
        c=program.c,
        A_ub=program.a_ub,
        b_ub=program.b_ub,
        A_eq=program.a_eq,
        b_eq=program.b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    return result.x, float(result.fun)


def solve_branch_and_bound(
    program: IntegerProgram, *, max_nodes: int = 100_000
) -> IlpSolution:
    """Solve the integer program exactly.

    Raises:
        Infeasible: When no integer-feasible point exists.
        PlacementError: When the node budget is exhausted (pathological
            instances only; placement instances explore a handful of nodes).
    """
    n = program.n_vars
    lb = program.lb if program.lb is not None else np.zeros(n)
    ub = program.ub if program.ub is not None else np.full(n, np.inf)

    best_x: np.ndarray | None = None
    best_obj = math.inf
    nodes = 0
    # Stack of (lb, ub) bound pairs - depth-first keeps memory small while
    # best-bound pruning keeps the tree shallow.
    stack: list[tuple[np.ndarray, np.ndarray]] = [(lb.copy(), ub.copy())]

    while stack:
        node_lb, node_ub = stack.pop()
        nodes += 1
        if nodes > max_nodes:
            raise PlacementError(
                f"branch-and-bound exceeded {max_nodes} nodes"
            )
        relaxed = _solve_relaxation(program, node_lb, node_ub)
        if relaxed is None:
            continue
        x, obj = relaxed
        if obj >= best_obj - 1e-9:
            continue  # bound: cannot beat incumbent
        frac = np.abs(x - np.round(x))
        fractional = np.where(frac > _INT_TOL)[0]
        if len(fractional) == 0:
            x_int = np.round(x)
            best_x = x_int
            best_obj = float(program.c @ x_int)
            continue
        # Branch on the most fractional variable.
        j = int(fractional[np.argmax(frac[fractional])])
        floor_v = math.floor(x[j])
        # Explore the branch closer to the relaxation first (pushed last).
        lo_lb, lo_ub = node_lb.copy(), node_ub.copy()
        lo_ub[j] = floor_v
        hi_lb, hi_ub = node_lb.copy(), node_ub.copy()
        hi_lb[j] = floor_v + 1
        if x[j] - floor_v > 0.5:
            stack.append((lo_lb, lo_ub))
            stack.append((hi_lb, hi_ub))
        else:
            stack.append((hi_lb, hi_ub))
            stack.append((lo_lb, lo_ub))

    if best_x is None:
        raise Infeasible("no integer-feasible solution")
    return IlpSolution(x=best_x, objective=best_obj, nodes_explored=nodes)

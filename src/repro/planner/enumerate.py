"""Alternative-plan enumeration (Section 4.3).

Evaluating every combination of logical and physical plans is NP-hard, so
the Query Planner "only consider[s] the ordering of aggregation operators
since they are typically the ones that involve cross-site data transmission"
(Sections 4.3 and 8.1).  Two families of alternatives are enumerated:

* **join trees** - for a commutative multi-way join (Figure 5), every shape
  of binary join tree over the input branches.  Join operator names are
  canonical in the set of sources they cover (``join{A+B}``), so two plans
  that join the same subset share the operator name - exactly the
  common-sub-plan property state preservation needs.
* **aggregation groupings** - for a windowed aggregation over many
  geo-distributed branches, the choice of which branches pre-aggregate
  together before the final aggregation.  Groupings are supplied by the
  caller (typically region-based); partial-aggregate names are canonical in
  their member set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..engine.logical import LogicalPlan
from ..engine.operators import OperatorSpec, sink as make_sink
from ..errors import PlanError

#: A branch is a tiny sub-plan fragment feeding the join/aggregation: its
#: operators, internal edges, and the name of its output operator.
@dataclass(frozen=True)
class Branch:
    """One input branch (e.g. a source with chained filters)."""

    key: str
    operators: tuple[OperatorSpec, ...]
    edges: tuple[tuple[str, str], ...]
    output: str


def branch_from_ops(key: str, ops: Sequence[OperatorSpec]) -> Branch:
    """Build a linear branch from an operator chain (first feeds second...)."""
    if not ops:
        raise PlanError("branch needs at least one operator")
    edges = tuple(
        (ops[i].name, ops[i + 1].name) for i in range(len(ops) - 1)
    )
    return Branch(key=key, operators=tuple(ops), edges=edges, output=ops[-1].name)


# --------------------------------------------------------------------------- #
# Join trees
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class JoinTree:
    """A binary join tree over branch keys."""

    leaves: frozenset[str]
    left: "JoinTree | None" = None
    right: "JoinTree | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def canonical_name(self) -> str:
        return "join{" + "+".join(sorted(self.leaves)) + "}"

    def subtrees(self) -> list["JoinTree"]:
        """All internal nodes, children before parents."""
        if self.is_leaf:
            return []
        assert self.left is not None and self.right is not None
        return self.left.subtrees() + self.right.subtrees() + [self]


def enumerate_join_trees(keys: Sequence[str]) -> list[JoinTree]:
    """All unordered binary trees over ``keys`` (commutative joins).

    The count is the double factorial (2k-3)!!: 1 tree for 2 keys, 3 for 3,
    15 for 4.  Trees are deduplicated structurally (left/right order is
    irrelevant for a commutative join).
    """
    if len(keys) < 2:
        raise PlanError("a join needs at least 2 inputs")

    memo: dict[frozenset[str], list[JoinTree]] = {}

    def build(subset: frozenset[str]) -> list[JoinTree]:
        if subset in memo:
            return memo[subset]
        if len(subset) == 1:
            trees = [JoinTree(leaves=subset)]
        else:
            trees = []
            members = sorted(subset)
            anchor = members[0]
            rest = members[1:]
            # Every split where the anchor stays on the left avoids
            # double-counting mirrored trees.
            for mask in range(1 << len(rest)):
                left_set = {anchor}
                right_set = set()
                for i, key in enumerate(rest):
                    if mask & (1 << i):
                        left_set.add(key)
                    else:
                        right_set.add(key)
                if not right_set:
                    continue
                for left_tree in build(frozenset(left_set)):
                    for right_tree in build(frozenset(right_set)):
                        trees.append(
                            JoinTree(
                                leaves=subset,
                                left=left_tree,
                                right=right_tree,
                            )
                        )
        memo[subset] = trees
        return trees

    return build(frozenset(keys))


def join_tree_plans(
    plan_name: str,
    branches: Sequence[Branch],
    join_factory: Callable[[str, frozenset[str]], OperatorSpec],
    sink_op: OperatorSpec | None = None,
    *,
    max_variants: int = 32,
) -> list[LogicalPlan]:
    """Materialize logical plans for every join-tree shape.

    Args:
        plan_name: Base name; variants get ``#i`` suffixes.
        branches: The join inputs.
        join_factory: Builds the join operator for a node given its
            canonical name and covered branch keys (so callers control
            selectivity/state per node).
        sink_op: Sink appended at the root (a default sink when omitted).
        max_variants: Deterministic cap on the number of plans returned.
    """
    by_key = {b.key: b for b in branches}
    if len(by_key) != len(branches):
        raise PlanError("branch keys must be unique")
    trees = enumerate_join_trees([b.key for b in branches])
    plans: list[LogicalPlan] = []
    for i, tree in enumerate(trees[:max_variants]):
        operators: list[OperatorSpec] = []
        edges: list[tuple[str, str]] = []
        for branch in branches:
            operators.extend(branch.operators)
            edges.extend(branch.edges)

        def node_output(node: JoinTree) -> str:
            if node.is_leaf:
                (key,) = node.leaves
                return by_key[key].output
            return node.canonical_name()

        for node in tree.subtrees():
            join_op = join_factory(node.canonical_name(), node.leaves)
            if join_op.name != node.canonical_name():
                raise PlanError(
                    "join_factory must use the canonical name "
                    f"{node.canonical_name()!r}, got {join_op.name!r}"
                )
            operators.append(join_op)
            assert node.left is not None and node.right is not None
            edges.append((node_output(node.left), join_op.name))
            edges.append((node_output(node.right), join_op.name))

        final_sink = sink_op or make_sink(f"sink")
        operators.append(final_sink)
        edges.append((node_output(tree), final_sink.name))
        plans.append(
            LogicalPlan.from_edges(f"{plan_name}#{i}", operators, edges)
        )
    return plans


# --------------------------------------------------------------------------- #
# Aggregation groupings
# --------------------------------------------------------------------------- #


def aggregation_grouping_plans(
    plan_name: str,
    branches: Sequence[Branch],
    groupings: Sequence[Sequence[Sequence[str]]],
    partial_factory: Callable[[str, frozenset[str]], OperatorSpec],
    final_ops: Sequence[OperatorSpec],
    sink_op: OperatorSpec | None = None,
    *,
    normalize_selectivity: bool = True,
) -> list[LogicalPlan]:
    """Materialize one plan per grouping of branches into pre-aggregations.

    Args:
        plan_name: Base name; variants get ``#i`` suffixes.
        branches: Aggregation inputs.
        groupings: Each grouping is a partition of the branch keys; groups
            of size 1 feed the final aggregation directly, larger groups get
            a partial aggregation named canonically after their members.
        partial_factory: Builds the partial-aggregate operator for a group.
        final_ops: The final aggregation chain (first consumes the groups).
        sink_op: Sink appended after the final chain.
        normalize_selectivity: Keep variants semantically equivalent: a
            pre-aggregated variant compresses the stream *before* the final
            operator, so the final operator's selectivity is rescaled such
            that every variant produces the same sink rate (exact when all
            branches carry equal rates, or when every branch is grouped
            with the same partial selectivity).
    """
    by_key = {b.key: b for b in branches}
    all_keys = set(by_key)
    plans: list[LogicalPlan] = []
    for i, grouping in enumerate(groupings):
        covered = [key for group in grouping for key in group]
        if sorted(covered) != sorted(all_keys):
            raise PlanError(
                f"grouping #{i} is not a partition of the branches: "
                f"{grouping!r}"
            )
        operators: list[OperatorSpec] = []
        edges: list[tuple[str, str]] = []
        for branch in branches:
            operators.extend(branch.operators)
            edges.extend(branch.edges)
        final_head = final_ops[0]
        if normalize_selectivity:
            partial_sels = {
                frozenset(g): partial_factory(
                    "pre{" + "+".join(sorted(g)) + "}", frozenset(g)
                ).selectivity
                for g in grouping
                if len(g) > 1
            }
            mix = sum(
                len(g)
                * (partial_sels[frozenset(g)] if len(g) > 1 else 1.0)
                for g in grouping
            ) / len(all_keys)
            if mix > 0:
                final_head = replace(
                    final_head,
                    selectivity=final_ops[0].selectivity / mix,
                )
        for group in grouping:
            if len(group) == 1:
                edges.append((by_key[group[0]].output, final_head.name))
                continue
            members = frozenset(group)
            name = "pre{" + "+".join(sorted(members)) + "}"
            partial = partial_factory(name, members)
            if partial.name != name:
                raise PlanError(
                    f"partial_factory must use the canonical name {name!r}, "
                    f"got {partial.name!r}"
                )
            operators.append(partial)
            for key in sorted(members):
                edges.append((by_key[key].output, partial.name))
            edges.append((partial.name, final_head.name))
        final_chain = [final_head, *final_ops[1:]]
        operators.extend(final_chain)
        for a, b in zip(final_chain, final_chain[1:]):
            edges.append((a.name, b.name))
        final_sink = sink_op or make_sink("sink")
        operators.append(final_sink)
        edges.append((final_chain[-1].name, final_sink.name))
        plans.append(
            LogicalPlan.from_edges(f"{plan_name}#{i}", operators, edges)
        )
    return plans


def region_groupings(
    branch_home: dict[str, str], *, max_group: int = 8
) -> list[list[list[str]]]:
    """Candidate groupings derived from branch home regions.

    Produces: (1) everything direct, (2) one group per region with >= 2
    branches, (3) a single global pre-aggregation, deduplicated.
    """
    keys = sorted(branch_home)
    direct = [[k] for k in keys]
    by_region: dict[str, list[str]] = {}
    for key in keys:
        by_region.setdefault(branch_home[key], []).append(key)
    regional: list[list[str]] = []
    for region in sorted(by_region):
        members = by_region[region]
        if 2 <= len(members) <= max_group:
            regional.append(members)
        else:
            regional.extend([[m] for m in members])
    global_group = [keys] if len(keys) <= max_group else None

    groupings: list[list[list[str]]] = [direct]
    if regional != direct:
        groupings.append(regional)
    if global_group is not None and global_group not in groupings:
        groupings.append(global_group)
    return groupings

"""Heuristic cost-based plan + placement estimation (Section 4.3).

To avoid evaluating every combination of logical and physical plans (which
is NP-hard), the Query Planner and Scheduler jointly evaluate a small set of
logical variants: for each variant the Scheduler computes a WAN-aware
placement stage-by-stage in topological order, and the pair with the lowest
estimated delay wins.

The estimate combines:

* the placement objective (traffic-weighted up/downstream latency, Eq. 1);
* a congestion-risk term that grows as any link's expected utilization
  approaches the ``alpha`` headroom (a placement that barely fits is worse
  than one with slack, because dynamics will push it over);
* the total WAN bandwidth the deployment consumes (Figure 5's 70 vs 90
  MB/s comparison), used as a tie-breaker and reported for inspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..engine.logical import LogicalPlan
from ..engine.physical import PhysicalPlan, Stage
from ..engine.runtime import MBIT_BYTES
from ..errors import InfeasiblePlacementError, PlanError
from .placement import (
    NetworkView,
    PlacementProblem,
    PlacementSolution,
    UpstreamFlow,
    solve_placement,
)


@dataclass(frozen=True)
class DeploymentEstimate:
    """A fully-placed candidate deployment with its estimated cost."""

    logical: LogicalPlan
    physical: PhysicalPlan
    assignments: dict[str, dict[str, int]]
    delay_score_ms: float
    wan_mbps: float
    feasible: bool
    infeasible_reason: str = ""

    def better_than(self, other: "DeploymentEstimate | None") -> bool:
        if other is None:
            return True
        if self.feasible != other.feasible:
            return self.feasible
        if abs(self.delay_score_ms - other.delay_score_ms) > 1e-9:
            return self.delay_score_ms < other.delay_score_ms
        return self.wan_mbps < other.wan_mbps


def _stage_flows_to(
    stage: Stage,
    physical: PhysicalPlan,
    assignments: dict[str, dict[str, int]],
    stage_rates: dict[str, dict[str, float]],
) -> list[UpstreamFlow]:
    """Expected per-site traffic from the (already placed) upstream stages."""
    flows: dict[tuple[str, float], float] = {}
    for up in physical.upstream_stages(stage.name):
        up_assignment = assignments.get(up.name, {})
        total_tasks = sum(up_assignment.values())
        if total_tasks == 0:
            continue
        out_eps = stage_rates[up.name]["output"]
        for site, count in up_assignment.items():
            key = (site, up.output_event_bytes)
            flows[key] = flows.get(key, 0.0) + out_eps * count / total_tasks
    return [
        UpstreamFlow(site=site, eps=eps, event_bytes=eb)
        for (site, eb), eps in sorted(flows.items())
    ]


def estimate_deployment(
    logical: LogicalPlan,
    network: NetworkView,
    available_slots: dict[str, int],
    source_generation_eps: dict[str, float],
    *,
    alpha: float = 0.8,
    parallelism: dict[str, int] | None = None,
    default_parallelism: int = 1,
    chaining: bool = True,
    relaxed: bool = False,
) -> DeploymentEstimate:
    """Place every stage of ``logical`` topologically and score the result.

    Args:
        logical: The candidate logical plan.
        network: Measured bandwidth/latency view.
        available_slots: Free slots per site for *new* tasks; consumed as
            stages are placed (a copy is made).
        source_generation_eps: Raw generation rate per source stage.
        alpha: Bandwidth-utilization headroom.
        parallelism: Per-stage parallelism override (existing stages keep
            their live parallelism on re-planning).
        default_parallelism: Parallelism for stages not in ``parallelism``
            (the paper initializes all operators with p = 1).
        chaining: Whether to chain narrow operators (on, as in Flink).
        relaxed: Drop the bandwidth constraints (initial-deployment
            fallback; see :class:`~repro.planner.placement.PlacementProblem`).
    """
    physical = PhysicalPlan(logical, chaining=chaining)
    stage_rates = physical.expected_stage_rates(source_generation_eps)
    slots = dict(available_slots)
    parallelism = parallelism or {}

    assignments: dict[str, dict[str, int]] = {}
    delay_score = 0.0
    wan_mbps = 0.0
    total_input = sum(
        stage_rates[s.name]["input"]
        for s in physical.topological_stages()
        if not s.is_source
    )

    for stage in physical.topological_stages():
        if stage.is_source:
            site = stage.pinned_site
            if site is None:
                raise PlanError(f"source stage {stage.name!r} not pinned")
            assignments[stage.name] = {site: 1}
            slots[site] = slots.get(site, 0) - 1
            continue
        p = parallelism.get(stage.name, default_parallelism)
        upstream_flows = _stage_flows_to(
            stage, physical, assignments, stage_rates
        )
        problem = PlacementProblem(
            parallelism=p,
            upstream=upstream_flows,
            downstream=[],  # scheduled one-stage-at-a-time, topologically
            available_slots=slots,
            alpha=alpha,
            relaxed=relaxed,
        )
        try:
            solution = solve_placement(problem, network)
        except InfeasiblePlacementError as exc:
            return DeploymentEstimate(
                logical=logical,
                physical=physical,
                assignments=assignments,
                delay_score_ms=math.inf,
                wan_mbps=math.inf,
                feasible=False,
                infeasible_reason=f"stage {stage.name!r}: {exc}",
            )
        assignments[stage.name] = solution.assignment
        for site, count in solution.assignment.items():
            slots[site] = slots.get(site, 0) - count

        # Delay contribution: traffic-weighted placement cost plus a
        # congestion-risk term per inter-site flow.
        input_eps = stage_rates[stage.name]["input"]
        weight = input_eps / total_input if total_input > 0 else 0.0
        delay_score += weight * _traffic_weighted_latency(
            stage, solution, upstream_flows, network, alpha, p
        )
        wan_mbps += _stage_wan_mbps(solution, upstream_flows, p)

    return DeploymentEstimate(
        logical=logical,
        physical=physical,
        assignments=assignments,
        delay_score_ms=delay_score,
        wan_mbps=wan_mbps,
        feasible=True,
    )


def _traffic_weighted_latency(
    stage: Stage,
    solution: PlacementSolution,
    upstream_flows: list[UpstreamFlow],
    network: NetworkView,
    alpha: float,
    p: int,
) -> float:
    """Mean latency (ms) experienced by the stage's inbound traffic, with a
    congestion-risk inflation of ``1 / (1 - u/alpha_ceiling)`` per flow."""
    total_eps = sum(f.eps for f in upstream_flows)
    if total_eps <= 0:
        return 0.0
    score = 0.0
    for flow in upstream_flows:
        for site, count in solution.assignment.items():
            share = flow.eps * count / p
            if share <= 0:
                continue
            latency = network.latency_ms(flow.site, site)
            if flow.site != site:
                bw_eps = (
                    network.bandwidth_mbps(flow.site, site)
                    * MBIT_BYTES
                    / flow.event_bytes
                )
                # Inflate relative to the alpha budget: a flow at the cap
                # has no headroom for dynamics and scores ~30x its latency,
                # steering the planner towards placements with slack.
                relative = share / max(bw_eps * alpha, 1e-9)
                utilization = min(relative, 0.97)
                latency *= 1.0 / max(1e-3, 1.0 - utilization)
            score += (share / total_eps) * latency
    return score


def _stage_wan_mbps(
    solution: PlacementSolution,
    upstream_flows: list[UpstreamFlow],
    p: int,
) -> float:
    """WAN bandwidth the stage's inbound flows consume (Figure 5 metric)."""
    total = 0.0
    for flow in upstream_flows:
        for site, count in solution.assignment.items():
            if flow.site == site:
                continue
            total += flow.eps * (count / p) * flow.event_bytes / MBIT_BYTES
    return total


def choose_best_deployment(
    variants: list[LogicalPlan],
    network: NetworkView,
    available_slots: dict[str, int],
    source_generation_eps: dict[str, float],
    *,
    alpha: float = 0.8,
    parallelism: dict[str, int] | None = None,
    default_parallelism: int = 1,
    relaxed: bool = False,
) -> DeploymentEstimate:
    """Evaluate every variant and return the best feasible deployment.

    Raises:
        InfeasiblePlacementError: When no variant can be placed.
    """
    if not variants:
        raise PlanError("no plan variants supplied")
    best: DeploymentEstimate | None = None
    for variant in variants:
        estimate = estimate_deployment(
            variant,
            network,
            available_slots,
            source_generation_eps,
            alpha=alpha,
            parallelism=parallelism,
            default_parallelism=default_parallelism,
            relaxed=relaxed,
        )
        if estimate.better_than(best):
            best = estimate
    assert best is not None
    if not best.feasible:
        raise InfeasiblePlacementError(
            f"no feasible deployment among {len(variants)} variants: "
            f"{best.infeasible_reason}"
        )
    return best

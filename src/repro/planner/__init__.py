"""Query planning substrate: rewrites, enumeration, placement, scheduling."""

from .cost import DeploymentEstimate, choose_best_deployment, estimate_deployment
from .enumerate import (
    Branch,
    aggregation_grouping_plans,
    branch_from_ops,
    enumerate_join_trees,
    join_tree_plans,
    region_groupings,
)
from .ilp import IntegerProgram, IlpSolution, solve_branch_and_bound
from .placement import (
    DownstreamDemand,
    PlacementProblem,
    PlacementSolution,
    UpstreamFlow,
    max_placeable_tasks,
    solve_placement,
    solve_with_milp,
)
from .rules import optimize
from .scheduler import AssignmentDiff, Scheduler

__all__ = [
    "AssignmentDiff",
    "Branch",
    "DeploymentEstimate",
    "DownstreamDemand",
    "IlpSolution",
    "IntegerProgram",
    "PlacementProblem",
    "PlacementSolution",
    "Scheduler",
    "UpstreamFlow",
    "aggregation_grouping_plans",
    "branch_from_ops",
    "choose_best_deployment",
    "enumerate_join_trees",
    "estimate_deployment",
    "join_tree_plans",
    "max_placeable_tasks",
    "optimize",
    "region_groupings",
    "solve_branch_and_bound",
    "solve_placement",
    "solve_with_milp",
]

"""Stochastic WAN-bandwidth processes.

Figure 2 of the paper shows a one-day iperf measurement between the Oregon
and Ohio EC2 regions sampled every 5 minutes: the available bandwidth hovers
around a mean with deviations of 25-93 % and occasional deep dips, consistent
with inter-data-center topology changes every 5-10 minutes reported by B4 and
SWAN.  :class:`BandwidthProcess` reproduces those statistics with a
mean-reverting (AR(1)) process plus a heavy-tailed jump term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class BandwidthStats:
    """Summary statistics of a bandwidth trace (used to validate Figure 2)."""

    mean_mbps: float
    min_mbps: float
    max_mbps: float
    min_deviation: float
    max_deviation: float

    @classmethod
    def from_trace(cls, trace: np.ndarray) -> "BandwidthStats":
        mean = float(np.mean(trace))
        deviations = np.abs(trace - mean) / mean
        return cls(
            mean_mbps=mean,
            min_mbps=float(np.min(trace)),
            max_mbps=float(np.max(trace)),
            min_deviation=float(np.min(deviations)),
            max_deviation=float(np.max(deviations)),
        )


class BandwidthProcess:
    """Mean-reverting bandwidth process with occasional contention dips.

    The process evolves as ``b[t+1] = mean + phi * (b[t] - mean) + noise``
    with ``phi`` controlling how sticky the current level is, plus a dip term
    that occasionally drags the link down to a fraction of its mean,
    modelling cross-traffic contention and topology reconfiguration.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_mbps: float,
        *,
        phi: float = 0.75,
        sigma_frac: float = 0.22,
        dip_probability: float = 0.06,
        dip_depth: float = 0.75,
        floor_frac: float = 0.05,
    ) -> None:
        if mean_mbps <= 0:
            raise ConfigurationError(f"mean_mbps must be > 0, got {mean_mbps}")
        if not 0 <= phi < 1:
            raise ConfigurationError(f"phi must be in [0, 1), got {phi}")
        if not 0 <= dip_probability <= 1:
            raise ConfigurationError(
                f"dip_probability must be in [0, 1], got {dip_probability}"
            )
        if not 0 < dip_depth < 1:
            raise ConfigurationError(f"dip_depth must be in (0, 1), got {dip_depth}")
        self._rng = rng
        self._mean = float(mean_mbps)
        self._phi = float(phi)
        self._sigma = float(sigma_frac) * self._mean
        self._dip_probability = float(dip_probability)
        self._dip_depth = float(dip_depth)
        self._floor = float(floor_frac) * self._mean
        self._value = self._mean

    @property
    def mean_mbps(self) -> float:
        return self._mean

    @property
    def value_mbps(self) -> float:
        """Current available bandwidth."""
        return self._value

    def step(self) -> float:
        """Advance one measurement interval and return the new bandwidth."""
        noise = self._rng.normal(0.0, self._sigma)
        value = self._mean + self._phi * (self._value - self._mean) + noise
        if self._rng.random() < self._dip_probability:
            value -= self._dip_depth * self._mean * self._rng.random()
        self._value = float(np.clip(value, self._floor, 2.0 * self._mean))
        return self._value

    def trace(self, samples: int) -> np.ndarray:
        """Generate ``samples`` consecutive measurements."""
        if samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {samples}")
        return np.array([self.step() for _ in range(samples)])


def oregon_ohio_trace(
    rng: np.random.Generator, *, samples: int = 288, mean_mbps: float = 110.0
) -> np.ndarray:
    """A Figure-2-like one-day trace (288 five-minute samples by default)."""
    process = BandwidthProcess(rng, mean_mbps)
    return process.trace(samples)


def thirty_minute_rollup(trace_5min: np.ndarray) -> np.ndarray:
    """Average a 5-minute trace into 30-minute intervals (Figure 2's x-axis)."""
    usable = len(trace_5min) - len(trace_5min) % 6
    if usable == 0:
        return np.array([])
    return trace_5min[:usable].reshape(-1, 6).mean(axis=1)

"""Relay routing for bulk transfers (Section 2.2, citing Lai et al.).

The paper notes that "higher WAN bandwidth between data centers can be
achieved by leveraging higher VM instances" and cites *"To relay or not to
relay for inter-cloud transfers?"*: when the direct link between two sites
is weak, forwarding through an intermediate site whose links to both ends
are fast can multiply the effective bandwidth.

Interactive stream traffic rarely benefits (the relay adds latency on every
event), but **state migration** is a bulk transfer whose only metric is
completion time - exactly the relay sweet spot.  This module finds, for a
(src, dst) pair, the best single-relay path under pipelined forwarding
(effective bandwidth = min of the two hop bandwidths, discounted for the
forwarding overhead), and the controller can use it to shrink the migration
transition the Section 8.7 experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..errors import TopologyError

#: Pipelined relay forwarding is not free: the relay re-serializes the
#: stream, so the effective bandwidth is the bottleneck hop discounted by
#: this factor.
RELAY_EFFICIENCY = 0.9


@dataclass(frozen=True)
class RelayPath:
    """A (possibly relayed) route for one bulk transfer."""

    src: str
    dst: str
    via: str | None
    bandwidth_mbps: float

    @property
    def is_direct(self) -> bool:
        return self.via is None

    def hops(self) -> list[tuple[str, str]]:
        if self.via is None:
            return [(self.src, self.dst)]
        return [(self.src, self.via), (self.via, self.dst)]


def best_relay_path(
    src: str,
    dst: str,
    candidates: Iterable[str],
    bandwidth: Callable[[str, str], float],
    *,
    efficiency: float = RELAY_EFFICIENCY,
) -> RelayPath:
    """The fastest route from ``src`` to ``dst``: direct or single-relay.

    Args:
        src: Source site.
        dst: Destination site.
        candidates: Sites eligible to forward (typically every site; the
            src/dst themselves are skipped).
        bandwidth: Measured ``(a, b) -> Mbps`` lookup (the WAN monitor).
        efficiency: Relay forwarding discount.

    Returns:
        The best path; falls back to direct when no relay beats it.
    """
    if src == dst:
        raise TopologyError("relay routing needs distinct src and dst")
    direct = RelayPath(src, dst, None, bandwidth(src, dst))
    best = direct
    for via in candidates:
        if via in (src, dst):
            continue
        effective = (
            min(bandwidth(src, via), bandwidth(via, dst)) * efficiency
        )
        if effective > best.bandwidth_mbps:
            best = RelayPath(src, dst, via, effective)
    return best


def relayed_bandwidth_lookup(
    candidates: Iterable[str],
    bandwidth: Callable[[str, str], float],
    *,
    efficiency: float = RELAY_EFFICIENCY,
) -> Callable[[str, str], float]:
    """A bandwidth lookup that transparently routes via the best relay.

    Drop-in replacement for the monitor's ``bandwidth_mbps`` in migration
    planning: every (src, dst) query returns the best achievable bulk
    bandwidth, direct or relayed.  Stream placement keeps using the direct
    lookup (relaying live streams would add per-event latency).
    """
    sites = list(candidates)

    def lookup(src: str, dst: str) -> float:
        if src == dst:
            return bandwidth(src, dst)
        return best_relay_path(
            src, dst, sites, bandwidth, efficiency=efficiency
        ).bandwidth_mbps

    return lookup

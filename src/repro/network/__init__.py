"""WAN substrate: sites, topology, bandwidth processes, monitoring."""

from .bandwidth import BandwidthProcess, BandwidthStats, oregon_ohio_trace
from .monitor import LinkMeasurement, WanMonitor
from .relay import RelayPath, best_relay_path, relayed_bandwidth_lookup
from .site import Site, SiteKind
from .topology import Link, Topology
from .traces import TestbedSpec, network_distributions, paper_testbed

__all__ = [
    "BandwidthProcess",
    "BandwidthStats",
    "Link",
    "LinkMeasurement",
    "RelayPath",
    "Site",
    "SiteKind",
    "TestbedSpec",
    "Topology",
    "WanMonitor",
    "best_relay_path",
    "network_distributions",
    "oregon_ohio_trace",
    "paper_testbed",
    "relayed_bandwidth_lookup",
]

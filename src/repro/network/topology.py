"""WAN topology: sites plus pairwise bandwidth/latency matrices.

The topology keeps *base* link capacities (as measured when the testbed was
built) separate from the *current* capacities, which are the base values
multiplied by per-link dynamic factors.  The dynamics driver mutates only the
factors, so restoring a link (e.g. Section 8.4's bandwidth restore at
t=1200) is exact.

Intra-site transfers are modelled as effectively free: the paper's
bottlenecks are inter-site WAN links, and tasks co-located with their
upstream exchange data over the local network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import TopologyError, UnknownSiteError
from .site import Site, SiteKind

#: Effective bandwidth used for intra-site (local) transfers, in Mbps.
LOCAL_BANDWIDTH_MBPS = 100_000.0
#: Effective latency for intra-site transfers, in milliseconds.
LOCAL_LATENCY_MS = 0.5


@dataclass(frozen=True)
class Link:
    """A directed WAN link with its current capacity and latency."""

    src: str
    dst: str
    bandwidth_mbps: float
    latency_ms: float


class Topology:
    """Mutable WAN topology over a fixed set of sites.

    Bandwidth and latency are directional: ``bandwidth("a", "b")`` is the
    capacity from ``a`` to ``b`` (the paper's ``B^{s2}_{s1}``).
    """

    def __init__(self, sites: Iterable[Site]) -> None:
        self._sites: dict[str, Site] = {}
        for site in sites:
            if site.name in self._sites:
                raise TopologyError(f"duplicate site name: {site.name!r}")
            self._sites[site.name] = site
        self._base_bandwidth: dict[tuple[str, str], float] = {}
        self._base_latency: dict[tuple[str, str], float] = {}
        #: Per-link factor overrides; links without an entry use
        #: ``_global_factor``.  A global write clears the overrides, which
        #: preserves the historical clobber semantics (a global change
        #: replaces every per-link factor) while staying O(1) per call -
        #: the scripted dynamics apply a global factor on every tick.
        self._factors: dict[tuple[str, str], float] = {}
        self._global_factor = 1.0
        #: Monotonic counter bumped whenever a factor actually changes, so
        #: vectorized consumers can cache derived link tables.
        self._factors_version = 0

    # ------------------------------------------------------------------ #
    # Sites
    # ------------------------------------------------------------------ #

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise UnknownSiteError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __iter__(self) -> Iterator[Site]:
        return iter(self._sites.values())

    @property
    def site_names(self) -> list[str]:
        return list(self._sites)

    def sites_of_kind(self, kind: SiteKind) -> list[Site]:
        return [s for s in self._sites.values() if s.kind is kind]

    def available_slots(self) -> dict[str, int]:
        """``A[s]`` for every site (0 for failed sites)."""
        return {name: s.available_slots for name, s in self._sites.items()}

    def total_used_slots(self) -> int:
        return sum(s.used_slots for s in self._sites.values())

    def slot_snapshot(self) -> dict[str, int]:
        """Used-slot counter per site (adaptation-rollback unit).

        Only the *used* counters are captured: failures, revocations and
        slowdowns are environment facts that a rollback must not undo.
        """
        return {name: s.used_slots for name, s in self._sites.items()}

    def restore_slot_snapshot(self, snapshot: dict[str, int]) -> None:
        """Restore the used-slot counters captured by :meth:`slot_snapshot`."""
        for name, used in snapshot.items():
            self.site(name).force_used_slots(used)

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #

    def set_link(
        self, src: str, dst: str, bandwidth_mbps: float, latency_ms: float
    ) -> None:
        """Define (or redefine) the base capacity of a directed link."""
        self._require(src)
        self._require(dst)
        if src == dst:
            raise TopologyError("cannot define a link from a site to itself")
        if bandwidth_mbps <= 0:
            raise TopologyError(
                f"link {src}->{dst}: bandwidth must be > 0, got {bandwidth_mbps}"
            )
        if latency_ms < 0:
            raise TopologyError(
                f"link {src}->{dst}: latency must be >= 0, got {latency_ms}"
            )
        self._base_bandwidth[(src, dst)] = float(bandwidth_mbps)
        self._base_latency[(src, dst)] = float(latency_ms)

    def bandwidth_mbps(self, src: str, dst: str) -> float:
        """Current capacity of the ``src -> dst`` link in Mbps."""
        if src == dst:
            return LOCAL_BANDWIDTH_MBPS
        base = self._base_bandwidth.get((src, dst))
        if base is None:
            self._require(src)
            self._require(dst)
            raise TopologyError(f"no link defined from {src!r} to {dst!r}")
        return base * self._factors.get((src, dst), self._global_factor)

    def latency_ms(self, src: str, dst: str) -> float:
        """Current one-way latency of the ``src -> dst`` link in ms."""
        if src == dst:
            return LOCAL_LATENCY_MS
        latency = self._base_latency.get((src, dst))
        if latency is None:
            self._require(src)
            self._require(dst)
            raise TopologyError(f"no link defined from {src!r} to {dst!r}")
        return latency

    def links(self) -> list[Link]:
        """All directed links with their *current* capacities."""
        return [
            Link(src, dst, self.bandwidth_mbps(src, dst), self.latency_ms(src, dst))
            for (src, dst) in sorted(self._base_bandwidth)
        ]

    # ------------------------------------------------------------------ #
    # Dynamics
    # ------------------------------------------------------------------ #

    def set_bandwidth_factor(self, src: str, dst: str, factor: float) -> None:
        """Scale one directed link's capacity relative to its base value."""
        if factor < 0:
            raise TopologyError(f"bandwidth factor must be >= 0, got {factor}")
        if (src, dst) not in self._base_bandwidth:
            raise TopologyError(f"no link defined from {src!r} to {dst!r}")
        if self._factors.get((src, dst)) != float(factor):
            self._factors[(src, dst)] = float(factor)
            self._factors_version += 1

    def set_global_bandwidth_factor(self, factor: float) -> None:
        """Scale every link (Section 8.4 halves all links at t=900)."""
        if factor < 0:
            raise TopologyError(f"bandwidth factor must be >= 0, got {factor}")
        if self._factors or self._global_factor != float(factor):
            self._factors.clear()
            self._global_factor = float(factor)
            self._factors_version += 1

    def bandwidth_factor(self, src: str, dst: str) -> float:
        return self._factors.get((src, dst), self._global_factor)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _require(self, name: str) -> None:
        if name not in self._sites:
            raise UnknownSiteError(name)

    def fully_connected(self) -> bool:
        """True if every ordered site pair has a defined link."""
        names = self.site_names
        return all(
            (a, b) in self._base_bandwidth
            for a in names
            for b in names
            if a != b
        )

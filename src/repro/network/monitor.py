"""WAN Monitor: periodic background measurement of inter-site links.

The WASP prototype adds "a network monitoring module (WAN Monitor) that
periodically monitors the pair-wise available [bandwidth] between sites in
the background" (Section 8.1).  The controller plans against these
*measurements*, never the ground truth - the measurement can be stale (it
refreshes only once per monitoring interval) and noisy (a configurable
relative error), which is exactly the mis-estimation the alpha headroom of
the placement ILP exists to absorb (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .topology import Topology


@dataclass(frozen=True)
class LinkMeasurement:
    """One measured sample of a directed link."""

    src: str
    dst: str
    bandwidth_mbps: float
    latency_ms: float
    measured_at_s: float


class WanMonitor:
    """Measures pairwise bandwidth/latency with optional noise and staleness.

    Args:
        topology: Ground-truth topology to observe.
        rng: Stream for measurement noise.
        relative_error: Multiplicative error bound; each measurement is the
            true value times a factor uniform in [1-e, 1+e].
    """

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        *,
        relative_error: float = 0.0,
    ) -> None:
        if relative_error < 0 or relative_error >= 1:
            raise ConfigurationError(
                f"relative_error must be in [0, 1), got {relative_error}"
            )
        self._topology = topology
        self._rng = rng
        self._relative_error = float(relative_error)
        self._measurements: dict[tuple[str, str], LinkMeasurement] = {}
        self._last_refresh_s = float("-inf")

    @property
    def last_refresh_s(self) -> float:
        return self._last_refresh_s

    def refresh(self, now_s: float) -> None:
        """Re-measure every defined link (one monitoring round)."""
        for link in self._topology.links():
            noise = 1.0
            if self._relative_error > 0:
                noise = self._rng.uniform(
                    1.0 - self._relative_error, 1.0 + self._relative_error
                )
            self._measurements[(link.src, link.dst)] = LinkMeasurement(
                src=link.src,
                dst=link.dst,
                bandwidth_mbps=link.bandwidth_mbps * noise,
                latency_ms=link.latency_ms,
                measured_at_s=now_s,
            )
        self._last_refresh_s = now_s

    def remeasure(self, src: str, dst: str, now_s: float) -> float:
        """Re-measure one directed link immediately (WANify-style re-gauging).

        The transactional executor calls this before retrying a failed
        migration: the stale monitoring-round sample may have promised
        bandwidth a mid-operation collapse took away, and planning the retry
        against a fresh sample is what makes the retry meaningful.  Returns
        the new measurement.
        """
        if src == dst:
            return self._topology.bandwidth_mbps(src, dst)
        noise = 1.0
        if self._relative_error > 0:
            noise = self._rng.uniform(
                1.0 - self._relative_error, 1.0 + self._relative_error
            )
        sample = LinkMeasurement(
            src=src,
            dst=dst,
            bandwidth_mbps=self._topology.bandwidth_mbps(src, dst) * noise,
            latency_ms=self._topology.latency_ms(src, dst),
            measured_at_s=now_s,
        )
        self._measurements[(src, dst)] = sample
        return sample.bandwidth_mbps

    def bandwidth_mbps(self, src: str, dst: str) -> float:
        """Most recent bandwidth measurement for ``src -> dst``.

        Intra-site transfers report the topology's local capacity directly.
        Falls back to a fresh ground-truth read if the link has never been
        measured (i.e. before the first monitoring round).
        """
        if src == dst:
            return self._topology.bandwidth_mbps(src, dst)
        sample = self._measurements.get((src, dst))
        if sample is None:
            return self._topology.bandwidth_mbps(src, dst)
        return sample.bandwidth_mbps

    def latency_ms(self, src: str, dst: str) -> float:
        """Most recent latency measurement for ``src -> dst``."""
        if src == dst:
            return self._topology.latency_ms(src, dst)
        sample = self._measurements.get((src, dst))
        if sample is None:
            return self._topology.latency_ms(src, dst)
        return sample.latency_ms

    def measurement(self, src: str, dst: str) -> LinkMeasurement | None:
        return self._measurements.get((src, dst))

    def bandwidth_matrix(self) -> dict[tuple[str, str], float]:
        """Measured bandwidth for every known link."""
        return {
            key: sample.bandwidth_mbps
            for key, sample in self._measurements.items()
        }

"""Testbed topology generation.

Section 8.2 derives the evaluation testbed from real measurements: the
data-center mesh is configured from a 1-day bandwidth measurement between 8
Amazon EC2 regions (Oregon, Ohio, Ireland, Frankfurt, Seoul, Singapore,
Mumbai, Sao Paulo), and edge connectivity from Akamai's State of the Internet
report (public-Internet average < 10 Mbps).  The testbed has 16 nodes: 8 edge
nodes with 2-4 slots and 8 data-center nodes with 8 slots, 1 CPU / 1 GB per
slot.

We reproduce the same regime: data-center links get distance-derived
latencies (great-circle distance over fibre with a routing-inflation factor)
and bandwidths anti-correlated with distance, clipped to the 25-250 Mbps band
visible in Figure 7a; edge links draw from a lognormal centred below 10 Mbps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .site import Site, SiteKind
from .topology import Topology

#: The 8 EC2 regions of Section 8.2 with approximate coordinates.
EC2_REGIONS: dict[str, tuple[float, float]] = {
    "oregon": (45.52, -122.68),
    "ohio": (39.96, -83.00),
    "ireland": (53.35, -6.26),
    "frankfurt": (50.11, 8.68),
    "seoul": (37.57, 126.98),
    "singapore": (1.35, 103.82),
    "mumbai": (19.08, 72.88),
    "sao-paulo": (-23.55, -46.63),
}

#: Slots per data-center node (Section 8.2).
DC_SLOTS = 8
#: Slots per edge node cycle through 2-4 (Section 8.2: "2-4 slots/node").
EDGE_SLOT_CYCLE = (2, 3, 4)

_EARTH_RADIUS_KM = 6371.0
#: Effective signal speed in fibre, km per ms.
_FIBRE_KM_PER_MS = 200.0
#: Multiplier for indirect routing over the physical great-circle path.
_ROUTE_INFLATION = 1.5


def great_circle_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Great-circle distance between two (lat, lon) points in km."""
    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def dc_latency_ms(region_a: str, region_b: str) -> float:
    """One-way latency between two EC2 regions, distance-derived."""
    km = great_circle_km(EC2_REGIONS[region_a], EC2_REGIONS[region_b])
    return 5.0 + km / _FIBRE_KM_PER_MS * _ROUTE_INFLATION


def _dc_bandwidth_mbps(rng: np.random.Generator, latency_ms: float) -> float:
    """Sample a DC-DC capacity, anti-correlated with latency (Figure 7a)."""
    # Nearby regions see ~200+ Mbps, antipodal pairs ~25-60 Mbps.
    base = 260.0 * math.exp(-latency_ms / 160.0) + 25.0
    noisy = base * rng.uniform(0.75, 1.25)
    return float(np.clip(noisy, 25.0, 250.0))


def _edge_bandwidth_mbps(rng: np.random.Generator) -> float:
    """Sample an edge-link capacity from an Akamai-like distribution."""
    # Lognormal centred near 8 Mbps with a thin tail past 25 Mbps.
    value = rng.lognormal(mean=math.log(8.0), sigma=0.55)
    return float(np.clip(value, 1.5, 30.0))


def _edge_latency_ms(rng: np.random.Generator) -> float:
    """Sample an intra-region edge last-mile latency."""
    return float(rng.uniform(10.0, 60.0))


@dataclass(frozen=True)
class TestbedSpec:
    """Knobs for :func:`paper_testbed` (defaults follow Section 8.2)."""

    __test__ = False  # not a pytest class, despite the name

    dc_count: int = 8
    edge_count: int = 8
    dc_slots: int = DC_SLOTS
    proc_rate_eps: float = 40_000.0


def dc_site_name(region: str) -> str:
    return f"dc-{region}"


def edge_site_name(index: int) -> str:
    return f"edge-{index}"


def paper_testbed(
    rng: np.random.Generator, spec: TestbedSpec | None = None
) -> Topology:
    """Build the 16-node Section-8.2 testbed.

    Each edge node is homed at a data-center region (edge-i at region i) and
    its traffic to remote regions inherits that region's inter-DC latency on
    top of its own last-mile latency; its bandwidth to anywhere is limited by
    the public-Internet access link.
    """
    spec = spec or TestbedSpec()
    regions = list(EC2_REGIONS)[: spec.dc_count]

    sites: list[Site] = []
    for region in regions:
        sites.append(
            Site(
                dc_site_name(region),
                SiteKind.DATA_CENTER,
                spec.dc_slots,
                proc_rate_eps=spec.proc_rate_eps,
            )
        )
    edge_home: dict[str, str] = {}
    for i in range(spec.edge_count):
        name = edge_site_name(i)
        home = regions[i % len(regions)]
        edge_home[name] = home
        sites.append(
            Site(
                name,
                SiteKind.EDGE,
                EDGE_SLOT_CYCLE[i % len(EDGE_SLOT_CYCLE)],
                proc_rate_eps=spec.proc_rate_eps,
            )
        )

    topo = Topology(sites)

    # Data-center mesh: symmetric latency, direction-sampled bandwidth.
    for a in regions:
        for b in regions:
            if a == b:
                continue
            latency = dc_latency_ms(a, b)
            topo.set_link(
                dc_site_name(a),
                dc_site_name(b),
                _dc_bandwidth_mbps(rng, latency),
                latency,
            )

    # Edge links: the public Internet routes to different destinations over
    # different peering paths, so each destination gets its own capacity draw
    # around the edge node's nominal access rate.  Independent per-link
    # capacities are what make scale-out effective for network bottlenecks
    # (Figure 4: the load of a constrained link u->A is split across u->A and
    # u->B, which only helps if u->B has capacity of its own).
    edge_names = [edge_site_name(i) for i in range(spec.edge_count)]
    access_bw = {name: _edge_bandwidth_mbps(rng) for name in edge_names}
    access_lat = {name: _edge_latency_ms(rng) for name in edge_names}

    def _path_bandwidth(nominal: float) -> float:
        return float(np.clip(nominal * rng.uniform(0.6, 1.3), 1.0, 30.0))

    for name in edge_names:
        home = edge_home[name]
        for region in regions:
            wan_extra = 0.0 if region == home else dc_latency_ms(home, region)
            latency = access_lat[name] + wan_extra
            topo.set_link(
                name, dc_site_name(region), _path_bandwidth(access_bw[name]), latency
            )
            topo.set_link(
                dc_site_name(region), name, _path_bandwidth(access_bw[name]), latency
            )
        for other in edge_names:
            if other == name:
                continue
            other_home = edge_home[other]
            wan_extra = (
                0.0 if other_home == home else dc_latency_ms(home, other_home)
            )
            latency = access_lat[name] + access_lat[other] + wan_extra
            bandwidth = _path_bandwidth(min(access_bw[name], access_bw[other]))
            topo.set_link(name, other, bandwidth, latency)

    return topo


def edge_home_region(edge_index: int, dc_count: int = 8) -> str:
    """The region an edge node is homed at under :func:`paper_testbed`."""
    return list(EC2_REGIONS)[:dc_count][edge_index % dc_count]


def network_distributions(topo: Topology) -> dict[str, np.ndarray]:
    """Bandwidth/latency samples split by link class, for Figure 7's CDFs.

    Edge-class links are those touching an edge site; as in the paper's
    figure, only intra-region edge connections are included for the edge
    class (edge connections "only consider data centers within the same
    region").
    """
    edge_bw, edge_lat, dc_bw, dc_lat = [], [], [], []
    for link in topo.links():
        src_edge = topo.site(link.src).is_edge
        dst_edge = topo.site(link.dst).is_edge
        if not src_edge and not dst_edge:
            dc_bw.append(link.bandwidth_mbps)
            dc_lat.append(link.latency_ms)
        elif link.latency_ms <= 150.0:
            # Intra-region edge connections only, per the figure caption.
            edge_bw.append(link.bandwidth_mbps)
            edge_lat.append(link.latency_ms)
    return {
        "edge_bandwidth_mbps": np.array(edge_bw),
        "edge_latency_ms": np.array(edge_lat),
        "dc_bandwidth_mbps": np.array(dc_bw),
        "dc_latency_ms": np.array(dc_lat),
    }

"""Sites and computing slots.

The paper abstracts each location's computational resources as *computing
slots*, each able to run exactly one task (Sections 3.1 and 7: "homogeneous
compute power across slots"); heterogeneity across sites is expressed only
through how many slots a site offers.  The testbed in Section 8.2 uses 8 edge
nodes with 2-4 slots each and 8 data-center nodes with 8 slots each.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import InsufficientSlotsError, TopologyError


class SiteKind(enum.Enum):
    """Whether a site is an edge cluster or a data center."""

    EDGE = "edge"
    DATA_CENTER = "data_center"


@dataclass
class Site:
    """One geo-distributed location offering computing slots.

    Attributes:
        name: Unique site identifier (e.g. ``"dc-oregon"``).
        kind: Edge cluster or data center.
        total_slots: Number of computing slots this site provides.
        proc_rate_eps: Events/second one slot can process for a unit-cost
            operator; operator cost scales this down.
    """

    name: str
    kind: SiteKind
    total_slots: int
    proc_rate_eps: float = 40_000.0
    _used_slots: int = field(default=0, repr=False)
    _failed: bool = field(default=False, repr=False)
    _slowdown: float = field(default=1.0, repr=False)

    def __post_init__(self) -> None:
        if self.total_slots < 0:
            raise TopologyError(
                f"site {self.name!r}: total_slots must be >= 0, "
                f"got {self.total_slots}"
            )
        if self.proc_rate_eps <= 0:
            raise TopologyError(
                f"site {self.name!r}: proc_rate_eps must be > 0, "
                f"got {self.proc_rate_eps}"
            )

    @property
    def is_edge(self) -> bool:
        return self.kind is SiteKind.EDGE

    @property
    def slowdown(self) -> float:
        """Straggler factor: 1.0 is nominal, 4.0 means 4x slower slots."""
        return self._slowdown

    @property
    def effective_proc_rate_eps(self) -> float:
        """Per-slot processing rate after any straggler slowdown."""
        return self.proc_rate_eps / self._slowdown

    def set_slowdown(self, factor: float) -> None:
        """Mark the site as a straggler (factor > 1) or restore it (1.0).

        Stragglers are one of the wide-area dynamics WASP targets
        (Section 1): the site keeps running, just slower, so the diagnosis
        sees a compute bottleneck and the policy re-assigns or scales.
        """
        if factor < 1.0:
            raise TopologyError(
                f"site {self.name!r}: slowdown must be >= 1, got {factor}"
            )
        self._slowdown = float(factor)

    @property
    def failed(self) -> bool:
        """True while the site's resources are revoked (failure injection)."""
        return self._failed

    @property
    def used_slots(self) -> int:
        return self._used_slots

    @property
    def available_slots(self) -> int:
        """Slots free for new tasks (``A[s]`` in the placement ILP).

        Never negative: a slot revocation racing an adaptation rollback can
        transiently leave ``used > total``; the deficit just means no new
        tasks fit until slots are restored or released.
        """
        if self._failed:
            return 0
        return max(0, self.total_slots - self._used_slots)

    def allocate(self, count: int = 1) -> None:
        """Claim ``count`` slots for running tasks."""
        if count < 0:
            raise TopologyError(f"cannot allocate {count} slots")
        if self._failed:
            raise InsufficientSlotsError(
                f"site {self.name!r} has failed; no slots available"
            )
        if self._used_slots + count > self.total_slots:
            raise InsufficientSlotsError(
                f"site {self.name!r}: requested {count} slots but only "
                f"{self.available_slots} of {self.total_slots} are free"
            )
        self._used_slots += count

    def release(self, count: int = 1) -> None:
        """Return ``count`` slots to the pool."""
        if count < 0:
            raise TopologyError(f"cannot release {count} slots")
        if count > self._used_slots:
            raise TopologyError(
                f"site {self.name!r}: releasing {count} slots but only "
                f"{self._used_slots} are in use"
            )
        self._used_slots -= count

    def fail(self) -> None:
        """Revoke all computational resources (Section 8.6 failure at t=540)."""
        self._failed = True

    def recover(self) -> None:
        """Re-allocate the revoked resources."""
        self._failed = False

    def release_all(self) -> None:
        """Free every slot (used when a failed site's tasks are torn down)."""
        self._used_slots = 0

    def force_used_slots(self, count: int) -> None:
        """Set the used-slot counter directly (adaptation rollback only).

        The transactional executor restores the pre-action accounting with
        this; normal allocation must go through :meth:`allocate`.
        """
        if count < 0:
            raise TopologyError(
                f"site {self.name!r}: used slots must be >= 0, got {count}"
            )
        self._used_slots = count

    def revoke_slots(self, count: int) -> int:
        """Withdraw up to ``count`` *free* slots (chaos: resource revocation).

        Shrinking the pool makes placements that needed those slots
        infeasible (the ILP's ``A[s]`` drops), without touching running
        tasks.  Returns how many slots were actually revoked.
        """
        if count < 0:
            raise TopologyError(f"cannot revoke {count} slots")
        revoked = min(count, max(0, self.total_slots - self._used_slots))
        self.total_slots -= revoked
        return revoked

    def restore_slots(self, count: int) -> None:
        """Return previously revoked slots to the pool."""
        if count < 0:
            raise TopologyError(f"cannot restore {count} slots")
        self.total_slots += count

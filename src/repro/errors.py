"""Exception hierarchy for the WASP reproduction.

Every error raised by this package derives from :class:`WaspError` so callers
can catch the whole family with a single ``except`` clause.  Sub-classes are
grouped by the subsystem that raises them.
"""

from __future__ import annotations


class WaspError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(WaspError):
    """An invalid configuration value was supplied."""


class TopologyError(WaspError):
    """The WAN topology was queried or mutated inconsistently."""


class UnknownSiteError(TopologyError):
    """A site name does not exist in the topology."""

    def __init__(self, site: str) -> None:
        super().__init__(f"unknown site: {site!r}")
        self.site = site


class PlanError(WaspError):
    """A logical or physical plan is malformed."""


class CycleError(PlanError):
    """A logical plan contains a cycle (plans must be DAGs)."""


class PlacementError(WaspError):
    """The WAN-aware placement ILP could not be solved."""


class InfeasiblePlacementError(PlacementError):
    """No task placement satisfies the bandwidth/slot constraints (Eq. 2-5)."""


class SchedulingError(WaspError):
    """The scheduler could not deploy or redeploy a physical plan."""


class InsufficientSlotsError(SchedulingError):
    """Not enough computing slots are available for a deployment."""


class StateError(WaspError):
    """Operator state was accessed or migrated inconsistently."""


class CheckpointError(StateError):
    """A checkpoint could not be taken or restored."""


class MigrationError(StateError):
    """A state migration plan could not be constructed or executed."""


class AdaptationError(WaspError):
    """The reconfiguration manager failed to apply an adaptation action."""


class ReplanningError(AdaptationError):
    """No safe alternative plan exists (e.g. incompatible stateful sub-plans)."""


class AdaptationRollbackError(AdaptationError):
    """An adaptation action failed mid-flight and its snapshot was restored.

    Raised by the transactional executor when post-apply verification finds
    the system inconsistent (e.g. a site died while a state transfer was in
    flight).  The rollback itself has already happened when this propagates.
    """


class SimulationError(WaspError):
    """The simulation kernel was driven into an invalid configuration."""


class ChaosError(WaspError):
    """A chaos-injection fault spec is invalid or cannot be applied."""


class ObsError(WaspError):
    """An observability record, sink or trace file is invalid."""

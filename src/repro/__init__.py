"""WASP: Wide-area Adaptive Stream Processing - a full reproduction.

This package reproduces the system described in

    Albert Jonathan, Abhishek Chandra, Jon Weissman.
    "WASP: Wide-area Adaptive Stream Processing." Middleware '20.

on a self-contained discrete-time simulation substrate: a WAN topology model
(:mod:`repro.network`), a fluid-flow stream-processing engine standing in
for Apache Flink (:mod:`repro.engine`), a WAN-aware query planner and
scheduler (:mod:`repro.planner`), and - the paper's contribution - the WASP
monitoring/diagnosis/adaptation stack (:mod:`repro.core`).

Start with :mod:`repro.api` for the high-level interface, or
``examples/quickstart.py`` for a guided tour.  ``benchmarks/`` regenerates
every table and figure of the paper's evaluation.
"""

from . import api
from .config import DEFAULT_CONFIG, WaspConfig
from .errors import WaspError

__version__ = "1.0.0"

__all__ = ["DEFAULT_CONFIG", "WaspConfig", "WaspError", "api", "__version__"]

"""Event sinks: ring buffer, JSONL writer, Prometheus textfile exporter.

A sink receives the envelope dicts the :class:`~repro.obs.events.EventBus`
emits.  Three are provided:

* :class:`RingBufferSink` - bounded in-memory buffer, the tool for tests
  and interactive inspection;
* :class:`JsonlSink` - one JSON object per line with the bus's stable field
  ordering preserved, the on-disk trace format ``repro trace`` reads;
* :class:`PrometheusTextfileSink` - renders the latest metrics ``window``
  event plus lifecycle counters into the Prometheus textfile-collector
  format (node_exporter's ``--collector.textfile.directory`` convention),
  fed from :class:`~repro.engine.metrics.GlobalMetricMonitor` windows via
  the controller's ``window`` events.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO

from ..errors import ObsError


class RingBufferSink:
    """Keep the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ObsError(f"capacity must be > 0, got {capacity}")
        self._buffer: deque[dict] = deque(maxlen=capacity)

    def write(self, record: dict) -> None:
        self._buffer.append(record)

    def close(self) -> None:
        pass

    @property
    def records(self) -> list[dict]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink:
    """Append each record as one JSON line to a file (or file-like).

    Field ordering follows dict insertion order - the bus builds records
    envelope-first, payload in dataclass declaration order - so two runs of
    the same seed produce byte-identical traces.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns = False
            self.path: Path | None = None
        else:
            self.path = Path(target)
            self._file = self.path.open("w", encoding="utf-8")
            self._owns = True
        self.written = 0

    def write(self, record: dict) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()
        elif not self._owns:
            try:
                self._file.flush()
            except ValueError:  # pragma: no cover - already-closed stream
                pass

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file; raises :class:`ObsError` on malformed JSON."""
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObsError(
                    f"{path}:{lineno}: malformed JSON: {exc}"
                ) from exc
    return records


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class PrometheusTextfileSink:
    """Exports the control loop's state as Prometheus textfile metrics.

    Gauges come from the latest ``window`` event (per-stage estimated
    workload, utilization and backlog; per-link inflow and backlog);
    counters accumulate over the run (committed/rolled-back adaptations,
    migrated state, chaos faults, checkpoints).  The file is rewritten
    atomically-enough (single ``write_text``) on every window and on
    :meth:`close`, matching the node_exporter textfile-collector contract.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._window: dict | None = None
        self._commits = 0
        self._rollbacks = 0
        self._abandoned = 0
        self._faults: dict[str, int] = {}
        self._migrated_mb = 0.0
        self._migration_transfers = 0
        self._checkpoints = 0
        self._state_abandoned_mb = 0.0

    def write(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "window":
            self._window = record
            self.flush()
        elif kind == "commit":
            self._commits += 1
        elif kind == "rollback":
            self._rollbacks += 1
        elif kind == "abandoned":
            self._abandoned += 1
        elif kind == "chaos.fault":
            fault = str(record.get("fault", "unknown"))
            self._faults[fault] = self._faults.get(fault, 0) + 1
        elif kind == "migrate.transfer":
            self._migrated_mb += float(record.get("size_mb", 0.0))
            self._migration_transfers += 1
        elif kind == "migrate.end":
            self._state_abandoned_mb += float(
                record.get("abandoned_mb", 0.0)
            )
        elif kind == "checkpoint":
            self._checkpoints += 1

    def close(self) -> None:
        self.flush()

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def render(self) -> str:
        """The textfile body (also written by :meth:`flush`)."""
        lines: list[str] = []

        def metric(
            name: str, help_: str, type_: str, samples: list[tuple[str, float]]
        ) -> None:
            if not samples:
                return
            lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {type_}")
            for labels, value in samples:
                lines.append(f"{name}{labels} {value!r}")

        window = self._window
        if window is not None:
            stage_rows = sorted((window.get("stages") or {}).items())
            for field, help_ in (
                ("lambda_p", "observed processing rate over the window"),
                ("lambda_hat", "estimated actual (unthrottled) workload"),
                ("utilization", "fraction of processing capacity in use"),
                ("backlog", "input backlog at window end (events)"),
            ):
                unit = "" if field == "utilization" else (
                    "_eps" if field.startswith("lambda") else "_events"
                )
                metric(
                    f"wasp_stage_{field}{unit}",
                    help_,
                    "gauge",
                    [
                        (
                            f'{{stage="{_escape_label(name)}"}}',
                            float(stats.get(field, 0.0)),
                        )
                        for name, stats in stage_rows
                    ],
                )
            link_rows = sorted((window.get("links") or {}).items())
            metric(
                "wasp_link_inflow_eps",
                "events/s transferred inbound over each WAN link",
                "gauge",
                [
                    (
                        f'{{link="{_escape_label(link)}"}}',
                        float(stats.get("inflow_eps", 0.0)),
                    )
                    for link, stats in link_rows
                ],
            )
            metric(
                "wasp_link_backlog_events",
                "inbound WAN backlog at window end",
                "gauge",
                [
                    (
                        f'{{link="{_escape_label(link)}"}}',
                        float(stats.get("backlog", 0.0)),
                    )
                    for link, stats in link_rows
                ],
            )
            metric(
                "wasp_window_end_seconds",
                "simulated time at the end of the exported window",
                "gauge",
                [("", float(window.get("t_end_s", 0.0)))],
            )
        metric(
            "wasp_adaptations_total",
            "adaptation attempts by outcome",
            "counter",
            [
                ('{outcome="committed"}', float(self._commits)),
                ('{outcome="rolled-back"}', float(self._rollbacks)),
                ('{outcome="abandoned"}', float(self._abandoned)),
            ],
        )
        metric(
            "wasp_migration_state_mb_total",
            "state shipped across the WAN by adaptations",
            "counter",
            [("", self._migrated_mb)],
        )
        metric(
            "wasp_migration_transfers_total",
            "individual state-partition transfers",
            "counter",
            [("", float(self._migration_transfers))],
        )
        metric(
            "wasp_state_abandoned_mb_total",
            "state abandoned instead of migrated",
            "counter",
            [("", self._state_abandoned_mb)],
        )
        metric(
            "wasp_checkpoint_rounds_total",
            "localized checkpoint rounds taken",
            "counter",
            [("", float(self._checkpoints))],
        )
        metric(
            "wasp_chaos_faults_total",
            "chaos fault firings and reverts by fault kind",
            "counter",
            [
                (f'{{fault="{_escape_label(fault)}"}}', float(count))
                for fault, count in sorted(self._faults.items())
            ],
        )
        return "\n".join(lines) + ("\n" if lines else "")

    def flush(self) -> None:
        self.path.write_text(self.render(), encoding="utf-8")

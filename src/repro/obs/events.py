"""Typed events and the event bus for the adaptation control loop.

WASP's contribution is a control loop - monitor, estimate, diagnose, decide,
migrate, verify - and this module gives that loop a structured, replayable
record.  Every lifecycle step is a frozen dataclass (:class:`RoundStart`,
:class:`Diagnose`, :class:`MigrateTransfer`, ...); instrumented components
emit them through an :class:`EventBus`, which stamps each one with a
monotonic sequence number and the enclosing trace span and fans it out to
the attached sinks (:mod:`repro.obs.sinks`).

Two properties the rest of the system depends on:

* **Zero overhead when nothing listens.**  ``bool(bus)`` is False while no
  sink is attached, and every instrumentation site guards event
  construction behind it - a run without sinks executes the exact same
  instruction stream (and RNG draws) as one built before this module
  existed, which is what keeps fixed-seed recorder digests bit-identical.
* **Stable field ordering.**  Emitted records are plain dicts built in a
  fixed order (envelope fields, then payload fields in dataclass
  declaration order), so a JSONL trace is byte-stable across runs of the
  same seed and diffs cleanly across commits.

Events carry *simulated* time (``t_s``), never wall-clock: a trace is a
deterministic function of the seed, like every other artifact of a run.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass
from typing import ClassVar, Iterator, Protocol

from ..errors import ObsError

#: Schema identifier stamped on every emitted record.
SCHEMA = "wasp-obs/v1"

#: Envelope fields, in emission order, preceding the payload fields.
ENVELOPE_FIELDS = ("schema", "seq", "t_s", "kind", "span", "parent")


class Sink(Protocol):
    """Anything that can receive emitted records (see :mod:`.sinks`)."""

    def write(self, record: dict) -> None: ...

    def close(self) -> None: ...


# --------------------------------------------------------------------------- #
# Event taxonomy
# --------------------------------------------------------------------------- #

#: kind -> (event class, payload field names); populated by ``_register``.
EVENT_TYPES: dict[str, tuple[type, tuple[str, ...]]] = {}


def _register(cls):
    """Class decorator: index an event type by its ``kind`` string."""
    fields = tuple(
        f.name for f in dataclasses.fields(cls) if f.name != "t_s"
    )
    if cls.kind in EVENT_TYPES:  # pragma: no cover - author error
        raise ObsError(f"duplicate event kind {cls.kind!r}")
    EVENT_TYPES[cls.kind] = (cls, fields)
    return cls


@dataclass(frozen=True)
class ObsEvent:
    """Base event: everything carries the simulated time it happened at."""

    t_s: float

    kind: ClassVar[str] = ""

    def payload(self) -> dict:
        """Payload fields in declaration order (stable JSONL ordering)."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "t_s"
        }


# -- adaptation round ------------------------------------------------------- #


@_register
@dataclass(frozen=True)
class RoundStart(ObsEvent):
    """An adaptation round begins (one monitoring interval)."""

    round: int
    stages: int  # stages in the live plan

    kind: ClassVar[str] = "round.start"


@_register
@dataclass(frozen=True)
class WindowSnapshot(ObsEvent):
    """The metrics window the round observed, with per-stage estimates.

    ``stages`` maps stage name to ``{lambda_p, lambda_hat, utilization,
    backlog, backlog_growth}``; ``links`` maps ``"src->dst"`` to
    ``{inflow_eps, backlog}`` aggregated over destination stages.  This is
    the event the Prometheus exporter turns into gauges.
    """

    t_start_s: float
    t_end_s: float
    offered_eps: float
    mean_delay_s: float
    stages: dict
    links: dict

    kind: ClassVar[str] = "window"


@_register
@dataclass(frozen=True)
class Diagnose(ObsEvent):
    """One stage's health verdict (Section 3.2)."""

    stage: str
    health: str
    utilization: float
    expected_input_eps: float
    capacity_eps: float
    backlog: float
    backlog_growth: float
    slow_sites: list

    kind: ClassVar[str] = "diagnose"


@_register
@dataclass(frozen=True)
class Decide(ObsEvent):
    """The policy chose an action for a stage (Figure 6)."""

    stage: str
    action: str
    reason: str

    kind: ClassVar[str] = "decide"


@_register
@dataclass(frozen=True)
class RoundEnd(ObsEvent):
    """The adaptation round finished."""

    round: int
    decided: int  # actions the policy proposed
    executed: int  # actions that committed

    kind: ClassVar[str] = "round.end"


# -- transactional execution ------------------------------------------------ #


@_register
@dataclass(frozen=True)
class AttemptStart(ObsEvent):
    """One technique of the Figure-6 fallback chain begins."""

    stage: str
    attempt: str  # "primary", "retry-1", "scale-out", "abandon-state"
    action: str
    reason: str

    kind: ClassVar[str] = "attempt.start"


@_register
@dataclass(frozen=True)
class Validate(ObsEvent):
    """Pre-apply validation passed for the attempt's action."""

    stage: str
    action: str

    kind: ClassVar[str] = "validate"


@_register
@dataclass(frozen=True)
class Snapshot(ObsEvent):
    """The transaction captured its rollback snapshot."""

    stage: str

    kind: ClassVar[str] = "snapshot"


@_register
@dataclass(frozen=True)
class Apply(ObsEvent):
    """The action's apply path completed (not yet verified)."""

    stage: str
    action: str
    transition_s: float

    kind: ClassVar[str] = "apply"


@_register
@dataclass(frozen=True)
class Verify(ObsEvent):
    """Post-apply consistency verification passed."""

    stage: str

    kind: ClassVar[str] = "verify"


@_register
@dataclass(frozen=True)
class Commit(ObsEvent):
    """The attempt committed; the adaptation is now live."""

    stage: str
    attempt: str
    action: str
    reason: str
    transition_s: float

    kind: ClassVar[str] = "commit"


@_register
@dataclass(frozen=True)
class Rollback(ObsEvent):
    """The attempt rolled back to the pre-action snapshot."""

    stage: str
    attempt: str
    error: str

    kind: ClassVar[str] = "rollback"


@_register
@dataclass(frozen=True)
class FallbackHop(ObsEvent):
    """The chain moved to the next technique after a rollback."""

    stage: str
    from_attempt: str
    to_attempt: str

    kind: ClassVar[str] = "fallback"


@_register
@dataclass(frozen=True)
class Abandoned(ObsEvent):
    """Every technique in the fallback chain rolled back."""

    stage: str
    action: str

    kind: ClassVar[str] = "abandoned"


# -- state migration -------------------------------------------------------- #


@_register
@dataclass(frozen=True)
class MigrateStart(ObsEvent):
    """A migration plan with >= 1 transfer (or abandonment) was computed."""

    stage: str
    strategy: str
    transfers: int
    total_mb: float

    kind: ClassVar[str] = "migrate.start"


@_register
@dataclass(frozen=True)
class MigrateTransfer(ObsEvent):
    """One state partition's WAN transfer within a migration plan."""

    stage: str
    from_site: str
    to_site: str
    size_mb: float
    bytes: float
    bandwidth_mbps: float
    duration_s: float

    kind: ClassVar[str] = "migrate.transfer"


@_register
@dataclass(frozen=True)
class MigrateEnd(ObsEvent):
    """Migration plan fully described; cost is the slowest transfer."""

    stage: str
    transition_s: float
    abandoned_mb: float

    kind: ClassVar[str] = "migrate.end"


# -- environment ------------------------------------------------------------ #


@_register
@dataclass(frozen=True)
class ChaosFault(ObsEvent):
    """A chaos fault fired (``phase="apply"``) or reverted."""

    fault: str
    detail: str
    phase: str

    kind: ClassVar[str] = "chaos.fault"


@_register
@dataclass(frozen=True)
class Checkpoint(ObsEvent):
    """One localized checkpoint round (Section 5)."""

    records: int
    total_mb: float
    skipped_sites: list

    kind: ClassVar[str] = "checkpoint"


@_register
@dataclass(frozen=True)
class Restore(ObsEvent):
    """Checkpoint-replay recovery re-queued a failed site's lost window."""

    stage: str
    site: str
    events: float
    replay_window_s: float

    kind: ClassVar[str] = "restore"


# -- spans ------------------------------------------------------------------ #


@_register
@dataclass(frozen=True)
class SpanStart(ObsEvent):
    """A named span opened (children nest via the envelope's ``parent``)."""

    name: str

    kind: ClassVar[str] = "span.start"


@_register
@dataclass(frozen=True)
class SpanEnd(ObsEvent):
    """The matching span closed; ``duration_s`` is in simulated time."""

    name: str
    duration_s: float

    kind: ClassVar[str] = "span.end"


# --------------------------------------------------------------------------- #
# The bus
# --------------------------------------------------------------------------- #


class EventBus:
    """Fans typed events out to sinks, stamping sequence and span ids.

    ``bool(bus)`` is False while no sink is attached; instrumentation sites
    use that as their zero-overhead guard (no event object is even
    constructed).  Span ids are deterministic (``s1``, ``s2``, ... in
    emission order), so traces of the same seed are byte-identical.
    """

    __slots__ = ("_sinks", "_seq", "_span_stack", "_span_counter")

    def __init__(self) -> None:
        self._sinks: list[Sink] = []
        self._seq = 0
        self._span_stack: list[str] = []
        self._span_counter = 0

    def __bool__(self) -> bool:
        return bool(self._sinks)

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    # -- sink management ---------------------------------------------------- #

    def attach(self, sink: Sink) -> Sink:
        """Attach a sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def close(self) -> None:
        """Close and detach every sink."""
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()

    # -- emission ----------------------------------------------------------- #

    def emit(self, event: ObsEvent) -> None:
        """Stamp and deliver one event to every sink."""
        if not self._sinks:
            return
        self._seq += 1
        span = self._span_stack[-1] if self._span_stack else None
        parent = (
            self._span_stack[-2] if len(self._span_stack) >= 2 else None
        )
        record = {
            "schema": SCHEMA,
            "seq": self._seq,
            "t_s": event.t_s,
            "kind": event.kind,
            "span": span,
            "parent": parent,
        }
        record.update(event.payload())
        for sink in self._sinks:
            sink.write(record)

    @contextmanager
    def span(self, name: str, t_s: float) -> Iterator[str | None]:
        """Open a named span; events emitted inside nest under it.

        The span-start/-end records carry the new span's own id in the
        ``span`` envelope field and the enclosing span in ``parent``, so a
        reader can rebuild the tree from ``span``/``parent`` alone.  When
        no sink is attached this is a no-op yielding ``None``.
        """
        if not self._sinks:
            yield None
            return
        self._span_counter += 1
        span_id = f"s{self._span_counter}"
        self._span_stack.append(span_id)
        self.emit(SpanStart(t_s, name))
        try:
            yield span_id
        finally:
            # Close at the same simulated time by default; callers that
            # span multiple ticks emit their own end time via events.
            self.emit(SpanEnd(t_s, name, 0.0))
            self._span_stack.pop()

    def span_at(self, name: str, t_start_s: float):
        """Like :meth:`span` but the close records a real sim-duration.

        Returns a context manager whose ``__exit__`` accepts the implicit
        end time set via :meth:`_SpanHandle.set_end`.
        """
        return _SpanHandle(self, name, t_start_s)


class _SpanHandle:
    """Context manager for spans whose end time differs from their start."""

    __slots__ = ("_bus", "_name", "_t_start", "_t_end", "_id")

    def __init__(self, bus: EventBus, name: str, t_start_s: float) -> None:
        self._bus = bus
        self._name = name
        self._t_start = t_start_s
        self._t_end = t_start_s
        self._id: str | None = None

    @property
    def span_id(self) -> str | None:
        return self._id

    def set_end(self, t_end_s: float) -> None:
        self._t_end = max(self._t_end, t_end_s)

    def __enter__(self) -> "_SpanHandle":
        bus = self._bus
        if bus._sinks:
            bus._span_counter += 1
            self._id = f"s{bus._span_counter}"
            bus._span_stack.append(self._id)
            bus.emit(SpanStart(self._t_start, self._name))
        return self

    def __exit__(self, *exc) -> None:
        bus = self._bus
        if self._id is not None and bus._span_stack:
            bus.emit(
                SpanEnd(
                    self._t_end, self._name, self._t_end - self._t_start
                )
            )
            bus._span_stack.pop()
        return None


# --------------------------------------------------------------------------- #
# Schema validation
# --------------------------------------------------------------------------- #


def validate_record(record: dict) -> list[str]:
    """Check one emitted/parsed record against the event schema.

    Returns a list of problems (empty = valid).  Used by ``repro trace``
    and the CI smoke job to reject malformed JSONL lines.
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    if record.get("schema") != SCHEMA:
        problems.append(
            f"schema is {record.get('schema')!r}, expected {SCHEMA!r}"
        )
    for name in ("seq", "t_s", "kind"):
        if name not in record:
            problems.append(f"missing envelope field {name!r}")
    if not isinstance(record.get("seq"), int):
        problems.append("seq must be an integer")
    if not isinstance(record.get("t_s"), (int, float)):
        problems.append("t_s must be a number")
    for name in ("span", "parent"):
        value = record.get(name)
        if value is not None and not isinstance(value, str):
            problems.append(f"{name} must be a string or null")
    kind = record.get("kind")
    entry = EVENT_TYPES.get(kind) if isinstance(kind, str) else None
    if entry is None:
        problems.append(f"unknown event kind {kind!r}")
        return problems
    _, payload_fields = entry
    expected = set(payload_fields)
    present = set(record) - set(ENVELOPE_FIELDS)
    missing = expected - present
    extra = present - expected
    if missing:
        problems.append(f"{kind}: missing field(s) {sorted(missing)}")
    if extra:
        problems.append(f"{kind}: unexpected field(s) {sorted(extra)}")
    return problems


def require_valid(record: dict) -> dict:
    """Raise :class:`~repro.errors.ObsError` unless ``record`` validates."""
    problems = validate_record(record)
    if problems:
        raise ObsError(
            "invalid obs record: " + "; ".join(problems)
        )
    return record

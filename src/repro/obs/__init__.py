"""Structured observability for the adaptation control loop.

``repro.obs`` is the runtime telemetry layer: typed, sim-clock-stamped
events for the full adaptation lifecycle (:mod:`.events`), span-structured
trace reconstruction (:mod:`.trace`) and pluggable sinks - in-memory ring
buffer, JSONL trace files, Prometheus textfile metrics (:mod:`.sinks`).

Wiring: :class:`~repro.experiments.harness.ExperimentRun` owns one
:class:`EventBus` and hands it to the controller, checkpoint coordinator
and chaos injector.  Attach a sink before (or during) a run::

    run = ExperimentRun(topology, query, wasp(), rngs=rngs)
    run.obs.attach(JsonlSink("trace.jsonl"))
    run.run(900.0, dynamics)
    run.obs.close()

then inspect it with ``python -m repro trace trace.jsonl``.  With no sink
attached the bus is falsy and every instrumentation site skips even event
construction, so an unobserved run is bit-identical to an uninstrumented
one.
"""

from .events import (
    ENVELOPE_FIELDS,
    EVENT_TYPES,
    SCHEMA,
    Abandoned,
    Apply,
    AttemptStart,
    ChaosFault,
    Checkpoint,
    Commit,
    Decide,
    Diagnose,
    EventBus,
    FallbackHop,
    MigrateEnd,
    MigrateStart,
    MigrateTransfer,
    ObsEvent,
    Restore,
    Rollback,
    RoundEnd,
    RoundStart,
    Snapshot,
    SpanEnd,
    SpanStart,
    Validate,
    Verify,
    WindowSnapshot,
    require_valid,
    validate_record,
)
from .sinks import (
    JsonlSink,
    PrometheusTextfileSink,
    RingBufferSink,
    read_jsonl,
)
from .trace import (
    ActionTrace,
    AttemptTrace,
    RoundTrace,
    Span,
    TraceSummary,
    TransferTrace,
    build_spans,
    reconstruct,
    render_timeline,
)

__all__ = [
    "ENVELOPE_FIELDS",
    "EVENT_TYPES",
    "SCHEMA",
    "Abandoned",
    "ActionTrace",
    "Apply",
    "AttemptStart",
    "AttemptTrace",
    "ChaosFault",
    "Checkpoint",
    "Commit",
    "Decide",
    "Diagnose",
    "EventBus",
    "FallbackHop",
    "JsonlSink",
    "MigrateEnd",
    "MigrateStart",
    "MigrateTransfer",
    "ObsEvent",
    "PrometheusTextfileSink",
    "Restore",
    "RingBufferSink",
    "Rollback",
    "RoundEnd",
    "RoundStart",
    "RoundTrace",
    "Snapshot",
    "Span",
    "SpanEnd",
    "SpanStart",
    "TraceSummary",
    "TransferTrace",
    "Validate",
    "Verify",
    "WindowSnapshot",
    "build_spans",
    "read_jsonl",
    "reconstruct",
    "render_timeline",
    "require_valid",
    "validate_record",
]

"""Trace reconstruction: spans, adaptation rounds and the CLI timeline.

The JSONL trace a run emits is a flat, strictly-ordered stream of envelope
records.  This module rebuilds the structures a human (or an assertion)
wants from it:

* :func:`build_spans` - the span tree (adaptation rounds nest attempts,
  attempts nest migrations) from the ``span``/``parent`` envelope fields;
* :func:`reconstruct` - per-round :class:`RoundTrace` objects in which every
  action's full Figure-6 fallback chain is replayed: each
  :class:`AttemptTrace` carries its outcome, error, migration transfers
  (bytes, bandwidth, duration) and the hop that led to it;
* :func:`render_timeline` - the text view ``python -m repro trace`` prints.

Reconstruction is the inverse of the controller's instrumentation: an
integration test round-trips a chaos run through JSONL and asserts that
every committed and rolled-back adaptation is recovered exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ObsError
from .events import validate_record


@dataclass
class Span:
    """One reconstructed span with its nested children."""

    span_id: str
    parent_id: str | None
    name: str
    t_start_s: float
    t_end_s: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float | None:
        if self.t_end_s is None:
            return None
        return self.t_end_s - self.t_start_s


def build_spans(records: list[dict]) -> list[Span]:
    """Rebuild the span forest from ``span.start``/``span.end`` records.

    Returns the root spans (those with no parent) in start order; children
    are nested.  Unclosed spans keep ``t_end_s=None``.
    """
    by_id: dict[str, Span] = {}
    roots: list[Span] = []
    for record in records:
        kind = record.get("kind")
        if kind == "span.start":
            span = Span(
                span_id=record.get("span") or "",
                parent_id=record.get("parent"),
                name=str(record.get("name", "")),
                t_start_s=float(record.get("t_s", 0.0)),
            )
            by_id[span.span_id] = span
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent.children.append(span)
            else:
                roots.append(span)
        elif kind == "span.end":
            span = by_id.get(record.get("span") or "")
            if span is not None:
                span.t_end_s = float(record.get("t_s", 0.0))
    return roots


# --------------------------------------------------------------------------- #
# Adaptation-round reconstruction
# --------------------------------------------------------------------------- #


@dataclass
class TransferTrace:
    """One state transfer recovered from a ``migrate.transfer`` record."""

    from_site: str
    to_site: str
    size_mb: float
    bytes: float
    bandwidth_mbps: float
    duration_s: float


@dataclass
class AttemptTrace:
    """One technique of the fallback chain, as the trace recorded it."""

    t_s: float
    stage: str
    label: str  # "primary", "retry-1", "scale-out", "abandon-state"
    action: str
    reason: str
    outcome: str = "in-flight"  # "committed" | "rolled-back"
    error: str = ""
    transition_s: float = 0.0
    strategy: str = ""
    transfers: list[TransferTrace] = field(default_factory=list)
    abandoned_mb: float = 0.0

    @property
    def migration_mb(self) -> float:
        return sum(t.size_mb for t in self.transfers)

    @property
    def migration_s(self) -> float:
        return max((t.duration_s for t in self.transfers), default=0.0)


@dataclass
class ActionTrace:
    """One decided action replayed through its full fallback chain."""

    stage: str
    action: str
    reason: str
    attempts: list[AttemptTrace] = field(default_factory=list)
    hops: list[tuple[str, str]] = field(default_factory=list)
    abandoned: bool = False

    @property
    def committed(self) -> AttemptTrace | None:
        for attempt in self.attempts:
            if attempt.outcome == "committed":
                return attempt
        return None

    @property
    def rolled_back(self) -> list[AttemptTrace]:
        return [a for a in self.attempts if a.outcome == "rolled-back"]


@dataclass
class RoundTrace:
    """One adaptation round (monitoring interval) of the control loop."""

    round: int
    t_s: float
    diagnoses: list[dict] = field(default_factory=list)
    decisions: list[dict] = field(default_factory=list)
    actions: list[ActionTrace] = field(default_factory=list)
    executed: int = 0
    window: dict | None = None


@dataclass
class TraceSummary:
    """Everything :func:`reconstruct` recovers from one trace."""

    rounds: list[RoundTrace] = field(default_factory=list)
    #: actions executed outside any round (``manager.execute`` calls)
    orphan_actions: list[ActionTrace] = field(default_factory=list)
    faults: list[dict] = field(default_factory=list)
    checkpoints: list[dict] = field(default_factory=list)
    restores: list[dict] = field(default_factory=list)
    t_min_s: float = 0.0
    t_max_s: float = 0.0
    records: int = 0

    @property
    def all_actions(self) -> list[ActionTrace]:
        out = list(self.orphan_actions)
        for rnd in self.rounds:
            out.extend(rnd.actions)
        return out


def reconstruct(records: list[dict], *, validate: bool = True) -> TraceSummary:
    """Replay a record stream into rounds, fallback chains and migrations.

    The stream must be seq-ordered (JSONL written by one bus always is).
    With ``validate=True`` every record is schema-checked first and the
    first invalid one raises :class:`~repro.errors.ObsError`.
    """
    if validate:
        for i, record in enumerate(records):
            problems = validate_record(record)
            if problems:
                raise ObsError(
                    f"record {i + 1} (seq {record.get('seq')!r}): "
                    + "; ".join(problems)
                )

    summary = TraceSummary(records=len(records))
    current_round: RoundTrace | None = None
    current_action: ActionTrace | None = None
    current_attempt: AttemptTrace | None = None
    times = [float(r["t_s"]) for r in records if "t_s" in r]
    if times:
        summary.t_min_s = min(times)
        summary.t_max_s = max(times)

    def close_action() -> None:
        nonlocal current_action, current_attempt
        if current_action is not None:
            target = (
                current_round.actions
                if current_round is not None
                else summary.orphan_actions
            )
            target.append(current_action)
        current_action = None
        current_attempt = None

    for record in records:
        kind = record.get("kind")
        t_s = float(record.get("t_s", 0.0))
        if kind == "round.start":
            close_action()
            current_round = RoundTrace(
                round=int(record.get("round", 0)), t_s=t_s
            )
            summary.rounds.append(current_round)
        elif kind == "round.end":
            close_action()
            if current_round is not None:
                current_round.executed = int(record.get("executed", 0))
            current_round = None
        elif kind == "window":
            if current_round is not None:
                current_round.window = record
        elif kind == "diagnose":
            if current_round is not None:
                current_round.diagnoses.append(record)
        elif kind == "decide":
            if current_round is not None:
                current_round.decisions.append(record)
        elif kind == "attempt.start":
            label = str(record.get("attempt", ""))
            if label == "primary" or current_action is None:
                close_action()
                current_action = ActionTrace(
                    stage=str(record.get("stage", "")),
                    action=str(record.get("action", "")),
                    reason=str(record.get("reason", "")),
                )
            current_attempt = AttemptTrace(
                t_s=t_s,
                stage=str(record.get("stage", "")),
                label=label,
                action=str(record.get("action", "")),
                reason=str(record.get("reason", "")),
            )
            current_action.attempts.append(current_attempt)
        elif kind == "fallback":
            if current_action is not None:
                current_action.hops.append(
                    (
                        str(record.get("from_attempt", "")),
                        str(record.get("to_attempt", "")),
                    )
                )
        elif kind == "migrate.start":
            if current_attempt is not None:
                current_attempt.strategy = str(record.get("strategy", ""))
        elif kind == "migrate.transfer":
            if current_attempt is not None:
                current_attempt.transfers.append(
                    TransferTrace(
                        from_site=str(record.get("from_site", "")),
                        to_site=str(record.get("to_site", "")),
                        size_mb=float(record.get("size_mb", 0.0)),
                        bytes=float(record.get("bytes", 0.0)),
                        bandwidth_mbps=float(
                            record.get("bandwidth_mbps", 0.0)
                        ),
                        duration_s=float(record.get("duration_s", 0.0)),
                    )
                )
        elif kind == "migrate.end":
            if current_attempt is not None:
                current_attempt.abandoned_mb += float(
                    record.get("abandoned_mb", 0.0)
                )
        elif kind == "commit":
            if current_attempt is not None:
                current_attempt.outcome = "committed"
                current_attempt.transition_s = float(
                    record.get("transition_s", 0.0)
                )
            close_action()
        elif kind == "rollback":
            if current_attempt is not None:
                current_attempt.outcome = "rolled-back"
                current_attempt.error = str(record.get("error", ""))
                current_attempt = None
        elif kind == "abandoned":
            if current_action is not None:
                current_action.abandoned = True
            close_action()
        elif kind == "chaos.fault":
            summary.faults.append(record)
        elif kind == "checkpoint":
            summary.checkpoints.append(record)
        elif kind == "restore":
            summary.restores.append(record)
    close_action()
    return summary


# --------------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------------- #


def _render_action(action: ActionTrace, indent: str) -> list[str]:
    lines = [
        f"{indent}[{action.stage}] {action.action}: {action.reason}"
    ]
    for attempt in action.attempts:
        detail = ""
        if attempt.outcome == "committed":
            if attempt.transfers:
                detail = (
                    f"  migrated {attempt.migration_mb:.1f} MB in "
                    f"{attempt.migration_s:.1f}s over "
                    f"{len(attempt.transfers)} transfer(s)"
                )
            if attempt.abandoned_mb > 0:
                detail += f"  abandoned {attempt.abandoned_mb:.1f} MB"
            detail += f"  transition {attempt.transition_s:.1f}s"
        elif attempt.outcome == "rolled-back":
            detail = f"  {attempt.error}"
        lines.append(
            f"{indent}  {attempt.label:<14}{attempt.outcome:<12}{detail}"
        )
    if action.abandoned:
        lines.append(
            f"{indent}  -> abandoned: every technique rolled back"
        )
    return lines


def render_timeline(records: list[dict], *, validate: bool = True) -> str:
    """The ``repro trace`` view: rounds, faults, fallbacks, migrations."""
    summary = reconstruct(records, validate=validate)
    actions = summary.all_actions
    committed = sum(1 for a in actions if a.committed is not None)
    abandoned = sum(1 for a in actions if a.abandoned)
    rollbacks = sum(len(a.rolled_back) for a in actions)
    header = [
        f"trace: {summary.records} events, "
        f"t={summary.t_min_s:.1f}s..{summary.t_max_s:.1f}s",
        f"rounds: {len(summary.rounds)}  actions: {committed} committed, "
        f"{rollbacks} rolled-back attempts, {abandoned} abandoned  "
        f"faults: {len(summary.faults)}  "
        f"checkpoints: {len(summary.checkpoints)}  "
        f"restores: {len(summary.restores)}",
        "",
    ]

    # Merge rounds, orphan actions and faults into one time-ordered list.
    entries: list[tuple[float, int, list[str]]] = []
    for i, rnd in enumerate(summary.rounds):
        unhealthy = [
            d for d in rnd.diagnoses if d.get("health") != "healthy"
        ]
        lines = [
            f"t={rnd.t_s:7.1f}s  round {rnd.round}: "
            f"{len(rnd.diagnoses)} stage(s) diagnosed"
            + (f", {len(unhealthy)} unhealthy" if unhealthy else "")
            + f", {len(rnd.actions)} action(s)"
        ]
        for diag in unhealthy:
            lines.append(
                f"             {diag.get('stage')}: {diag.get('health')} "
                f"(util {float(diag.get('utilization', 0.0)):.2f}, "
                f"backlog {float(diag.get('backlog', 0.0)):.0f})"
            )
        for action in rnd.actions:
            lines.extend(_render_action(action, "             "))
        entries.append((rnd.t_s, i, lines))
    offset = len(summary.rounds)
    for i, action in enumerate(summary.orphan_actions):
        t_s = action.attempts[0].t_s if action.attempts else 0.0
        lines = [f"t={t_s:7.1f}s  direct action:"]
        lines.extend(_render_action(action, "             "))
        entries.append((t_s, offset + i, lines))
    offset += len(summary.orphan_actions)
    for i, fault in enumerate(summary.faults):
        t_s = float(fault.get("t_s", 0.0))
        phase = fault.get("phase", "apply")
        marker = "fault" if phase == "apply" else "fault-revert"
        entries.append(
            (
                t_s,
                offset + i,
                [
                    f"t={t_s:7.1f}s  {marker} {fault.get('fault')}: "
                    f"{fault.get('detail')}"
                ],
            )
        )
    offset += len(summary.faults)
    for i, restore in enumerate(summary.restores):
        t_s = float(restore.get("t_s", 0.0))
        entries.append(
            (
                t_s,
                offset + i,
                [
                    f"t={t_s:7.1f}s  restore {restore.get('stage')}@"
                    f"{restore.get('site')}: replay "
                    f"{float(restore.get('events', 0.0)):.0f} events over "
                    f"{float(restore.get('replay_window_s', 0.0)):.0f}s"
                ],
            )
        )
    entries.sort(key=lambda e: (e[0], e[1]))
    body = [line for _, _, lines in entries for line in lines]
    return "\n".join(header + body)

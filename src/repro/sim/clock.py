"""Discrete-time simulation clock.

The reproduction advances in fixed ticks (1 s by default, matching the
granularity at which the paper reports delay and processing-ratio series).
:class:`SimClock` owns the current time and supports registering periodic
callbacks - the metric monitor, the checkpoint coordinator and the dynamics
driver all hang off it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SimulationError

TickCallback = Callable[[float], None]


@dataclass
class _PeriodicTask:
    name: str
    period_s: float
    callback: TickCallback
    next_due_s: float
    enabled: bool = True


class SimClock:
    """Fixed-step simulation clock with periodic callbacks.

    Callbacks registered via :meth:`every` fire *after* the tick they are due
    in, in registration order, receiving the current simulated time.  This
    mirrors how WASP's monitoring loop observes metrics aggregated over the
    preceding interval.
    """

    def __init__(self, tick_s: float = 1.0) -> None:
        if tick_s <= 0:
            raise SimulationError(f"tick_s must be > 0, got {tick_s}")
        self._tick_s = float(tick_s)
        self._now_s = 0.0
        self._tick_index = 0
        self._periodic: list[_PeriodicTask] = []

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_s

    @property
    def tick_s(self) -> float:
        return self._tick_s

    @property
    def tick_index(self) -> int:
        """Number of completed ticks."""
        return self._tick_index

    def every(
        self,
        period_s: float,
        callback: TickCallback,
        *,
        name: str = "",
        offset_s: float | None = None,
    ) -> str:
        """Register ``callback`` to fire every ``period_s`` seconds.

        Args:
            period_s: Period between invocations; must be positive.
            callback: Called with the current time once per period.
            name: Optional identifier (auto-generated when empty); used to
                enable/disable the task later.
            offset_s: Time of the first invocation.  Defaults to one full
                period (a monitor with a 40 s interval first fires at 40 s).

        Returns:
            The task name.
        """
        if period_s <= 0:
            raise SimulationError(f"period_s must be > 0, got {period_s}")
        task_name = name or f"periodic-{len(self._periodic)}"
        if any(t.name == task_name for t in self._periodic):
            raise SimulationError(f"duplicate periodic task name: {task_name!r}")
        first = period_s if offset_s is None else offset_s
        self._periodic.append(
            _PeriodicTask(task_name, float(period_s), callback, float(first))
        )
        return task_name

    def set_enabled(self, name: str, enabled: bool) -> None:
        """Enable or disable a periodic task by name."""
        for task in self._periodic:
            if task.name == name:
                task.enabled = enabled
                return
        raise SimulationError(f"no periodic task named {name!r}")

    def advance(self) -> float:
        """Advance the clock by one tick and fire any due callbacks.

        Returns:
            The new simulated time.
        """
        self._now_s += self._tick_s
        self._tick_index += 1
        for task in self._periodic:
            # A long tick may cover several periods; fire once per period to
            # keep the callback cadence faithful.
            while task.enabled and task.next_due_s <= self._now_s + 1e-9:
                task.callback(self._now_s)
                task.next_due_s += task.period_s
        return self._now_s

    def run_until(self, end_s: float) -> None:
        """Advance tick-by-tick until the clock reaches ``end_s``."""
        while self._now_s + 1e-9 < end_s:
            self.advance()

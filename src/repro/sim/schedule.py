"""Time-varying factor schedules used by the dynamics driver.

Section 8.4 drives experiments with piecewise-constant factors ("increase the
rate to 20,000 events/second at t=300"), Section 8.5 with factor vectors per
interval, and Section 8.6 with trace-like random variations bounded to a
range.  :class:`Schedule` covers all three shapes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class Breakpoint:
    """A (time, factor) pair; the factor holds until the next breakpoint."""

    t_s: float
    factor: float


class Schedule:
    """Piecewise-constant factor of simulated time.

    The schedule starts at ``factor(0) = initial`` unless a breakpoint at
    ``t = 0`` overrides it.
    """

    def __init__(
        self, breakpoints: list[tuple[float, float]] | None = None, initial: float = 1.0
    ) -> None:
        points = sorted(breakpoints or [])
        times = [t for t, _ in points]
        if len(set(times)) != len(times):
            raise SimulationError("schedule breakpoints must have unique times")
        if any(t < 0 for t in times):
            raise SimulationError("schedule breakpoints must be at t >= 0")
        if any(f < 0 for _, f in points):
            raise SimulationError("schedule factors must be >= 0")
        self._times = times
        self._factors = [f for _, f in points]
        self._initial = float(initial)

    def factor(self, t_s: float) -> float:
        """Return the factor in effect at time ``t_s``."""
        idx = bisect.bisect_right(self._times, t_s) - 1
        if idx < 0:
            return self._initial
        return self._factors[idx]

    def breakpoints(self) -> list[Breakpoint]:
        return [Breakpoint(t, f) for t, f in zip(self._times, self._factors)]

    @classmethod
    def constant(cls, factor: float = 1.0) -> "Schedule":
        return cls([], initial=factor)

    @classmethod
    def steps(cls, step_s: float, factors: list[float]) -> "Schedule":
        """Equal-length intervals with the given factors (Section 8.5 style).

        ``factors=[1, 2, 2, 1, 1]`` with ``step_s=300`` reproduces the
        workload vector of the technique-comparison experiment.
        """
        if step_s <= 0:
            raise SimulationError(f"step_s must be > 0, got {step_s}")
        return cls([(i * step_s, f) for i, f in enumerate(factors)])

    @classmethod
    def random_walk(
        cls,
        rng: np.random.Generator,
        duration_s: float,
        interval_s: float,
        low: float,
        high: float,
    ) -> "Schedule":
        """Bounded random factors redrawn every ``interval_s`` (Section 8.6).

        Each interval's factor is drawn from a mean-reverting walk clipped to
        [low, high], mimicking the live bandwidth/workload variation traces
        (bandwidth factor 0.51-2.36, workload factor 0.8-2.4).
        """
        if not 0 < low <= high:
            raise SimulationError(f"need 0 < low <= high, got {low}, {high}")
        if interval_s <= 0 or duration_s <= 0:
            raise SimulationError("duration_s and interval_s must be > 0")
        mid = (low + high) / 2.0
        span = (high - low) / 2.0
        value = mid
        points: list[tuple[float, float]] = []
        t = 0.0
        while t < duration_s:
            # Mean-revert towards mid, then perturb; clip to the target band.
            value = mid + 0.6 * (value - mid) + rng.normal(0.0, 0.45 * span)
            value = float(np.clip(value, low, high))
            points.append((t, value))
            t += interval_s
        return cls(points)

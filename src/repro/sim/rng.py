"""Named, seeded random-number streams.

Every stochastic component of the reproduction (bandwidth processes, workload
generators, failure injection, the Random migration baseline, ...) draws from
its own named stream derived from a single master seed.  Components are then
statistically independent of each other, and adding a new consumer never
perturbs the draws seen by existing ones - experiments stay reproducible
bit-for-bit across code changes elsewhere in the pipeline.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 rather than Python's ``hash`` so the derivation is stable
    across interpreter runs and versions.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named :class:`numpy.random.Generator` streams.

    The registry hands out one generator per name and caches it, so repeated
    lookups within a simulation share the stream while distinct names are
    independent.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        if name not in self._streams:
            seed = _derive_seed(self._master_seed, name)
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry rooted at a derived seed.

        Useful when a sub-component needs several streams of its own that
        must not collide with the parent's namespace.
        """
        return RngRegistry(_derive_seed(self._master_seed, name))

    def names(self) -> list[str]:
        """Return the names of all streams created so far (sorted)."""
        return sorted(self._streams)

"""Simulation kernel: clock, RNG streams, schedules, recording."""

from .clock import SimClock
from .recorder import AdaptationEvent, RunRecorder, TickSample
from .rng import RngRegistry
from .schedule import Breakpoint, Schedule

__all__ = [
    "AdaptationEvent",
    "Breakpoint",
    "RngRegistry",
    "RunRecorder",
    "Schedule",
    "SimClock",
    "TickSample",
]

"""Public facade for the WASP reproduction.

Most applications only need four things:

1. a **topology** - build the paper's 16-node testbed with
   :func:`build_testbed` or assemble your own from
   :class:`~repro.network.site.Site` + :class:`~repro.network.topology.Topology`;
2. a **query** - use a Table-3 benchmark query (:func:`benchmark_query`) or
   define your own :class:`~repro.engine.logical.LogicalPlan` with the
   operator constructors in :mod:`repro.engine.operators`;
3. a **variant** - how the system reacts to dynamics
   (:func:`~repro.baselines.variants.wasp`,
   :func:`~repro.baselines.variants.no_adapt`, ...);
4. a **run** - :func:`launch` wires everything (WAN-aware deployment, fluid
   engine, monitoring loop, WASP controller) into an
   :class:`~repro.experiments.harness.ExperimentRun` you can ``run()``
   or single-``step()``.

Example::

    from repro import api

    run = api.launch("topk-topics", api.wasp(), seed=7)
    recorder = run.run(600, api.bottleneck_dynamics())
    print(recorder.mean_delay(), recorder.processed_fraction())
"""

from __future__ import annotations

from .baselines.variants import (
    VariantSpec,
    degrade,
    no_adapt,
    reassign_only,
    replan_only,
    scale_only,
    wasp,
)
from .config import WaspConfig
from .errors import WaspError
from .experiments.harness import DynamicsSpec, ExperimentRun, FailureEvent
from .experiments.scenarios import (
    bottleneck_dynamics,
    live_dynamics,
    make_query_by_name,
    quiet_dynamics,
    technique_dynamics,
)
from .network.topology import Topology
from .network.traces import TestbedSpec, paper_testbed
from .sim.rng import RngRegistry
from .sim.schedule import Schedule
from .workloads.queries import BenchmarkQuery

__all__ = [
    "BenchmarkQuery",
    "DynamicsSpec",
    "ExperimentRun",
    "FailureEvent",
    "Schedule",
    "Topology",
    "VariantSpec",
    "WaspConfig",
    "benchmark_query",
    "bottleneck_dynamics",
    "build_testbed",
    "degrade",
    "launch",
    "live_dynamics",
    "no_adapt",
    "quiet_dynamics",
    "reassign_only",
    "replan_only",
    "scale_only",
    "technique_dynamics",
    "wasp",
]

#: Names accepted by :func:`benchmark_query` / :func:`launch`.
QUERY_NAMES = ("ysb-advertising", "topk-topics", "events-of-interest")


def build_testbed(
    seed: int = WaspConfig().seed, spec: TestbedSpec | None = None
) -> Topology:
    """The Section-8.2 testbed: 8 edge nodes + 8 data-center nodes."""
    rngs = RngRegistry(seed)
    return paper_testbed(rngs.stream("topology"), spec)


def benchmark_query(
    name: str, topology: Topology, seed: int = WaspConfig().seed
) -> BenchmarkQuery:
    """One of the Table-3 queries bound to ``topology``."""
    if name not in QUERY_NAMES:
        raise WaspError(
            f"unknown query {name!r}; expected one of {QUERY_NAMES}"
        )
    rngs = RngRegistry(seed)
    return make_query_by_name(name)(topology, rngs)


def launch(
    query: str | BenchmarkQuery,
    variant: VariantSpec | None = None,
    *,
    topology: Topology | None = None,
    config: WaspConfig | None = None,
    seed: int | None = None,
) -> ExperimentRun:
    """Deploy a query and return a runnable experiment.

    Args:
        query: A Table-3 query name or a pre-built :class:`BenchmarkQuery`.
        variant: Adaptation behaviour; defaults to the full WASP policy.
        topology: WAN topology; the paper testbed is built when omitted.
        config: Controller configuration (paper defaults when omitted).
        seed: Master seed for topology/workload/controller randomness.

    Returns:
        A wired :class:`ExperimentRun`; call ``run(duration, dynamics)`` or
        drive it tick-by-tick with ``step()``.
    """
    config = config or WaspConfig.paper_defaults()
    master_seed = seed if seed is not None else config.seed
    rngs = RngRegistry(master_seed)
    if topology is None:
        topology = paper_testbed(rngs.stream("topology"))
    if isinstance(query, str):
        if query not in QUERY_NAMES:
            raise WaspError(
                f"unknown query {query!r}; expected one of {QUERY_NAMES}"
            )
        query = make_query_by_name(query)(topology, rngs)
    return ExperimentRun(
        topology,
        query,
        variant or wasp(),
        config=config,
        rngs=rngs,
    )

"""Fault specifications for deterministic chaos injection.

Each fault is a frozen *spec*: what to break, how hard, and for how long.
Applying a fault never stores mutable state on the spec itself - the
injector keeps an activation record per firing - so one spec can fire many
times (periodic or probabilistic schedules) without cross-talk.

The faults cover the wide-area dynamics of the paper plus the failure modes
its prototype hand-waves past:

* :class:`SiteCrash` - Section 8.6's resource revocation (all slots gone).
* :class:`BandwidthCollapse` - Section 8.4's bandwidth drop, per link.
* :class:`LinkFlap` - a link that oscillates between collapsed and nominal.
* :class:`Straggler` - the Section-1 slow-site dynamic.
* :class:`CheckpointLoss` - a site loses its local checkpoint snapshots,
  so recovery must replay from t=0 of the stage (Section 5's worst case).
* :class:`SlotRevocation` - free slots withdrawn, making placements the
  ILP would otherwise pick infeasible.

All faults mutate the *environment* (topology, checkpoints) only.  The
deployment-side consequences - rollbacks, fallbacks, evacuations - are the
controller's job; that separation is what the transactional executor's
"never roll back the world" rule relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..errors import ChaosError, TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.checkpoint import CheckpointCoordinator
    from ..network.topology import Topology


@dataclass
class ChaosTarget:
    """The slice of a running experiment a fault is allowed to touch.

    ``fail_site`` / ``recover_site`` default to raw topology mutation; the
    experiment harness overrides them with callbacks that also track the
    failure window and inject checkpoint-replay on recovery, so chaos
    crashes get the same recovery semantics as scripted ones.
    """

    topology: "Topology"
    checkpoints: "CheckpointCoordinator | None" = None
    fail_site: Callable[[str, float], None] | None = None
    recover_site: Callable[[str, float], None] | None = None

    def do_fail_site(self, name: str, now_s: float) -> None:
        if self.fail_site is not None:
            self.fail_site(name, now_s)
        else:
            self.topology.site(name).fail()

    def do_recover_site(self, name: str, now_s: float) -> None:
        if self.recover_site is not None:
            self.recover_site(name, now_s)
        else:
            self.topology.site(name).recover()


class Fault:
    """Base class: validate against a target, apply, optionally revert.

    ``apply`` returns ``(detail, state)``; ``state`` is whatever the revert
    needs (e.g. how many slots were actually revoked) and is stored on the
    injector's activation record, not the spec.  ``reassert`` is called on
    every tick while the activation is live, letting continuous faults win
    over scripted dynamics that touch the same knob.
    """

    kind: str = "fault"
    duration_s: float | None = None

    def validate(self, target: ChaosTarget) -> None:
        raise NotImplementedError

    def apply(self, target: ChaosTarget, now_s: float) -> tuple[str, Any]:
        raise NotImplementedError

    def reassert(self, target: ChaosTarget, now_s: float, state: Any) -> None:
        return None

    def revert(self, target: ChaosTarget, now_s: float, state: Any) -> str:
        return ""

    def _require_site(self, target: ChaosTarget, name: str) -> None:
        if name not in target.topology:
            raise ChaosError(f"{self.kind}: unknown site {name!r}")

    def _require_link(self, target: ChaosTarget, src: str, dst: str) -> None:
        self._require_site(target, src)
        self._require_site(target, dst)
        try:
            target.topology.bandwidth_mbps(src, dst)
        except TopologyError as exc:
            raise ChaosError(f"{self.kind}: {exc}") from exc


@dataclass(frozen=True)
class SiteCrash(Fault):
    """Revoke every resource of ``site``; recover after ``duration_s``.

    ``duration_s = None`` crashes permanently (no recovery, no replay).
    """

    site: str
    duration_s: float | None = None
    kind = "site-crash"

    def validate(self, target: ChaosTarget) -> None:
        self._require_site(target, self.site)
        if self.duration_s is not None and self.duration_s <= 0:
            raise ChaosError(f"{self.kind}: duration must be > 0")

    def apply(self, target: ChaosTarget, now_s: float) -> tuple[str, Any]:
        if target.topology.site(self.site).failed:
            return f"{self.site} already failed", None
        target.do_fail_site(self.site, now_s)
        return f"{self.site} crashed", "crashed"

    def revert(self, target: ChaosTarget, now_s: float, state: Any) -> str:
        if state != "crashed":
            return ""
        target.do_recover_site(self.site, now_s)
        return f"{self.site} recovered"


@dataclass(frozen=True)
class BandwidthCollapse(Fault):
    """Scale one directed link to ``factor`` of its base capacity.

    ``factor = 0`` models a severed link; the migration planner then
    refuses to route state over it (``MigrationError``), which is the
    trigger for the controller's retry/fallback chain.
    """

    src: str
    dst: str
    factor: float = 0.0
    duration_s: float | None = None
    kind = "bandwidth-collapse"

    def validate(self, target: ChaosTarget) -> None:
        self._require_link(target, self.src, self.dst)
        if self.factor < 0:
            raise ChaosError(f"{self.kind}: factor must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ChaosError(f"{self.kind}: duration must be > 0")

    def apply(self, target: ChaosTarget, now_s: float) -> tuple[str, Any]:
        target.topology.set_bandwidth_factor(self.src, self.dst, self.factor)
        return f"{self.src}->{self.dst} x{self.factor}", None

    def reassert(self, target: ChaosTarget, now_s: float, state: Any) -> None:
        # Re-apply every tick so a scripted bandwidth schedule touching the
        # same link cannot silently un-collapse it mid-fault.
        target.topology.set_bandwidth_factor(self.src, self.dst, self.factor)

    def revert(self, target: ChaosTarget, now_s: float, state: Any) -> str:
        target.topology.set_bandwidth_factor(self.src, self.dst, 1.0)
        return f"{self.src}->{self.dst} restored"


@dataclass(frozen=True)
class LinkFlap(Fault):
    """Oscillate a link between ``factor`` and nominal capacity.

    The link spends ``down_s`` collapsed then ``up_s`` nominal, repeating
    for ``duration_s``.  Flapping is the adversarial version of a collapse:
    measurements taken during an up-phase promise bandwidth the next
    down-phase takes away, exercising the staleness the alpha headroom and
    the retry-with-re-measurement path exist for.
    """

    src: str
    dst: str
    factor: float = 0.0
    down_s: float = 10.0
    up_s: float = 10.0
    duration_s: float | None = 60.0
    kind = "link-flap"

    def validate(self, target: ChaosTarget) -> None:
        self._require_link(target, self.src, self.dst)
        if self.factor < 0:
            raise ChaosError(f"{self.kind}: factor must be >= 0")
        if self.down_s <= 0 or self.up_s <= 0:
            raise ChaosError(f"{self.kind}: phase lengths must be > 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ChaosError(f"{self.kind}: duration must be > 0")

    def _phase_factor(self, elapsed_s: float) -> float:
        period = self.down_s + self.up_s
        return self.factor if (elapsed_s % period) < self.down_s else 1.0

    def apply(self, target: ChaosTarget, now_s: float) -> tuple[str, Any]:
        target.topology.set_bandwidth_factor(self.src, self.dst, self.factor)
        return (
            f"{self.src}->{self.dst} flapping x{self.factor} "
            f"({self.down_s}s down / {self.up_s}s up)",
            now_s,  # activation time anchors the phase
        )

    def reassert(self, target: ChaosTarget, now_s: float, state: Any) -> None:
        target.topology.set_bandwidth_factor(
            self.src, self.dst, self._phase_factor(now_s - float(state))
        )

    def revert(self, target: ChaosTarget, now_s: float, state: Any) -> str:
        target.topology.set_bandwidth_factor(self.src, self.dst, 1.0)
        return f"{self.src}->{self.dst} stopped flapping"


@dataclass(frozen=True)
class Straggler(Fault):
    """Slow every slot of ``site`` down by ``slowdown`` (>= 1)."""

    site: str
    slowdown: float = 4.0
    duration_s: float | None = None
    kind = "straggler"

    def validate(self, target: ChaosTarget) -> None:
        self._require_site(target, self.site)
        if self.slowdown < 1.0:
            raise ChaosError(f"{self.kind}: slowdown must be >= 1")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ChaosError(f"{self.kind}: duration must be > 0")

    def apply(self, target: ChaosTarget, now_s: float) -> tuple[str, Any]:
        target.topology.site(self.site).set_slowdown(self.slowdown)
        return f"{self.site} straggling x{self.slowdown}", None

    def reassert(self, target: ChaosTarget, now_s: float, state: Any) -> None:
        target.topology.site(self.site).set_slowdown(self.slowdown)

    def revert(self, target: ChaosTarget, now_s: float, state: Any) -> str:
        target.topology.site(self.site).set_slowdown(1.0)
        return f"{self.site} back to nominal speed"


@dataclass(frozen=True)
class CheckpointLoss(Fault):
    """Drop every local checkpoint stored at ``site`` (one-shot).

    After this, a crash of the same site forces replay from the stage's
    beginning - Section 5's motivation for *localized* checkpointing turned
    into a testable worst case.
    """

    site: str
    kind = "checkpoint-loss"

    def validate(self, target: ChaosTarget) -> None:
        self._require_site(target, self.site)
        if target.checkpoints is None:
            raise ChaosError(
                f"{self.kind}: target has no checkpoint coordinator"
            )

    def apply(self, target: ChaosTarget, now_s: float) -> tuple[str, Any]:
        assert target.checkpoints is not None
        lost = target.checkpoints.forget_all_at_site(self.site)
        detail = (
            f"{self.site} lost checkpoints for {', '.join(lost)}"
            if lost
            else f"{self.site} had no checkpoints to lose"
        )
        return detail, None


@dataclass(frozen=True)
class SlotRevocation(Fault):
    """Withdraw up to ``count`` free slots from ``site``.

    Shrinks the ILP's ``A[s]`` without touching running tasks: placements
    that needed the head-room become infeasible, which is how chaos
    provokes ``InfeasiblePlacementError`` inside an adaptation round.
    """

    site: str
    count: int = 1
    duration_s: float | None = None
    kind = "slot-revocation"

    def validate(self, target: ChaosTarget) -> None:
        self._require_site(target, self.site)
        if self.count < 1:
            raise ChaosError(f"{self.kind}: count must be >= 1")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ChaosError(f"{self.kind}: duration must be > 0")

    def apply(self, target: ChaosTarget, now_s: float) -> tuple[str, Any]:
        revoked = target.topology.site(self.site).revoke_slots(self.count)
        return f"{self.site} lost {revoked} slot(s)", revoked

    def revert(self, target: ChaosTarget, now_s: float, state: Any) -> str:
        revoked = int(state or 0)
        if revoked:
            target.topology.site(self.site).restore_slots(revoked)
        return f"{self.site} regained {revoked} slot(s)"

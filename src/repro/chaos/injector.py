"""Deterministic, clock-driven chaos injection.

:class:`ChaosInjector` composes :mod:`~repro.chaos.faults` specs with three
schedule shapes plus mid-adaptation trigger points:

* ``at(t_s, fault)`` - fire once at the first tick at/after ``t_s``.
* ``every(period_s, fault)`` - fire periodically, optionally capped.
* ``with_probability(p, fault)`` - Bernoulli per tick inside a window.
* ``at_point(point, fault)`` - fire *inside* an adaptation transaction, at
  :class:`~repro.core.transaction.AdaptationPoint` (a migration in flight,
  or between suspend and resume) - the interleavings ad-hoc testing never
  provokes.

Everything is driven by the simulation clock and a seeded RNG stream, so a
chaos run is reproducible bit-for-bit: same seed + same spec = same faults
at the same ticks = byte-identical adaptation records.  To keep that true,
probabilistic rules draw exactly one uniform per in-window tick whether or
not they fire, so adding an unrelated rule never perturbs another rule's
draws (each rule gets its own child RNG stream).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.transaction import AdaptationPoint
from ..errors import ChaosError
from .faults import ChaosTarget, Fault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.controller import ReconfigurationManager
    from ..obs.events import EventBus
    from ..sim.recorder import RunRecorder


@dataclass
class _Rule:
    """One (trigger, fault) pair with its firing bookkeeping."""

    fault: Fault
    # Trigger shape: exactly one of the groups below is used.
    at_s: float | None = None
    every_s: float | None = None
    start_s: float = 0.0
    end_s: float = math.inf
    probability: float = 0.0
    point: AdaptationPoint | None = None
    stage: str | None = None
    max_firings: int | None = None
    # Bookkeeping.
    firings: int = 0
    next_fire_s: float | None = None
    rng: np.random.Generator | None = None

    @property
    def exhausted(self) -> bool:
        return self.max_firings is not None and self.firings >= self.max_firings


@dataclass
class _Activation:
    """A fired duration-bound fault awaiting its revert."""

    fault: Fault
    state: Any
    end_s: float | None  # None = permanent, reasserted forever


@dataclass
class ChaosInjector:
    """Schedules faults against an attached experiment.

    Args:
        rng: Seeded stream (e.g. ``rngs.stream("chaos")``); child streams
            are spawned per probabilistic rule so rules stay independent.
        recorder: Optional :class:`~repro.sim.recorder.RunRecorder`; every
            injection and revert lands in its fault timeline.
    """

    rng: np.random.Generator
    recorder: "RunRecorder | None" = None
    #: Optional event bus (repro.obs); fault firings and reverts are
    #: emitted as ``chaos.fault`` events when a sink is attached.
    obs: "EventBus | None" = None
    _rules: list[_Rule] = field(default_factory=list)
    _active: list[_Activation] = field(default_factory=list)
    _target: ChaosTarget | None = None
    _manager: "ReconfigurationManager | None" = None

    # ------------------------------------------------------------------ #
    # Spec building (chainable)
    # ------------------------------------------------------------------ #

    def at(self, t_s: float, fault: Fault) -> "ChaosInjector":
        """Fire ``fault`` once, at the first tick at/after ``t_s``."""
        if t_s < 0:
            raise ChaosError(f"at: t_s must be >= 0, got {t_s}")
        self._rules.append(_Rule(fault=fault, at_s=t_s, max_firings=1))
        return self

    def every(
        self,
        period_s: float,
        fault: Fault,
        *,
        start_s: float = 0.0,
        count: int | None = None,
    ) -> "ChaosInjector":
        """Fire ``fault`` at ``start_s`` and then every ``period_s``."""
        if period_s <= 0:
            raise ChaosError(f"every: period must be > 0, got {period_s}")
        if count is not None and count < 1:
            raise ChaosError(f"every: count must be >= 1, got {count}")
        self._rules.append(
            _Rule(
                fault=fault,
                every_s=period_s,
                start_s=start_s,
                next_fire_s=start_s,
                max_firings=count,
            )
        )
        return self

    def with_probability(
        self,
        probability: float,
        fault: Fault,
        *,
        start_s: float = 0.0,
        end_s: float = math.inf,
        count: int | None = None,
    ) -> "ChaosInjector":
        """Bernoulli(``probability``) trial per tick within the window."""
        if not 0.0 <= probability <= 1.0:
            raise ChaosError(
                f"with_probability: probability must be in [0, 1], "
                f"got {probability}"
            )
        rule = _Rule(
            fault=fault,
            probability=probability,
            start_s=start_s,
            end_s=end_s,
            max_firings=count,
        )
        # A child stream per rule: adding rule N+1 never shifts the draws
        # rule N sees, so specs compose without breaking determinism.
        rule.rng = np.random.default_rng(self.rng.integers(2**63))
        self._rules.append(rule)
        return self

    def at_point(
        self,
        point: AdaptationPoint,
        fault: Fault,
        *,
        stage: str | None = None,
        count: int | None = 1,
    ) -> "ChaosInjector":
        """Fire when the controller reaches ``point`` mid-transaction.

        ``stage`` restricts the trigger to one stage's adaptations; the
        default fires for whichever stage reaches the point first.
        """
        self._rules.append(
            _Rule(fault=fault, point=point, stage=stage, max_firings=count)
        )
        return self

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach(
        self,
        target: ChaosTarget,
        *,
        manager: "ReconfigurationManager | None" = None,
    ) -> None:
        """Bind to a running experiment and validate every fault spec.

        Validating up front turns a typo'd site name into a
        :class:`~repro.errors.ChaosError` at wiring time instead of a
        surprise 500 simulated seconds into a run.
        """
        if self._target is not None:
            raise ChaosError(
                "injector already attached; build a new ChaosInjector per run"
            )
        for rule in self._rules:
            rule.fault.validate(target)
            if rule.point is not None and manager is None:
                raise ChaosError(
                    "at_point rules need a ReconfigurationManager to hook"
                )
        self._target = target
        self._manager = manager
        if manager is not None and any(r.point is not None for r in self._rules):
            previous = manager.adaptation_hook

            def hook(point: AdaptationPoint, stage: str, now_s: float) -> None:
                if previous is not None:
                    previous(point, stage, now_s)
                self._on_point(point, stage, now_s)

            manager.adaptation_hook = hook

    # ------------------------------------------------------------------ #
    # Clock driving
    # ------------------------------------------------------------------ #

    def tick(self, now_s: float) -> None:
        """Advance chaos to ``now_s``: revert, reassert, then fire."""
        target = self._require_target()
        # 1. Expired faults revert first so a revert and a re-fire on the
        #    same tick leave the fault applied.
        still_active: list[_Activation] = []
        for activation in self._active:
            if activation.end_s is not None and now_s >= activation.end_s:
                detail = activation.fault.revert(
                    target, now_s, activation.state
                )
                self._record(
                    now_s,
                    f"{activation.fault.kind}:revert",
                    detail,
                    fault=activation.fault.kind,
                    phase="revert",
                )
            else:
                still_active.append(activation)
        self._active = still_active
        # 2. Live continuous faults re-assert their grip (flap phases,
        #    factors a scripted schedule overwrote this tick).
        for activation in self._active:
            activation.fault.reassert(target, now_s, activation.state)
        # 3. Time-based triggers.
        for rule in self._rules:
            if rule.point is not None:
                continue
            if rule.probability > 0.0 or rule.rng is not None:
                if rule.start_s <= now_s < rule.end_s and not rule.exhausted:
                    assert rule.rng is not None
                    draw = rule.rng.uniform()  # exactly one per tick
                    if draw < rule.probability:
                        self._fire(rule, now_s)
                continue
            if rule.exhausted:
                continue
            if rule.at_s is not None and now_s >= rule.at_s:
                self._fire(rule, now_s)
            elif rule.every_s is not None:
                assert rule.next_fire_s is not None
                if now_s >= rule.next_fire_s:
                    self._fire(rule, now_s)
                    rule.next_fire_s = rule.next_fire_s + rule.every_s

    def _on_point(
        self, point: AdaptationPoint, stage: str, now_s: float
    ) -> None:
        for rule in self._rules:
            if rule.point is not point or rule.exhausted:
                continue
            if rule.stage is not None and rule.stage != stage:
                continue
            self._fire(rule, now_s, context=f"at {point.value} of {stage}")

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _require_target(self) -> ChaosTarget:
        if self._target is None:
            raise ChaosError("injector not attached to a target")
        return self._target

    def _fire(self, rule: _Rule, now_s: float, context: str = "") -> None:
        target = self._require_target()
        rule.firings += 1
        detail, state = rule.fault.apply(target, now_s)
        if context:
            detail = f"{detail} [{context}]"
        self._record(now_s, rule.fault.kind, detail)
        if rule.fault.duration_s is not None:
            self._active.append(
                _Activation(
                    fault=rule.fault,
                    state=state,
                    end_s=now_s + rule.fault.duration_s,
                )
            )
        elif type(rule.fault).reassert is not Fault.reassert:
            # Permanent continuous fault: keep re-asserting forever.
            self._active.append(
                _Activation(fault=rule.fault, state=state, end_s=None)
            )

    def _record(
        self,
        t_s: float,
        kind: str,
        detail: str,
        *,
        fault: str | None = None,
        phase: str = "apply",
    ) -> None:
        if self.recorder is not None:
            self.recorder.record_fault(t_s, kind, detail)
        if self.obs:
            from ..obs.events import ChaosFault

            self.obs.emit(
                ChaosFault(t_s, fault=fault or kind, detail=detail, phase=phase)
            )

    @property
    def active_faults(self) -> list[Fault]:
        """Currently-applied duration-bound faults (for assertions)."""
        return [a.fault for a in self._active]

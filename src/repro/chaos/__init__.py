"""Deterministic fault injection for the WASP reproduction.

The chaos harness turns the paper's wide-area dynamics - and the failure
modes its evaluation only gestures at - into seeded, replayable fault
programs.  See :mod:`repro.chaos.faults` for the fault vocabulary and
:mod:`repro.chaos.injector` for scheduling, including mid-adaptation
trigger points.
"""

from .faults import (
    BandwidthCollapse,
    ChaosTarget,
    CheckpointLoss,
    Fault,
    LinkFlap,
    SiteCrash,
    SlotRevocation,
    Straggler,
)
from .injector import ChaosInjector

__all__ = [
    "BandwidthCollapse",
    "ChaosInjector",
    "ChaosTarget",
    "CheckpointLoss",
    "Fault",
    "LinkFlap",
    "SiteCrash",
    "SlotRevocation",
    "Straggler",
]

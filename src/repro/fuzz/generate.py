"""Seeded random scenario generation for the fuzzing campaign.

A :class:`ScenarioSpec` is a pure-data description of one run: topology
(sites, slots, a full directed bandwidth/latency mesh), query, controller
variant, workload/bandwidth factor schedules, a chaos fault plan and config
overrides.  Every field is JSON-serializable so a failing scenario can be
committed as a repro fixture and replayed bit-for-bit.

:func:`generate_scenario` draws a spec from :class:`~repro.sim.rng.RngRegistry`
streams keyed off a single seed; :func:`build_run` turns a spec back into a
wired :class:`~repro.experiments.harness.ExperimentRun` deterministically.
Value ranges follow the paper testbed (Section 8.1): DC-to-DC links at
25-250 Mbps, edge links at 2-30 Mbps, 10-150 ms latencies, 8-slot DCs and
small edge sites.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..baselines.variants import ALL_NAMED, VariantSpec
from ..chaos.faults import (
    BandwidthCollapse,
    CheckpointLoss,
    Fault,
    LinkFlap,
    SiteCrash,
    SlotRevocation,
    Straggler,
)
from ..chaos.injector import ChaosInjector
from ..config import WaspConfig
from ..errors import ConfigurationError
from ..experiments.harness import DynamicsSpec, ExperimentRun
from ..network.site import Site, SiteKind
from ..network.topology import Topology
from ..sim.rng import RngRegistry
from ..sim.schedule import Schedule
from ..workloads.queries import (
    events_of_interest,
    topk_topics,
    ysb_advertising,
)

#: Query names the generator draws from (mirrors the CLI registry).
QUERY_NAMES = ("ysb-advertising", "topk-topics", "events-of-interest")

#: Controller variants the generator draws from.
VARIANT_NAMES = tuple(sorted(ALL_NAMED))

#: Fault kinds the generator draws from (see :mod:`repro.chaos.faults`).
FAULT_KINDS = (
    "site-crash",
    "bandwidth-collapse",
    "link-flap",
    "straggler",
    "checkpoint-loss",
    "slot-revocation",
)


@dataclass(frozen=True)
class SiteSpec:
    """One site: name, kind (``edge``/``dc``), slots, processing rate."""

    name: str
    kind: str
    slots: int
    proc_rate_eps: float


@dataclass(frozen=True)
class LinkSpec:
    """One directed WAN link."""

    src: str
    dst: str
    bandwidth_mbps: float
    latency_ms: float


@dataclass(frozen=True)
class ScheduleSpec:
    """A factor schedule as explicit breakpoints (JSON-friendly)."""

    initial: float = 1.0
    steps: tuple = ()  # ((t_s, factor), ...)

    def to_schedule(self) -> Schedule:
        return Schedule(
            [(float(t), float(f)) for t, f in self.steps],
            initial=float(self.initial),
        )


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled chaos fault (fired via ``ChaosInjector.at``)."""

    at_s: float
    kind: str
    params: dict = field(default_factory=dict)

    def to_fault(self) -> Fault:
        p = self.params
        if self.kind == "site-crash":
            return SiteCrash(site=p["site"], duration_s=p["duration_s"])
        if self.kind == "bandwidth-collapse":
            return BandwidthCollapse(
                src=p["src"], dst=p["dst"], factor=p["factor"],
                duration_s=p["duration_s"],
            )
        if self.kind == "link-flap":
            return LinkFlap(
                src=p["src"], dst=p["dst"], factor=p["factor"],
                down_s=p["down_s"], up_s=p["up_s"],
                duration_s=p["duration_s"],
            )
        if self.kind == "straggler":
            return Straggler(
                site=p["site"], slowdown=p["slowdown"],
                duration_s=p["duration_s"],
            )
        if self.kind == "checkpoint-loss":
            return CheckpointLoss(site=p["site"])
        if self.kind == "slot-revocation":
            return SlotRevocation(
                site=p["site"], count=int(p["count"]),
                duration_s=p["duration_s"],
            )
        raise ConfigurationError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, replayable fuzz scenario."""

    seed: int
    sites: tuple  # tuple[SiteSpec, ...]
    links: tuple  # tuple[LinkSpec, ...]
    query: str
    variant: str
    duration_s: float
    workload_schedule: ScheduleSpec | None = None
    bandwidth_schedule: ScheduleSpec | None = None
    faults: tuple = ()  # tuple[FaultSpec, ...]
    config_overrides: dict = field(default_factory=dict)

    # -- serialization --------------------------------------------------- #

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        def sched(value):
            if value is None:
                return None
            return ScheduleSpec(
                initial=value["initial"],
                steps=tuple(tuple(s) for s in value["steps"]),
            )

        return cls(
            seed=int(data["seed"]),
            sites=tuple(SiteSpec(**s) for s in data["sites"]),
            links=tuple(LinkSpec(**l) for l in data["links"]),
            query=data["query"],
            variant=data["variant"],
            duration_s=float(data["duration_s"]),
            workload_schedule=sched(data.get("workload_schedule")),
            bandwidth_schedule=sched(data.get("bandwidth_schedule")),
            faults=tuple(
                FaultSpec(
                    at_s=f["at_s"], kind=f["kind"],
                    params=dict(f["params"]),
                )
                for f in data.get("faults", ())
            ),
            config_overrides=dict(data.get("config_overrides", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- convenience ----------------------------------------------------- #

    @property
    def site_names(self) -> list[str]:
        return [s.name for s in self.sites]


# --------------------------------------------------------------------------- #
# Generation
# --------------------------------------------------------------------------- #


def generate_scenario(seed: int) -> ScenarioSpec:
    """Draw one scenario from RNG streams derived from ``seed``.

    Topologies have 3-16 sites (1-8 edges, 1-8 DCs), always with enough
    slots for an initial deployment; the link mesh is a full directed graph
    so :meth:`Topology.bandwidth_mbps` is total.  Fault times land inside
    the run, leaving headroom for the fault to play out.
    """
    rngs = RngRegistry(seed)

    # -- topology -------------------------------------------------------- #
    topo_rng = rngs.stream("fuzz.topology")
    n_edges = int(topo_rng.integers(1, 9))
    n_dcs = int(topo_rng.integers(1, 9))
    total = n_edges + n_dcs
    if total < 3:  # pad to the 3-site floor with DCs
        n_dcs += 3 - total
    sites: list[SiteSpec] = []
    for i in range(n_edges):
        sites.append(
            SiteSpec(
                name=f"edge-{i}",
                kind="edge",
                slots=int(topo_rng.integers(4, 7)),
                proc_rate_eps=float(topo_rng.integers(20, 61) * 1000),
            )
        )
    for i in range(n_dcs):
        sites.append(
            SiteSpec(
                name=f"dc-{i}",
                kind="dc",
                slots=int(topo_rng.integers(8, 13)),
                proc_rate_eps=float(topo_rng.integers(30, 81) * 1000),
            )
        )
    names = [s.name for s in sites]
    dc_names = {s.name for s in sites if s.kind == "dc"}
    links: list[LinkSpec] = []
    for src in names:
        for dst in names:
            if src == dst:
                continue
            if src in dc_names and dst in dc_names:
                bw = float(topo_rng.uniform(25.0, 250.0))
            else:
                bw = float(topo_rng.uniform(2.0, 30.0))
            links.append(
                LinkSpec(
                    src=src,
                    dst=dst,
                    bandwidth_mbps=round(bw, 3),
                    latency_ms=round(float(topo_rng.uniform(10.0, 150.0)), 2),
                )
            )

    # -- query / variant / duration -------------------------------------- #
    query_rng = rngs.stream("fuzz.query")
    query = QUERY_NAMES[int(query_rng.integers(len(QUERY_NAMES)))]
    variant = VARIANT_NAMES[int(query_rng.integers(len(VARIANT_NAMES)))]
    duration_s = float([120.0, 180.0, 240.0][int(query_rng.integers(3))])

    # -- dynamics schedules ---------------------------------------------- #
    dyn_rng = rngs.stream("fuzz.dynamics")
    workload_schedule = None
    if dyn_rng.uniform() < 0.8:
        steps = []
        t = float(dyn_rng.integers(20, 61))
        while t < duration_s - 10:
            steps.append((t, round(float(dyn_rng.uniform(0.4, 2.5)), 3)))
            t += float(dyn_rng.integers(20, 61))
        workload_schedule = ScheduleSpec(initial=1.0, steps=tuple(steps))
    bandwidth_schedule = None
    if dyn_rng.uniform() < 0.5:
        steps = []
        t = float(dyn_rng.integers(20, 61))
        while t < duration_s - 10:
            steps.append((t, round(float(dyn_rng.uniform(0.3, 1.3)), 3)))
            t += float(dyn_rng.integers(20, 61))
        bandwidth_schedule = ScheduleSpec(initial=1.0, steps=tuple(steps))

    # -- faults ----------------------------------------------------------- #
    fault_rng = rngs.stream("fuzz.faults")
    n_faults = int(fault_rng.integers(0, 5))
    faults: list[FaultSpec] = []
    for _ in range(n_faults):
        kind = FAULT_KINDS[int(fault_rng.integers(len(FAULT_KINDS)))]
        at_s = float(fault_rng.integers(10, max(11, int(duration_s) - 30)))
        site = names[int(fault_rng.integers(len(names)))]
        src = names[int(fault_rng.integers(len(names)))]
        dst_choices = [n for n in names if n != src]
        dst = dst_choices[int(fault_rng.integers(len(dst_choices)))]
        duration = float(fault_rng.integers(20, 61))
        if kind == "site-crash":
            params = {"site": site, "duration_s": duration}
        elif kind == "bandwidth-collapse":
            params = {
                "src": src, "dst": dst,
                "factor": round(float(fault_rng.uniform(0.0, 0.3)), 3),
                "duration_s": duration,
            }
        elif kind == "link-flap":
            params = {
                "src": src, "dst": dst,
                "factor": round(float(fault_rng.uniform(0.0, 0.3)), 3),
                "down_s": float(fault_rng.integers(5, 16)),
                "up_s": float(fault_rng.integers(5, 16)),
                "duration_s": duration,
            }
        elif kind == "straggler":
            params = {
                "site": site,
                "slowdown": round(float(fault_rng.uniform(2.0, 6.0)), 2),
                "duration_s": duration,
            }
        elif kind == "checkpoint-loss":
            params = {"site": site}
        else:  # slot-revocation
            params = {"site": site, "count": 1, "duration_s": duration}
        faults.append(FaultSpec(at_s=at_s, kind=kind, params=params))
    faults.sort(key=lambda f: (f.at_s, f.kind))

    # -- config overrides -------------------------------------------------- #
    cfg_rng = rngs.stream("fuzz.config")
    overrides: dict = {}
    overrides["monitor_interval_s"] = float(
        [20.0, 30.0, 40.0][int(cfg_rng.integers(3))]
    )
    if cfg_rng.uniform() < 0.5:
        overrides["checkpoint_interval_s"] = float(
            [15.0, 30.0][int(cfg_rng.integers(2))]
        )
    if cfg_rng.uniform() < 0.5:
        overrides["alpha"] = float([0.6, 0.7, 0.8, 0.9][int(cfg_rng.integers(4))])

    return ScenarioSpec(
        seed=seed,
        sites=tuple(sites),
        links=tuple(links),
        query=query,
        variant=variant,
        duration_s=duration_s,
        workload_schedule=workload_schedule,
        bandwidth_schedule=bandwidth_schedule,
        faults=tuple(faults),
        config_overrides=overrides,
    )


# --------------------------------------------------------------------------- #
# Materialization
# --------------------------------------------------------------------------- #


def build_topology(spec: ScenarioSpec) -> Topology:
    """Materialize the spec's sites and full directed link mesh."""
    sites = [
        Site(
            s.name,
            SiteKind.EDGE if s.kind == "edge" else SiteKind.DATA_CENTER,
            total_slots=s.slots,
            proc_rate_eps=s.proc_rate_eps,
        )
        for s in spec.sites
    ]
    topology = Topology(sites)
    for link in spec.links:
        topology.set_link(
            link.src, link.dst, link.bandwidth_mbps, link.latency_ms
        )
    return topology


def build_query(spec: ScenarioSpec, topology: Topology, rngs: RngRegistry):
    """Materialize the spec's benchmark query on the topology."""
    if spec.query == "ysb-advertising":
        return ysb_advertising(topology)
    if spec.query == "topk-topics":
        return topk_topics(topology, rngs.stream("query"))
    if spec.query == "events-of-interest":
        return events_of_interest(topology, rngs.stream("query"))
    raise ConfigurationError(f"unknown query {spec.query!r}")


def build_dynamics(spec: ScenarioSpec) -> DynamicsSpec:
    """Materialize the spec's factor schedules as a driver program."""
    return DynamicsSpec(
        workload_schedule=(
            spec.workload_schedule.to_schedule()
            if spec.workload_schedule
            else None
        ),
        bandwidth_schedule=(
            spec.bandwidth_schedule.to_schedule()
            if spec.bandwidth_schedule
            else None
        ),
    )


def build_chaos(spec: ScenarioSpec, rngs: RngRegistry) -> ChaosInjector | None:
    """Materialize the spec's fault plan as a chaos injector."""
    if not spec.faults:
        return None
    injector = ChaosInjector(rng=rngs.stream("chaos"))
    for fault in spec.faults:
        injector.at(fault.at_s, fault.to_fault())
    return injector


def build_run(spec: ScenarioSpec) -> tuple[ExperimentRun, DynamicsSpec]:
    """Wire a spec into a ready-to-run experiment (chaos attached).

    Deterministic: the run's RNG registry is derived solely from
    ``spec.seed``, so the same spec always produces the same run.
    """
    rngs = RngRegistry(spec.seed)
    topology = build_topology(spec)
    query = build_query(spec, topology, rngs)
    variant: VariantSpec = ALL_NAMED[spec.variant]
    config = WaspConfig.paper_defaults().with_overrides(
        **spec.config_overrides
    )
    run = ExperimentRun(topology, query, variant, config=config, rngs=rngs)
    chaos = build_chaos(spec, rngs)
    if chaos is not None:
        run.attach_chaos(chaos)
    return run, build_dynamics(spec)

"""Seeded scenario fuzzing with runtime invariant checking.

The figure suite exercises a handful of hand-written trajectories; this
package sweeps *randomized* ones.  :mod:`.generate` draws topologies,
queries, workload/bandwidth schedules and chaos fault plans from
:class:`~repro.sim.rng.RngRegistry` streams, so every campaign is
replayable from a single seed.  :mod:`.invariants` hooks an
:class:`~repro.experiments.harness.ExperimentRun` and asserts the paper's
correctness properties on every tick and every committed adaptation.
:mod:`.campaign` shards seeds across worker processes, merges a
:class:`CampaignReport`, shrinks failing scenarios and writes replayable
JSON repro artifacts (``python -m repro fuzz --replay FILE``).
"""

from .campaign import (
    CampaignReport,
    ScenarioResult,
    load_artifact,
    run_campaign,
    run_scenario,
    shrink_scenario,
    write_artifact,
)
from .generate import ScenarioSpec, build_chaos, build_run, generate_scenario
from .invariants import InvariantChecker, Violation

__all__ = [
    "CampaignReport",
    "InvariantChecker",
    "ScenarioResult",
    "ScenarioSpec",
    "Violation",
    "build_chaos",
    "build_run",
    "generate_scenario",
    "load_artifact",
    "run_campaign",
    "run_scenario",
    "shrink_scenario",
    "write_artifact",
]

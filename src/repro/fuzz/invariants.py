"""Runtime invariant checking for fuzzed runs.

:class:`InvariantChecker` attaches to an
:class:`~repro.experiments.harness.ExperimentRun` twice over: as an obs
sink it sees the full adaptation lifecycle (snapshots, commits, rollbacks,
migrations, chaos faults, checkpoint restores), and through the harness's
``on_report``/``on_step_end`` hooks it sees every
:class:`~repro.engine.runtime.TickReport` plus a quiesced end-of-step
state.  From those two views it asserts the paper-level properties:

* **conservation** - events are neither created nor destroyed: per stage,
  the queued backlog changes exactly by (arrivals + replay + re-queues)
  minus (processing + SLO drops), per tick.
* **queue/state non-negativity** - no fluid queue, parcel or state
  partition ever goes negative.
* **slot-feasibility** - on every non-failed site, allocated slots cover
  the tasks placed there (the ILP's ``A[s]`` accounting, Section 4.1).
* **full-deployment** - every stage of the live plan keeps >= 1 task.
* **alpha-cap** (Section 4.1) - after a committed network-bottleneck
  placement, every WAN flow the placement induces fits within
  ``alpha * B`` of its link.
* **scale-law** (Section 4.2) - a committed scale-up/out lands strictly
  above the old parallelism and at or below the DS2-style target
  ``p' = ceil(lambda_hat_I / lambda_P * p)`` (plus the scale-out link
  deficit bound).
* **migration-minmax** (Section 5) - a committed WASP-strategy
  re-assignment's migration achieves the minmax over destination
  assignments; transfer arithmetic (``duration = MB * 8 / Mbps``,
  ``transition = max duration``) always holds.
* **rollback-digest** - a rolled-back attempt restores the pre-action
  snapshot bit-for-bit (slots, task lists, queues, suspensions, state,
  checkpoint records, loss counter).

Scoping notes (to stay false-positive-free): the alpha-cap check runs only
on the *first* commit of a round, on ``primary`` attempts, for
network-bottleneck re-assign/scale-out actions - retries re-measure
bandwidth and later commits shift the upstream/downstream placements the
decision saw.  The minmax check runs only for primary WASP re-assignments
with <= 7 unique-source transfers (the exhaustive-permutation regime) and
verifies the optimum over permutations of the *observed* destinations, a
sound necessary condition for optimality over the full destination set.
Conservation is skipped on ticks where a chaos fault fired (faults may
mutate queue state outside the tick accounting).
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass
from types import SimpleNamespace
from typing import TYPE_CHECKING

from ..core.scaling import compute_scale_out_target, compute_scale_up_target
from ..engine.runtime import MBIT_BYTES, TickReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.harness import ExperimentRun

#: Invariant identifiers, in reporting order.
INVARIANTS = (
    "conservation",
    "queue-nonnegative",
    "state-nonnegative",
    "slot-feasibility",
    "full-deployment",
    "alpha-cap",
    "scale-law",
    "migration-minmax",
    "migration-arithmetic",
    "rollback-digest",
    "replay-digest",
    "crash",
)


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation."""

    invariant: str
    t_s: float
    detail: str

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "t_s": self.t_s,
            "detail": self.detail,
        }


class InvariantChecker:
    """Obs sink + harness hook asserting per-tick/per-adaptation invariants.

    Attach via :meth:`ExperimentRun.attach_checker`.  Violations are
    collected (never raised) so a fuzz campaign can keep running and report
    every class of failure a scenario provokes.
    """

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self._run: "ExperimentRun | None" = None
        # Conservation bookkeeping.
        self._baseline: dict[str, float] | None = None
        self._replay_in: dict[str, float] = {}
        self._chaos_this_step = False
        # Adaptation bookkeeping.
        self._round_parallelism: dict[str, int] = {}
        self._commits_in_round = 0
        self._pre_digest: str | None = None
        self._current_attempt: str | None = None
        self._migrate_strategy: str | None = None
        self._migrate_transfers: list[dict] = []
        self._migrate_end: dict | None = None
        self.ticks_checked = 0
        #: How often each invariant was actually *evaluated* (scoped checks
        #: skip silently, so zero violations is only meaningful alongside
        #: nonzero exercise counts).
        self.checks: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def bind(self, run: "ExperimentRun") -> None:
        self._run = run

    def close(self) -> None:  # Sink protocol
        pass

    def counts(self) -> dict[str, int]:
        """Violation count per invariant (zero entries omitted)."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.invariant] = out.get(v.invariant, 0) + 1
        return out

    def _violate(self, invariant: str, t_s: float, detail: str) -> None:
        self.violations.append(Violation(invariant, float(t_s), detail))

    def _mark(self, invariant: str, n: int = 1) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + n

    # ------------------------------------------------------------------ #
    # Obs sink: adaptation lifecycle
    # ------------------------------------------------------------------ #

    def write(self, record: dict) -> None:  # Sink protocol
        kind = record.get("kind")
        if kind == "restore":
            stage = record["stage"]
            self._replay_in[stage] = (
                self._replay_in.get(stage, 0.0) + float(record["events"])
            )
        elif kind == "chaos.fault":
            self._chaos_this_step = True
        elif kind == "round.start":
            run = self._run
            if run is not None:
                self._round_parallelism = {
                    name: stage.parallelism
                    for name, stage in run.runtime.plan.stages.items()
                }
            self._commits_in_round = 0
        elif kind == "attempt.start":
            self._current_attempt = record["attempt"]
            self._migrate_transfers = []
            self._migrate_strategy = None
            self._migrate_end = None
        elif kind == "snapshot":
            self._pre_digest = self._state_digest()
        elif kind == "migrate.start":
            self._migrate_strategy = record["strategy"]
            self._migrate_transfers = []
        elif kind == "migrate.transfer":
            self._migrate_transfers.append(record)
        elif kind == "migrate.end":
            self._migrate_end = record
            self._check_migration_arithmetic(record)
        elif kind == "rollback":
            self._check_rollback_digest(record)
            self._pre_digest = None
            self._migrate_transfers = []
        elif kind == "commit":
            self._check_commit(record)
            self._commits_in_round += 1
            self._pre_digest = None
            self._migrate_transfers = []

    # ------------------------------------------------------------------ #
    # Harness hooks: per-tick checks
    # ------------------------------------------------------------------ #

    def on_report(self, report: TickReport) -> None:
        """Per-tick checks, after the engine ticked and before callbacks."""
        run = self._run
        if run is None:
            return
        self.ticks_checked += 1
        pending = self._pending_by_stage()
        self._check_nonnegative(report.t_s)
        self._check_conservation(report, pending)

    def on_step_end(self) -> None:
        """End-of-step checks, after any adaptation round completed."""
        run = self._run
        if run is None:
            return
        t_s = run.runtime.now_s
        self._check_slots(t_s)
        self._check_deployment(t_s)
        self._check_state_nonnegative(t_s)
        # Re-capture the conservation baseline: adaptations, checkpoint
        # rounds and background planners may all have legitimately moved
        # queues between on_report and now.
        self._baseline = self._pending_by_stage()
        self._replay_in = {}
        self._chaos_this_step = False

    # ------------------------------------------------------------------ #
    # Per-tick invariants
    # ------------------------------------------------------------------ #

    def _pending_by_stage(self) -> dict[str, float]:
        """Per stage: events pending in its gen/input queues plus in-flight
        WAN queues destined for it."""
        run = self._run
        assert run is not None
        pending: dict[str, float] = {}
        for table, key, queue in run.runtime.iter_queues():
            stage = key[1] if table == "net" else key[0]
            pending[stage] = pending.get(stage, 0.0) + queue.count
        return pending

    def _check_nonnegative(self, t_s: float) -> None:
        run = self._run
        assert run is not None
        self._mark("queue-nonnegative")
        for table, key, queue in run.runtime.iter_queues():
            if queue.count < -1e-6:
                self._violate(
                    "queue-nonnegative",
                    t_s,
                    f"{table} queue {key} has count {queue.count!r}",
                )
            for parcel in queue.parcels():
                if parcel.count < -1e-9:
                    self._violate(
                        "queue-nonnegative",
                        t_s,
                        f"{table} queue {key} holds negative parcel "
                        f"{parcel.count!r}",
                    )
                    break

    def _check_conservation(
        self, report: TickReport, pending: dict[str, float]
    ) -> None:
        run = self._run
        assert run is not None
        baseline = self._baseline
        if baseline is None or self._chaos_this_step:
            return
        self._mark("conservation")
        plan = run.runtime.plan
        # Arrivals from upstream emissions: every *deployed* downstream
        # stage receives each upstream's full emitted stream (balanced
        # partitioning, Section 7); undeployed downstreams re-queue at the
        # sender and are accounted by ``report.requeued``.
        from_upstream: dict[str, float] = {}
        for name, emitted in report.emitted.items():
            if name not in plan.stages:
                continue
            for down in plan.downstream_stages(name):
                if sum(down.placement().values()) > 0:
                    from_upstream[down.name] = (
                        from_upstream.get(down.name, 0.0) + emitted
                    )
        for name in plan.stages:
            if name not in baseline:
                continue
            before = baseline[name]
            now = pending.get(name, 0.0)
            inflow = (
                report.offered_by_source.get(name, 0.0)
                + from_upstream.get(name, 0.0)
                + report.requeued.get(name, 0.0)
                + self._replay_in.get(name, 0.0)
            )
            outflow = (
                report.processed.get(name, 0.0)
                + report.dropped_raw_input.get(name, 0.0)
                + report.dropped_raw_net.get(name, 0.0)
            )
            expected = before + inflow - outflow
            scale = max(
                1.0, abs(before), abs(now), abs(inflow), abs(outflow)
            )
            if abs(now - expected) > 1e-3 + 1e-7 * scale:
                self._violate(
                    "conservation",
                    report.t_s,
                    f"stage {name!r}: pending {now!r} != expected "
                    f"{expected!r} (before={before!r} inflow={inflow!r} "
                    f"outflow={outflow!r})",
                )

    def _check_slots(self, t_s: float) -> None:
        run = self._run
        assert run is not None
        self._mark("slot-feasibility")
        tasks_at: dict[str, int] = {}
        for stage in run.runtime.plan.stages.values():
            for site, count in stage.placement().items():
                tasks_at[site] = tasks_at.get(site, 0) + count
        for site in run.topology:
            if site.used_slots < 0:
                self._violate(
                    "slot-feasibility",
                    t_s,
                    f"site {site.name!r} has negative used slots "
                    f"{site.used_slots}",
                )
            if site.failed:
                continue
            placed = tasks_at.get(site.name, 0)
            if placed > site.used_slots:
                self._violate(
                    "slot-feasibility",
                    t_s,
                    f"site {site.name!r} hosts {placed} tasks but only "
                    f"{site.used_slots} slots are allocated",
                )

    def _check_deployment(self, t_s: float) -> None:
        run = self._run
        assert run is not None
        self._mark("full-deployment")
        for name, stage in run.runtime.plan.stages.items():
            if stage.parallelism < 1:
                self._violate(
                    "full-deployment",
                    t_s,
                    f"stage {name!r} has no deployed tasks",
                )

    def _check_state_nonnegative(self, t_s: float) -> None:
        run = self._run
        assert run is not None
        self._mark("state-nonnegative")
        for stage_name in run.state_store.stage_names():
            for part in run.state_store.partitions(stage_name):
                if part.size_mb < -1e-9:
                    self._violate(
                        "state-nonnegative",
                        t_s,
                        f"stage {stage_name!r} partition at "
                        f"{part.site!r} has size {part.size_mb!r} MB",
                    )

    # ------------------------------------------------------------------ #
    # Rollback digest
    # ------------------------------------------------------------------ #

    def _state_digest(self) -> str:
        """SHA-256 over everything an adaptation transaction restores.

        Mirrors :class:`~repro.core.transaction.AdaptationTransaction`:
        slot accounting, per-stage task placements, every queue's parcels,
        suspensions, state partitions, checkpoint records and the loss
        counter.  ``repr`` of floats is exact, so digests match iff the
        restorable state is bit-identical.
        """
        run = self._run
        assert run is not None
        h = hashlib.sha256()
        for site, used in sorted(run.topology.slot_snapshot().items()):
            h.update(f"slot|{site}|{used}\n".encode())
        plan = run.runtime.plan
        for name in sorted(plan.stages):
            sites = sorted(t.site for t in plan.stages[name].tasks)
            h.update(f"tasks|{name}|{sites}\n".encode())
            h.update(
                f"susp|{name}|{run.runtime.suspended_until(name)!r}\n".encode()
            )
        for table, key, queue in run.runtime.iter_queues():
            parcels = ";".join(
                f"{p.count!r}@{p.gen_time_s!r}" for p in queue.parcels()
            )
            h.update(f"queue|{table}|{key}|{parcels}\n".encode())
        for stage_name in run.state_store.stage_names():
            for part in sorted(
                run.state_store.partitions(stage_name),
                key=lambda p: (p.site, p.size_mb),
            ):
                h.update(
                    f"state|{stage_name}|{part.site}|{part.size_mb!r}\n"
                    .encode()
                )
        for key, rec in sorted(run.checkpoints.snapshot_records().items()):
            h.update(
                f"ckpt|{key}|{rec.size_mb!r}|{rec.taken_at_s!r}\n".encode()
            )
        if run.manager is not None:
            h.update(f"lost|{run.manager.state_lost_mb!r}\n".encode())
        return h.hexdigest()

    def _check_rollback_digest(self, record: dict) -> None:
        if self._pre_digest is None:
            return
        self._mark("rollback-digest")
        post = self._state_digest()
        if post != self._pre_digest:
            self._violate(
                "rollback-digest",
                record["t_s"],
                f"stage {record['stage']!r} attempt "
                f"{record['attempt']!r}: state after rollback differs "
                f"from the pre-action snapshot",
            )

    # ------------------------------------------------------------------ #
    # Commit-scoped invariants
    # ------------------------------------------------------------------ #

    def _check_commit(self, record: dict) -> None:
        run = self._run
        if run is None or run.manager is None:
            return
        t_s = record["t_s"]
        stage_name = record["stage"]
        attempt = record["attempt"]
        action = record["action"]
        reason = record.get("reason") or ""
        stage = run.runtime.plan.stages.get(stage_name)
        if stage is not None and action != "re-plan":
            placement = stage.placement()
            if sum(placement.values()) < 1:
                self._violate(
                    "full-deployment",
                    t_s,
                    f"commit of {action!r} left {stage_name!r} undeployed",
                )
            for site in placement:
                if run.topology.site(site).failed:
                    self._violate(
                        "full-deployment",
                        t_s,
                        f"commit of {action!r} placed {stage_name!r} on "
                        f"failed site {site!r}",
                    )
        if (
            attempt == "primary"
            and self._commits_in_round == 0
            and action in ("re-assign", "scale out")
            and reason.startswith("network bottleneck")
            and stage is not None
        ):
            self._check_alpha_cap(t_s, stage)
        if attempt == "primary" and action in ("scale up", "scale out"):
            self._check_scale_law(t_s, stage_name, action, reason)
        if (
            attempt == "primary"
            and action == "re-assign"
            and self._migrate_strategy == "wasp"
            and self._migrate_transfers
        ):
            self._check_migration_minmax(t_s, stage_name)

    def _check_alpha_cap(self, t_s: float, stage) -> None:
        """Section 4.1: committed placements respect ``alpha * B`` per flow.

        Re-derives the flows the committed placement induces from the same
        inputs the policy used (the round's window estimates and the WAN
        monitor's cached measurements, both unchanged on a first-commit
        primary attempt) and checks each against its link cap.
        """
        run = self._run
        assert run is not None and run.manager is not None
        manager = run.manager
        window = getattr(manager, "last_window", None)
        if window is None:
            return
        self._mark("alpha-cap")
        plan = run.runtime.plan
        estimates = manager.estimator.estimate(plan, window)
        alpha = manager.config.alpha
        placement = stage.placement()
        p = max(1, sum(placement.values()))
        flows = manager.estimator.upstream_flows_eps(plan, stage, estimates)
        for site, count in sorted(placement.items()):
            share = count / p
            for (up_name, up_site), eps in sorted(flows.items()):
                if up_site == site or eps <= 0:
                    continue
                up_stage = plan.stages.get(up_name)
                if up_stage is None:
                    continue
                cap_eps = (
                    alpha
                    * manager.network.bandwidth_mbps(up_site, site)
                    * MBIT_BYTES
                    / up_stage.output_event_bytes
                )
                flow_eps = eps * share
                if flow_eps > cap_eps * (1 + 1e-9) + 1e-9:
                    self._violate(
                        "alpha-cap",
                        t_s,
                        f"stage {stage.name!r}: upstream flow "
                        f"{up_name!r}@{up_site!r} -> {site!r} carries "
                        f"{flow_eps:.1f} eps > alpha cap {cap_eps:.1f} eps",
                    )
            estimate = estimates.get(stage.name)
            out_eps = estimate.output_eps if estimate is not None else 0.0
            if out_eps <= 0:
                continue
            for down in plan.downstream_stages(stage.name):
                dplace = down.placement()
                total = sum(dplace.values())
                if total == 0:
                    continue
                for dst_site, dcount in sorted(dplace.items()):
                    if dst_site == site:
                        continue
                    cap_eps = (
                        alpha
                        * manager.network.bandwidth_mbps(site, dst_site)
                        * MBIT_BYTES
                        / stage.output_event_bytes
                    )
                    flow_eps = out_eps * (dcount / total) * share
                    if flow_eps > cap_eps * (1 + 1e-9) + 1e-9:
                        self._violate(
                            "alpha-cap",
                            t_s,
                            f"stage {stage.name!r}: downstream flow "
                            f"{site!r} -> {down.name!r}@{dst_site!r} "
                            f"carries {flow_eps:.1f} eps > alpha cap "
                            f"{cap_eps:.1f} eps",
                        )

    def _check_scale_law(
        self, t_s: float, stage_name: str, action: str, reason: str
    ) -> None:
        """Section 4.2: committed parallelism obeys the scaling formulas.

        The committed ``p'`` may fall below the decision target (partial
        slot availability, feasibility-capped scale-out) but must be
        strictly above the old ``p`` and never exceed the bound the round's
        own diagnosis implies.
        """
        run = self._run
        assert run is not None and run.manager is not None
        manager = run.manager
        old_p = self._round_parallelism.get(stage_name)
        diagnosis = getattr(manager, "last_diagnoses", {}).get(stage_name)
        stage = run.runtime.plan.stages.get(stage_name)
        if old_p is None or diagnosis is None or stage is None:
            return
        self._mark("scale-law")
        new_p = stage.parallelism
        proxy = SimpleNamespace(name=stage_name, parallelism=old_p)
        if action == "scale up":
            bound = compute_scale_up_target(
                proxy, diagnosis, manager.config
            ).target
        else:  # scale out
            bound = max(
                compute_scale_out_target(
                    proxy, diagnosis, manager.config
                ).target,
                old_p + 1,
            )
        if not (old_p < new_p <= bound):
            self._violate(
                "scale-law",
                t_s,
                f"stage {stage_name!r}: {action} committed p={new_p} "
                f"outside (p={old_p}, bound={bound}] ({reason})",
            )

    # ------------------------------------------------------------------ #
    # Migration invariants
    # ------------------------------------------------------------------ #

    def _check_migration_arithmetic(self, end_record: dict) -> None:
        """``duration = MB * 8 / Mbps`` per transfer; transition = max."""
        t_s = end_record["t_s"]
        self._mark("migration-arithmetic")
        durations = []
        for rec in self._migrate_transfers:
            size = rec["size_mb"]
            bw = rec["bandwidth_mbps"]
            duration = rec["duration_s"]
            durations.append(duration)
            if size <= 0:
                expected = 0.0
            elif bw <= 0:
                expected = math.inf
            else:
                expected = size * 8.0 / bw
            if not self._close(duration, expected):
                self._violate(
                    "migration-arithmetic",
                    t_s,
                    f"transfer {rec['from_site']!r}->{rec['to_site']!r}: "
                    f"duration {duration!r} != {size!r} MB * 8 / "
                    f"{bw!r} Mbps = {expected!r}",
                )
        transition = end_record["transition_s"]
        expected = max(durations, default=0.0)
        if not self._close(transition, expected):
            self._violate(
                "migration-arithmetic",
                t_s,
                f"stage {end_record['stage']!r}: transition "
                f"{transition!r} != slowest transfer {expected!r}",
            )

    def _check_migration_minmax(self, t_s: float, stage_name: str) -> None:
        """Section 5: the committed mapping minimizes the slowest transfer.

        Sound necessary condition: every permutation of the *observed*
        destination multiset was in the optimizer's candidate set, so the
        observed makespan must not exceed the best such permutation.
        Skipped when the transfer set leaves the exhaustive-permutation
        regime (> 7 moves), splits a source partition (rebalance-style
        plans are greedy by design), or the monitor's bandwidth view
        drifted from the values stamped on the transfers.
        """
        run = self._run
        assert run is not None and run.manager is not None
        transfers = self._migrate_transfers
        if not (1 <= len(transfers) <= 7):
            return
        sources = [(r["from_site"], r["size_mb"]) for r in transfers]
        if len({s for s, _ in sources}) != len(sources):
            return
        destinations = [r["to_site"] for r in transfers]
        bandwidth = run.manager.migration_bandwidth
        for rec in transfers:
            live = bandwidth(rec["from_site"], rec["to_site"])
            if not self._close(live, rec["bandwidth_mbps"]):
                return
        self._mark("migration-minmax")
        observed = 0.0
        for rec in transfers:
            observed = max(observed, rec["duration_s"])
        best = math.inf
        for perm in set(itertools.permutations(destinations)):
            worst = 0.0
            for (src, size), dst in zip(sources, perm):
                bw = bandwidth(src, dst)
                if size <= 0:
                    continue
                if bw <= 0:
                    worst = math.inf
                    break
                worst = max(worst, size * 8.0 / bw)
            best = min(best, worst)
        if observed > best * (1 + 1e-9) + 1e-9:
            self._violate(
                "migration-minmax",
                t_s,
                f"stage {stage_name!r}: observed makespan {observed!r} s "
                f"exceeds the minmax {best!r} s over destination "
                f"permutations",
            )

    @staticmethod
    def _close(a: float, b: float, rel: float = 1e-9) -> bool:
        if math.isinf(a) or math.isinf(b):
            return a == b
        return abs(a - b) <= rel * max(1.0, abs(a), abs(b))

"""Parallel fuzz campaigns, scenario shrinking and repro artifacts.

A campaign shards seeds across worker processes (shared-nothing: each
worker regenerates its scenario from the seed, runs it under an
:class:`~repro.fuzz.invariants.InvariantChecker`, then replays it *without*
the checker and compares recorder digests - catching both nondeterminism
and checker interference in one pass).  Results merge into a
:class:`CampaignReport` whose JSON is a pure function of
``(base_seed, num_seeds)``: no wall-clock, no worker ordering, so a rerun
of the same campaign is byte-identical.

When a scenario violates an invariant, :func:`shrink_scenario` greedily
minimizes it - truncating the duration past the first violation, then
dropping faults, schedule breakpoints, config overrides and whole sites -
while the *same invariant class* keeps firing.  :func:`write_artifact`
pins the minimized spec plus its violations as a replayable JSON repro
(``python -m repro fuzz --replay FILE``).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import multiprocessing
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigurationError
from .generate import ScenarioSpec, build_run, generate_scenario
from .invariants import InvariantChecker, Violation

#: Schema tags for the JSON artifacts this module reads/writes.
ARTIFACT_SCHEMA = "wasp-fuzz-repro/v1"
REPORT_SCHEMA = "wasp-fuzz-campaign/v1"

#: Simulated seconds kept past the first violation when truncating: one
#: paper-default monitoring round plus slack for the commit that follows.
_TRUNCATE_MARGIN_S = 60.0

#: Cap on candidate evaluations per shrink (each costs two full runs).
_MAX_SHRINK_EVALS = 64


def recorder_digest(recorder) -> str:
    """SHA-256 over every recorded sample/adaptation/fault.

    ``repr`` of a float is exact, so two digests match iff the runs are
    bit-identical.  Duplicated from ``benchmarks/perf/digest.py`` (the
    benchmarks tree lives outside ``src`` and is not importable here);
    keep the framings in sync.
    """
    h = hashlib.sha256()
    for s in recorder.samples:
        h.update(
            (
                f"{s.t_s!r}|{s.delay_s!r}|{s.processed!r}|{s.offered!r}"
                f"|{s.dropped!r}|{s.parallelism}|{s.extra_slots}\n"
            ).encode()
        )
    for a in recorder.adaptations:
        h.update(f"A|{a.t_s!r}|{a.action}|{a.detail}\n".encode())
    for f in recorder.faults:
        h.update(f"F|{f.t_s!r}|{f.kind}|{f.detail}\n".encode())
    return h.hexdigest()


# ---------------------------------------------------------------------- #
# Single scenario
# ---------------------------------------------------------------------- #


@dataclass
class ScenarioResult:
    """Outcome of one fuzzed scenario (checked run + digest replay)."""

    seed: int
    violations: list[Violation]
    digest: str
    ticks: int
    duration_s: float
    #: Times each invariant was evaluated (scoped checks skip silently, so
    #: "zero violations" is only meaningful alongside nonzero exercise).
    checks: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def invariants_hit(self) -> list[str]:
        """Distinct violated invariants, first-seen order."""
        seen: list[str] = []
        for v in self.violations:
            if v.invariant not in seen:
                seen.append(v.invariant)
        return seen

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "digest": self.digest,
            "ticks": self.ticks,
            "duration_s": self.duration_s,
            "checks": dict(sorted(self.checks.items())),
            "violations": [v.to_dict() for v in self.violations],
        }


def _execute(spec: ScenarioSpec, checker: InvariantChecker | None) -> str:
    run, dynamics = build_run(spec)
    if checker is not None:
        run.attach_checker(checker)
    run.run(spec.duration_s, dynamics)
    return recorder_digest(run.recorder)


def run_scenario(
    spec: ScenarioSpec, *, verify_digest: bool = True
) -> ScenarioResult:
    """Run one scenario under invariant checking.

    Never raises: an engine/harness exception becomes a ``crash``
    violation so a campaign reports it instead of dying.  With
    ``verify_digest`` the scenario runs a second time *without* the
    checker; differing recorder digests become a ``replay-digest``
    violation (nondeterminism, or a checker that perturbs the run).
    """
    checker = InvariantChecker()
    violations: list[Violation] = []
    digest = ""
    try:
        digest = _execute(spec, checker)
    except Exception as exc:  # noqa: BLE001 - fuzzing oracle
        violations.append(
            Violation("crash", 0.0, f"{type(exc).__name__}: {exc}")
        )
    violations.extend(checker.violations)
    if verify_digest and digest:
        try:
            replay = _execute(spec, None)
        except Exception as exc:  # noqa: BLE001 - fuzzing oracle
            replay = f"crash: {type(exc).__name__}: {exc}"
        if replay != digest:
            violations.append(
                Violation(
                    "replay-digest",
                    0.0,
                    f"checked run digest {digest} != unchecked replay "
                    f"{replay}",
                )
            )
    return ScenarioResult(
        seed=spec.seed,
        violations=violations,
        digest=digest,
        ticks=checker.ticks_checked,
        duration_s=spec.duration_s,
        checks=dict(checker.checks),
    )


# ---------------------------------------------------------------------- #
# Campaign
# ---------------------------------------------------------------------- #


@dataclass
class CampaignReport:
    """Merged outcome of a seed-sharded campaign."""

    base_seed: int
    num_seeds: int
    results: list[ScenarioResult]

    @property
    def failing(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failing

    def totals(self) -> dict[str, int]:
        """Violation count per invariant across all scenarios."""
        out: dict[str, int] = {}
        for result in self.results:
            for v in result.violations:
                out[v.invariant] = out.get(v.invariant, 0) + 1
        return dict(sorted(out.items()))

    def checks(self) -> dict[str, int]:
        """Evaluation count per invariant across all scenarios."""
        out: dict[str, int] = {}
        for result in self.results:
            for invariant, n in result.checks.items():
                out[invariant] = out.get(invariant, 0) + n
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "base_seed": self.base_seed,
            "num_seeds": self.num_seeds,
            "num_failing": len(self.failing),
            "ticks": sum(r.ticks for r in self.results),
            "checks": self.checks(),
            "totals": self.totals(),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _run_seed(seed: int, backend: str | None = None) -> ScenarioResult:
    """Worker entry point: regenerate the scenario from its seed and run.

    Module-level (picklable) and shared-nothing; even scenario
    *generation* crashes are folded into the result.  ``backend``
    overrides the scenario's engine backend (the override merges into
    ``config_overrides``, so replays and digests see the same config).
    """
    try:
        spec = generate_scenario(seed)
        if backend is not None:
            spec = dataclasses.replace(
                spec,
                config_overrides={
                    **spec.config_overrides,
                    "engine_backend": backend,
                },
            )
    except Exception as exc:  # noqa: BLE001 - fuzzing oracle
        return ScenarioResult(
            seed=seed,
            violations=[
                Violation(
                    "crash", 0.0, f"generate: {type(exc).__name__}: {exc}"
                )
            ],
            digest="",
            ticks=0,
            duration_s=0.0,
        )
    return run_scenario(spec)


def run_campaign(
    num_seeds: int,
    *,
    base_seed: int = 0,
    jobs: int = 1,
    backend: str | None = None,
) -> CampaignReport:
    """Run ``num_seeds`` scenarios (seeds ``base_seed..base_seed+N-1``).

    ``jobs > 1`` fans out over a process pool; the merged report is
    sorted by seed, so it is independent of worker count and scheduling.
    ``backend`` forces every scenario onto one engine backend
    (``"reference"`` or ``"dense"``); ``None`` keeps each scenario's own
    configuration.
    """
    if num_seeds < 1:
        raise ConfigurationError("num_seeds must be >= 1")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    seeds = [base_seed + i for i in range(num_seeds)]
    worker = functools.partial(_run_seed, backend=backend)
    if jobs == 1 or num_seeds == 1:
        results = [worker(seed) for seed in seeds]
    else:
        with multiprocessing.Pool(min(jobs, num_seeds)) as pool:
            results = pool.map(worker, seeds, chunksize=1)
    results.sort(key=lambda r: r.seed)
    return CampaignReport(
        base_seed=base_seed, num_seeds=num_seeds, results=results
    )


# ---------------------------------------------------------------------- #
# Shrinking
# ---------------------------------------------------------------------- #


def _drop_site(spec: ScenarioSpec, name: str) -> ScenarioSpec:
    sites = tuple(s for s in spec.sites if s.name != name)
    links = tuple(
        link
        for link in spec.links
        if link.src != name and link.dst != name
    )
    faults = tuple(
        f
        for f in spec.faults
        if name
        not in (
            f.params.get("site"),
            f.params.get("src"),
            f.params.get("dst"),
        )
    )
    return dataclasses.replace(spec, sites=sites, links=links, faults=faults)


def _candidates(spec: ScenarioSpec, first_violation_s: float | None):
    """Yield smaller specs, cheapest/highest-yield reductions first."""
    if first_violation_s is not None:
        cut = first_violation_s + _TRUNCATE_MARGIN_S
    else:
        cut = spec.duration_s / 2.0  # no violation time: bisect
    cut = max(cut, 60.0)
    if cut < spec.duration_s - 1e-9:
        yield dataclasses.replace(spec, duration_s=cut)
    for i in range(len(spec.faults)):
        yield dataclasses.replace(
            spec, faults=spec.faults[:i] + spec.faults[i + 1 :]
        )
    for attr in ("workload_schedule", "bandwidth_schedule"):
        schedule = getattr(spec, attr)
        if schedule is None:
            continue
        if schedule.steps:
            for i in range(len(schedule.steps)):
                trimmed = dataclasses.replace(
                    schedule,
                    steps=schedule.steps[:i] + schedule.steps[i + 1 :],
                )
                yield dataclasses.replace(spec, **{attr: trimmed})
        yield dataclasses.replace(spec, **{attr: None})
    for key in sorted(spec.config_overrides):
        overrides = {
            k: v for k, v in spec.config_overrides.items() if k != key
        }
        yield dataclasses.replace(spec, config_overrides=overrides)
    edges = [s for s in spec.sites if s.kind == "edge"]
    dcs = [s for s in spec.sites if s.kind == "dc"]
    for site in spec.sites:
        pool = edges if site.kind == "edge" else dcs
        if len(pool) <= 1:
            continue  # queries need >= 1 edge and >= 1 data center
        yield _drop_site(spec, site.name)


def shrink_scenario(
    spec: ScenarioSpec,
    invariant: str,
    *,
    max_evals: int = _MAX_SHRINK_EVALS,
    mode: str = "violates",
) -> tuple[ScenarioSpec, list[Violation]]:
    """Greedily minimize ``spec`` while ``invariant`` keeps firing.

    ``mode="violates"`` (the default) accepts a reduction iff the reduced
    scenario still *violates* the same invariant class - this minimizes a
    failing repro.  ``mode="exercises"`` accepts iff the reduction stays
    violation-free while still *evaluating* the invariant at least once -
    this minimizes a clean regression fixture that keeps the checker's
    scoped checks alive.  The reduction list restarts after every
    acceptance.  Returns the smallest spec found and its matching
    violations (empty in ``exercises`` mode).  Raises if ``spec`` does
    not qualify to begin with.
    """
    if mode not in ("violates", "exercises"):
        raise ConfigurationError(f"unknown shrink mode {mode!r}")

    def accepts(result: ScenarioResult) -> bool:
        if mode == "violates":
            return any(v.invariant == invariant for v in result.violations)
        return result.ok and result.checks.get(invariant, 0) > 0

    result = run_scenario(spec)
    if not accepts(result):
        raise ConfigurationError(
            f"seed {spec.seed}: invariant {invariant!r} does not "
            f"{'reproduce' if mode == 'violates' else 'get exercised'}"
        )
    current, current_result = spec, result
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        if mode == "violates":
            first_t = min(
                v.t_s
                for v in current_result.violations
                if v.invariant == invariant
            )
        else:
            first_t = None
        for candidate in _candidates(current, first_t):
            evals += 1
            cand_result = run_scenario(candidate)
            if accepts(cand_result):
                current = candidate
                current_result = cand_result
                improved = True
                break
            if evals >= max_evals:
                break
    return current, [
        v for v in current_result.violations if v.invariant == invariant
    ]


# ---------------------------------------------------------------------- #
# Repro artifacts
# ---------------------------------------------------------------------- #


def write_artifact(
    path: str | Path,
    spec: ScenarioSpec,
    violations: list[Violation],
    *,
    invariant: str | None = None,
) -> Path:
    """Pin a (minimized) scenario plus its violations as a JSON repro."""
    if invariant is None and violations:
        invariant = violations[0].invariant
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "invariant": invariant,
        "spec": spec.to_dict(),
        "violations": [v.to_dict() for v in violations],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | Path) -> tuple[ScenarioSpec, dict]:
    """Load a repro artifact; returns ``(spec, full payload)``."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"{path}: not a {ARTIFACT_SCHEMA} artifact "
            f"(schema={payload.get('schema')!r})"
        )
    return ScenarioSpec.from_dict(payload["spec"]), payload

"""The Reconfiguration Manager (Sections 3.1 and 6).

This is the component the Global Metric Monitor asks to resolve unhealthy
executions.  Once per monitoring interval it:

1. refreshes the WAN monitor's pairwise bandwidth measurements,
2. collects the interval's metrics window,
3. estimates the actual (unthrottled) workload per stage (Section 3.3),
4. diagnoses every stage (Section 3.2),
5. asks the policy for adaptation actions (Section 6.2, Figure 6), and
6. executes them: slot re-allocation via the scheduler, state movement via
   the migration planner + state store, and execution suspension via the
   engine's mutation API (the transition phase of Section 8.7).

The controller also hosts the baselines' restricted behaviours: the policy
mode limits *which* techniques may fire (Section 8.5) and the migration
strategy selects WASP / Random / Distant / None state movement
(Section 8.7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import WaspConfig
from ..engine.checkpoint import CheckpointCoordinator
from ..engine.metrics import GlobalMetricMonitor, MetricsWindow
from ..engine.physical import PhysicalPlan, Stage
from ..engine.runtime import EngineRuntime, TickReport
from ..engine.state import StateStore
from ..errors import AdaptationError
from ..network.monitor import WanMonitor
from ..network.relay import relayed_bandwidth_lookup
from ..planner.scheduler import AssignmentDiff, Scheduler
from ..sim.recorder import RunRecorder
from .actions import (
    Action,
    ActionKind,
    ReassignAction,
    ReplanAction,
    ScaleAction,
    ScaleDownAction,
)
from .diagnosis import Diagnoser, StageDiagnosis
from .estimator import WorkloadEstimator
from .migration import (
    MigrationPlan,
    MigrationStrategy,
    plan_migration,
    rebalance_transfers,
)
from .policy import AdaptationPolicy, PolicyContext, PolicyMode
from .replanning import Replanner


@dataclass
class AdaptationRecord:
    """One executed action, for experiment annotation and assertions."""

    t_s: float
    kind: ActionKind
    stage: str
    reason: str
    transition_s: float
    migration: MigrationPlan | None = None


class _NetworkAdapter:
    """Bridges the diagnoser/policy protocols to monitor + topology."""

    def __init__(self, manager: "ReconfigurationManager") -> None:
        self._m = manager

    def bandwidth_mbps(self, src: str, dst: str) -> float:
        return self._m.wan_monitor.bandwidth_mbps(src, dst)

    def latency_ms(self, src: str, dst: str) -> float:
        return self._m.wan_monitor.latency_ms(src, dst)

    def site_proc_rate_eps(self, site: str) -> float:
        site_obj = self._m.runtime.topology.site(site)
        if site_obj.failed:
            return 0.0
        return site_obj.effective_proc_rate_eps

    def plan_for(self, stage_name: str) -> PhysicalPlan | None:
        plan = self._m.runtime.plan
        return plan if stage_name in plan.stages else None


class ReconfigurationManager:
    """Monitors, diagnoses and adapts one running query."""

    def __init__(
        self,
        runtime: EngineRuntime,
        scheduler: Scheduler,
        wan_monitor: WanMonitor,
        state_store: StateStore,
        checkpoints: CheckpointCoordinator,
        *,
        replanner: Replanner | None = None,
        config: WaspConfig | None = None,
        recorder: RunRecorder | None = None,
        mode: PolicyMode | None = None,
        migration_strategy: MigrationStrategy = MigrationStrategy.WASP,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.runtime = runtime
        self.scheduler = scheduler
        self.wan_monitor = wan_monitor
        self.state_store = state_store
        self.checkpoints = checkpoints
        self.replanner = replanner
        self.config = config or WaspConfig.paper_defaults()
        self.recorder = recorder
        self.mode = mode or PolicyMode.wasp()
        self.migration_strategy = migration_strategy
        self._rng = rng if rng is not None else np.random.default_rng(0)

        self.monitor = GlobalMetricMonitor()
        self.estimator = WorkloadEstimator()
        self.diagnoser = Diagnoser(self.config)
        self.policy = AdaptationPolicy(self.estimator)
        self.network = _NetworkAdapter(self)

        self.history: list[AdaptationRecord] = []
        self.state_lost_mb = 0.0
        self.last_window: MetricsWindow | None = None
        self.last_diagnoses: dict[str, StageDiagnosis] = {}

        # Bulk state transfers may route through a relay site when the
        # config enables it; live stream placement always uses direct links.
        if self.config.migration_relays:
            self.migration_bandwidth = relayed_bandwidth_lookup(
                self.runtime.topology.site_names,
                self.wan_monitor.bandwidth_mbps,
            )
        else:
            self.migration_bandwidth = self.wan_monitor.bandwidth_mbps

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def observe_tick(self, report: TickReport) -> None:
        self.monitor.observe(report)

    # ------------------------------------------------------------------ #
    # The adaptation loop body
    # ------------------------------------------------------------------ #

    def adaptation_round(self, now_s: float) -> list[AdaptationRecord]:
        """One monitoring-interval iteration; returns the actions executed."""
        self.wan_monitor.refresh(now_s)
        window = self.monitor.collect(self.runtime.sink_source_equiv)
        self.last_window = window
        plan = self.runtime.plan
        estimates = self.estimator.estimate(plan, window)
        diagnoses = self.diagnoser.diagnose(
            plan, window, estimates, self.network
        )
        self.last_diagnoses = diagnoses

        # Skip stages still transitioning from the previous adaptation.
        actionable = {
            name: diag
            for name, diag in diagnoses.items()
            if not self.runtime.is_suspended(name)
        }

        ctx = PolicyContext(
            plan=plan,
            diagnoses=actionable,
            estimates=estimates,
            network=self.network,
            available_slots=self.runtime.topology.available_slots(),
            state_mb_at=self.state_store.mb_at_site,
            source_generation_eps=dict(window.source_generation_eps),
            config=self.config,
            replanner=self.replanner,
            mode=self.mode,
            migration_bandwidth=self.migration_bandwidth,
        )
        actions = self.policy.decide(ctx)
        # Re-planning replaces the entire execution (high overhead, Table
        # 2); a cooldown prevents thrashing between near-equal plans.
        last_replan = max(
            (r.t_s for r in self.history if r.kind is ActionKind.REPLAN),
            default=float("-inf"),
        )
        actions = [
            a
            for a in actions
            if not (
                isinstance(a, ReplanAction)
                and now_s - last_replan < self.config.replan_cooldown_s
            )
        ]
        executed: list[AdaptationRecord] = []
        for action in actions:
            record = self._execute(action, now_s)
            if record is not None:
                executed.append(record)
                self.history.append(record)
                if self.recorder is not None:
                    self.recorder.record_adaptation(
                        now_s, record.kind.value, record.reason
                    )
        return executed

    # ------------------------------------------------------------------ #
    # Action execution
    # ------------------------------------------------------------------ #

    def _execute(self, action: Action, now_s: float) -> AdaptationRecord | None:
        if isinstance(action, ReassignAction):
            return self._execute_reassign(action, now_s)
        if isinstance(action, ScaleAction):
            return self._execute_scale(action, now_s)
        if isinstance(action, ScaleDownAction):
            return self._execute_scale_down(action, now_s)
        if isinstance(action, ReplanAction):
            return self._execute_replan(action, now_s)
        raise AdaptationError(f"unknown action type: {action!r}")

    def _stage(self, name: str) -> Stage:
        return self.runtime.plan.stage(name)

    def _execute_reassign(
        self, action: ReassignAction, now_s: float
    ) -> AdaptationRecord:
        stage = self._stage(action.stage)
        moved_out = {
            site: self.state_store.mb_at_site(stage.name, site)
            for site, count in stage.placement().items()
            if action.new_assignment.get(site, 0) < count
        }
        diff = self.scheduler.apply_assignment(stage, action.new_assignment)
        migration = self._migrate_for_diff(stage, moved_out, diff)
        transition = (
            self.config.reconfig_base_overhead_s + migration.transition_s
        )
        self.runtime.suspend_stage(stage.name, now_s + transition)
        self._apply_migration_side_effects(stage, migration)
        self._rehome_orphans(stage, diff)
        return AdaptationRecord(
            t_s=now_s,
            kind=ActionKind.REASSIGN,
            stage=stage.name,
            reason=action.reason,
            transition_s=transition,
            migration=migration,
        )

    def _execute_scale(
        self, action: ScaleAction, now_s: float
    ) -> AdaptationRecord:
        stage = self._stage(action.stage)
        before_state = {
            site: self.state_store.mb_at_site(stage.name, site)
            for site in stage.placement()
        }
        diff = self.scheduler.apply_assignment(stage, action.new_assignment)
        migration: MigrationPlan | None = None
        transition = self.config.reconfig_base_overhead_s
        if stage.stateful and self.state_store.total_mb(stage.name) > 0:
            migration = self._rebalance_state(stage, before_state)
            transition += migration.transition_s
        elif stage.stateful:
            task_sites = [t.site for t in stage.tasks]
            self.state_store.rebalance(stage.name, task_sites)
        self._rehome_orphans(stage, diff)
        self.runtime.suspend_stage(stage.name, now_s + transition)
        return AdaptationRecord(
            t_s=now_s,
            kind=action.kind,
            stage=stage.name,
            reason=action.reason,
            transition_s=transition,
            migration=migration,
        )

    def _execute_scale_down(
        self, action: ScaleDownAction, now_s: float
    ) -> AdaptationRecord:
        stage = self._stage(action.stage)
        partition_mb = (
            self.state_store.mb_at_site(stage.name, action.site)
            if stage.stateful
            else 0.0
        )
        self.scheduler.remove_task(stage, action.site)
        # Relay the terminated task's queued input and state to the
        # best-connected surviving site.
        survivors = stage.sites()
        target = max(
            survivors,
            key=lambda s: self.wan_monitor.bandwidth_mbps(action.site, s)
            if s != action.site
            else float("inf"),
        )
        transition = 0.0
        migration = None
        if stage.stateful and partition_mb > 0 and action.site not in survivors:
            migration = plan_migration(
                stage.name,
                {action.site: partition_mb},
                [target],
                self.migration_bandwidth,
                strategy=self.migration_strategy,
                rng=self._rng,
            )
            transition = migration.transition_s
            self.state_lost_mb += migration.state_abandoned_mb
        if stage.stateful:
            self.state_store.rebalance(
                stage.name, [t.site for t in stage.tasks]
            )
        if action.site not in survivors:
            self.runtime.relay_queue(stage.name, action.site, target)
            self.runtime.redirect_flows(stage.name, action.site, target)
        if transition > 0:
            self.runtime.suspend_stage(stage.name, now_s + transition)
        return AdaptationRecord(
            t_s=now_s,
            kind=ActionKind.SCALE_DOWN,
            stage=stage.name,
            reason=action.reason,
            transition_s=transition,
            migration=migration,
        )

    def _execute_replan(
        self, action: ReplanAction, now_s: float
    ) -> AdaptationRecord:
        estimate = action.estimate
        old_plan = self.runtime.plan
        new_plan = estimate.physical
        assignments = dict(estimate.assignments)

        # Keep surviving stateful stages where they run today, so their
        # state never crosses the WAN during the switch - but only when the
        # stage really is the *same* sub-plan (matching signature) and its
        # state outlives windows.  Window-bounded stages re-initialize at
        # the boundary (Section 4.3), so they follow the new plan's
        # placement, which was chosen for the new flow pattern.
        surviving = set(new_plan.stages) & set(old_plan.stages)
        for name in surviving:
            old_stage = old_plan.stage(name)
            if not (old_stage.stateful and old_stage.parallelism > 0):
                continue
            if old_stage.window_s > 0:
                continue
            head = old_stage.head.name
            if head not in new_plan.logical.operators:
                continue
            old_sig = old_plan.logical.subplan_signature(head)
            new_sig = new_plan.logical.subplan_signature(head)
            if old_sig == new_sig:
                assignments[name] = dict(old_stage.placement())

        self.scheduler.undeploy(old_plan)
        self.scheduler.deploy(new_plan, assignments)

        # State: drop removed stages (the safety check guarantees they were
        # stateless or window-bounded), carry surviving ones (placement was
        # pinned above, so no WAN transfer), initialize new stateful stages.
        for name in self.state_store.stage_names():
            if name not in new_plan.stages:
                self.state_store.drop_stage(name)
        for stage in new_plan.topological_stages():
            if not stage.stateful:
                continue
            task_sites = [t.site for t in stage.tasks]
            if stage.name in surviving and self.state_store.total_mb(stage.name) > 0:
                self.state_store.rebalance(stage.name, task_sites)
            else:
                self.state_store.initialize_stage(
                    stage.name, stage.state_mb, task_sites
                )

        self.runtime.replace_plan(new_plan)
        transition = self.config.replan_deploy_overhead_s
        for stage in new_plan.topological_stages():
            if stage.is_source:
                continue
            # Queued/in-flight events destined to sites the new deployment
            # does not cover follow the execution to its new sites.
            self.runtime.rehome_to_placement(
                stage.name, self.wan_monitor.bandwidth_mbps
            )
            self.runtime.suspend_stage(stage.name, now_s + transition)
        return AdaptationRecord(
            t_s=now_s,
            kind=ActionKind.REPLAN,
            stage=action.stage,
            reason=action.reason,
            transition_s=transition,
            migration=None,
        )

    # ------------------------------------------------------------------ #
    # State-migration helpers
    # ------------------------------------------------------------------ #

    def _migrate_for_diff(
        self,
        stage: Stage,
        moved_out: dict[str, float],
        diff: AssignmentDiff,
    ) -> MigrationPlan:
        moved_in: list[str] = []
        for site, count in diff.added.items():
            moved_in.extend([site] * count)
        moved_out = {s: mb for s, mb in moved_out.items() if s in diff.removed}
        plan = plan_migration(
            stage.name,
            moved_out,
            moved_in,
            self.migration_bandwidth,
            strategy=self.migration_strategy,
            rng=self._rng,
        )
        return plan

    def _apply_migration_side_effects(
        self, stage: Stage, migration: MigrationPlan
    ) -> None:
        for transfer in migration.transfers:
            self.checkpoints.forget_site(stage.name, transfer.from_site)
        if stage.stateful:
            task_sites = [t.site for t in stage.tasks]
            if migration.state_abandoned_mb > 0:
                # No Migrate: abandoned partitions restart empty (Section
                # 8.7.1 - "ignoring the state will result in a loss of
                # accuracy in the result").
                self.state_lost_mb += migration.state_abandoned_mb
                remaining = max(
                    0.0,
                    self.state_store.total_mb(stage.name)
                    - migration.state_abandoned_mb,
                )
                self.state_store.initialize_stage(
                    stage.name, remaining, task_sites
                )
            else:
                # The store mirrors deployment: balanced partition per task.
                self.state_store.rebalance(stage.name, task_sites)

    def _rebalance_state(
        self, stage: Stage, before_state: dict[str, float]
    ) -> MigrationPlan:
        """State re-partitioning after a parallelism change (Section 8.7.2).

        The balanced layout assigns ``|state| / p'`` per task; sites with
        excess (including sites the stage vacated entirely) ship slices to
        sites with deficits.  Because the per-slice size shrinks as ``p'``
        grows, scale-out bounds the slowest transfer - the reason state
        partitioning mitigates the adaptation overhead for large states.
        """
        total_mb = self.state_store.total_mb(stage.name)
        placement = stage.placement()
        p_new = max(1, sum(placement.values()))
        share_mb = total_mb / p_new
        target = {site: share_mb * count for site, count in placement.items()}
        strategy = self.migration_strategy
        if strategy is MigrationStrategy.NONE:
            # State partitioning always ships the state: abandoning it here
            # would silently turn a stateful scale into data loss.
            strategy = MigrationStrategy.WASP
        plan = rebalance_transfers(
            stage.name,
            before_state,
            target,
            self.migration_bandwidth,
            strategy=strategy,
            rng=self._rng,
        )
        self.state_store.rebalance(stage.name, [t.site for t in stage.tasks])
        return plan

    def _rehome_orphans(self, stage: Stage, diff: AssignmentDiff) -> None:
        """Move queued input and in-flight traffic off sites the stage no
        longer runs at, onto the best-connected surviving site."""
        survivors = set(stage.placement())
        if not survivors:
            return
        for site in sorted(diff.removed):
            if site in survivors:
                continue
            target = max(
                sorted(survivors),
                key=lambda s: self.wan_monitor.bandwidth_mbps(site, s),
            )
            self.runtime.move_task_queue(stage.name, site, target)
            self.runtime.redirect_flows(stage.name, site, target)

"""The Reconfiguration Manager (Sections 3.1 and 6).

This is the component the Global Metric Monitor asks to resolve unhealthy
executions.  Once per monitoring interval it:

1. refreshes the WAN monitor's pairwise bandwidth measurements,
2. collects the interval's metrics window,
3. estimates the actual (unthrottled) workload per stage (Section 3.3),
4. diagnoses every stage (Section 3.2),
5. asks the policy for adaptation actions (Section 6.2, Figure 6), and
6. executes them: slot re-allocation via the scheduler, state movement via
   the migration planner + state store, and execution suspension via the
   engine's mutation API (the transition phase of Section 8.7).

The controller also hosts the baselines' restricted behaviours: the policy
mode limits *which* techniques may fire (Section 8.5) and the migration
strategy selects WASP / Random / Distant / None state movement
(Section 8.7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import WaspConfig
from ..engine.checkpoint import CheckpointCoordinator
from ..engine.metrics import GlobalMetricMonitor, MetricsWindow
from ..engine.physical import PhysicalPlan, Stage
from ..engine.runtime import EngineRuntime, TickReport
from ..engine.state import StateStore
from ..errors import AdaptationError, AdaptationRollbackError, WaspError
from ..network.monitor import WanMonitor
from ..network.relay import relayed_bandwidth_lookup
from ..obs.events import (
    Abandoned,
    Apply,
    AttemptStart,
    Commit,
    Diagnose,
    EventBus,
    FallbackHop,
    Rollback,
    RoundEnd,
    RoundStart,
    Validate,
    Verify,
    WindowSnapshot,
)
from ..planner.scheduler import AssignmentDiff, Scheduler
from ..sim.recorder import RunRecorder
from .actions import (
    Action,
    ActionKind,
    ReassignAction,
    ReplanAction,
    ScaleAction,
    ScaleDownAction,
)
from .diagnosis import Diagnoser, StageDiagnosis
from .estimator import WorkloadEstimator
from .migration import (
    MigrationPlan,
    MigrationStrategy,
    emit_migration_events,
    plan_migration,
    rebalance_transfers,
)
from .policy import AdaptationPolicy, PolicyContext, PolicyMode
from .replanning import Replanner
from .transaction import (
    AdaptationPoint,
    AdaptationTransaction,
    AttemptRecord,
)

#: Hook signature chaos injection registers on the controller: called at
#: each :class:`AdaptationPoint` with the acted-on stage and the sim time.
AdaptationHook = Callable[[AdaptationPoint, str, float], None]


@dataclass
class AdaptationRecord:
    """One executed action, for experiment annotation and assertions."""

    t_s: float
    kind: ActionKind
    stage: str
    reason: str
    transition_s: float
    migration: MigrationPlan | None = None
    #: Which technique of the Figure-6 fallback chain finally committed:
    #: "primary", "retry-<k>", "scale-out" or "abandon-state".
    attempt: str = "primary"


@dataclass(frozen=True)
class _Attempt:
    """One candidate technique in the transactional fallback chain."""

    label: str
    action: Action
    strategy: MigrationStrategy | None  # None inherits the manager's strategy
    backoff_s: float = 0.0


class _NetworkAdapter:
    """Bridges the diagnoser/policy protocols to monitor + topology."""

    def __init__(self, manager: "ReconfigurationManager") -> None:
        self._m = manager

    def bandwidth_mbps(self, src: str, dst: str) -> float:
        return self._m.wan_monitor.bandwidth_mbps(src, dst)

    def latency_ms(self, src: str, dst: str) -> float:
        return self._m.wan_monitor.latency_ms(src, dst)

    def site_proc_rate_eps(self, site: str) -> float:
        site_obj = self._m.runtime.topology.site(site)
        if site_obj.failed:
            return 0.0
        return site_obj.effective_proc_rate_eps

    def plan_for(self, stage_name: str) -> PhysicalPlan | None:
        plan = self._m.runtime.plan
        return plan if stage_name in plan.stages else None


class ReconfigurationManager:
    """Monitors, diagnoses and adapts one running query."""

    def __init__(
        self,
        runtime: EngineRuntime,
        scheduler: Scheduler,
        wan_monitor: WanMonitor,
        state_store: StateStore,
        checkpoints: CheckpointCoordinator,
        *,
        replanner: Replanner | None = None,
        config: WaspConfig | None = None,
        recorder: RunRecorder | None = None,
        mode: PolicyMode | None = None,
        migration_strategy: MigrationStrategy = MigrationStrategy.WASP,
        rng: np.random.Generator | None = None,
        obs: EventBus | None = None,
    ) -> None:
        self.runtime = runtime
        self.scheduler = scheduler
        self.wan_monitor = wan_monitor
        self.state_store = state_store
        self.checkpoints = checkpoints
        self.replanner = replanner
        self.config = config or WaspConfig.paper_defaults()
        self.recorder = recorder
        self.mode = mode or PolicyMode.wasp()
        self.migration_strategy = migration_strategy
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Optional event bus (repro.obs); every emission site is guarded
        #: by its truthiness, so a sink-less bus costs nothing.
        self.obs = obs
        self._round_no = 0

        self.monitor = GlobalMetricMonitor()
        self.estimator = WorkloadEstimator()
        self.diagnoser = Diagnoser(self.config)
        self.policy = AdaptationPolicy(self.estimator, obs=obs)
        self.network = _NetworkAdapter(self)

        self.history: list[AdaptationRecord] = []
        self.attempt_log: list[AttemptRecord] = []
        self.state_lost_mb = 0.0
        self.last_window: MetricsWindow | None = None
        self.last_diagnoses: dict[str, StageDiagnosis] = {}

        #: Chaos hook fired at each AdaptationPoint (see transaction.py);
        #: None outside chaos experiments.
        self.adaptation_hook: AdaptationHook | None = None
        # Per-attempt overrides installed by the transactional executor.
        self._strategy_override: MigrationStrategy | None = None
        self._extra_transition_s = 0.0

        # Bulk state transfers may route through a relay site when the
        # config enables it; live stream placement always uses direct links.
        if self.config.migration_relays:
            self.migration_bandwidth = relayed_bandwidth_lookup(
                self.runtime.topology.site_names,
                self.wan_monitor.bandwidth_mbps,
            )
        else:
            self.migration_bandwidth = self.wan_monitor.bandwidth_mbps

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def observe_tick(self, report: TickReport) -> None:
        self.monitor.observe(report)

    # ------------------------------------------------------------------ #
    # The adaptation loop body
    # ------------------------------------------------------------------ #

    def adaptation_round(self, now_s: float) -> list[AdaptationRecord]:
        """One monitoring-interval iteration; returns the actions executed."""
        obs = self.obs
        if obs:
            self._round_no += 1
            with obs.span("adaptation-round", now_s):
                obs.emit(
                    RoundStart(
                        now_s,
                        round=self._round_no,
                        stages=len(self.runtime.plan.stages),
                    )
                )
                executed, decided = self._round_body(now_s)
                obs.emit(
                    RoundEnd(
                        now_s,
                        round=self._round_no,
                        decided=decided,
                        executed=len(executed),
                    )
                )
            return executed
        executed, _ = self._round_body(now_s)
        return executed

    def _round_body(
        self, now_s: float
    ) -> tuple[list[AdaptationRecord], int]:
        """The round itself; returns (executed records, decided count)."""
        obs = self.obs
        self.wan_monitor.refresh(now_s)
        window = self.monitor.collect(self.runtime.sink_source_equiv)
        self.last_window = window
        plan = self.runtime.plan
        estimates = self.estimator.estimate(plan, window)
        diagnoses = self.diagnoser.diagnose(
            plan, window, estimates, self.network
        )
        self.last_diagnoses = diagnoses
        if obs:
            self._emit_window(now_s, window, estimates)
            for name in sorted(diagnoses):
                diag = diagnoses[name]
                obs.emit(
                    Diagnose(
                        now_s,
                        stage=name,
                        health=diag.health.value,
                        utilization=diag.utilization,
                        expected_input_eps=diag.expected_input_eps,
                        capacity_eps=diag.processing_capacity_eps,
                        backlog=diag.input_backlog,
                        backlog_growth=diag.input_backlog_growth,
                        slow_sites=list(diag.slow_sites),
                    )
                )

        # Skip stages still transitioning from the previous adaptation.
        actionable = {
            name: diag
            for name, diag in diagnoses.items()
            if not self.runtime.is_suspended(name)
        }

        ctx = PolicyContext(
            plan=plan,
            diagnoses=actionable,
            estimates=estimates,
            network=self.network,
            available_slots=self.runtime.topology.available_slots(),
            state_mb_at=self.state_store.mb_at_site,
            source_generation_eps=dict(window.source_generation_eps),
            config=self.config,
            replanner=self.replanner,
            mode=self.mode,
            migration_bandwidth=self.migration_bandwidth,
            now_s=now_s,
        )
        actions = self.policy.decide(ctx)
        decided = len(actions)
        # Re-planning replaces the entire execution (high overhead, Table
        # 2); a cooldown prevents thrashing between near-equal plans.
        last_replan = max(
            (r.t_s for r in self.history if r.kind is ActionKind.REPLAN),
            default=float("-inf"),
        )
        actions = [
            a
            for a in actions
            if not (
                isinstance(a, ReplanAction)
                and now_s - last_replan < self.config.replan_cooldown_s
            )
        ]
        executed: list[AdaptationRecord] = []
        for action in actions:
            record = self._execute(action, now_s)
            if record is not None:
                executed.append(record)
                self.history.append(record)
                if self.recorder is not None:
                    self.recorder.record_adaptation(
                        now_s, record.kind.value, record.reason
                    )
        return executed, decided

    def _emit_window(
        self,
        now_s: float,
        window: MetricsWindow,
        estimates: dict,
    ) -> None:
        """One ``window`` event: per-stage rates/backlog + per-link flows."""
        stages: dict[str, dict] = {}
        links: dict[str, dict] = {}
        for name in sorted(window.stages):
            metrics = window.stages[name]
            estimate = estimates.get(name)
            stages[name] = {
                "lambda_p": metrics.lambda_p,
                "lambda_hat": estimate.input_eps if estimate else 0.0,
                "utilization": metrics.utilization,
                "backlog": metrics.input_backlog,
                "backlog_growth": metrics.input_backlog_growth,
            }
            for (src, dst), eps in metrics.net_inflow.items():
                link = links.setdefault(
                    f"{src}->{dst}", {"inflow_eps": 0.0, "backlog": 0.0}
                )
                link["inflow_eps"] += eps
            for (src, dst), backlog in metrics.net_backlog.items():
                link = links.setdefault(
                    f"{src}->{dst}", {"inflow_eps": 0.0, "backlog": 0.0}
                )
                link["backlog"] += backlog
        self.obs.emit(
            WindowSnapshot(
                now_s,
                t_start_s=window.t_start_s,
                t_end_s=window.t_end_s,
                offered_eps=window.offered_eps,
                mean_delay_s=window.mean_delay_s,
                stages=stages,
                links=dict(sorted(links.items())),
            )
        )

    # ------------------------------------------------------------------ #
    # Action execution
    # ------------------------------------------------------------------ #

    def execute(self, action: Action, now_s: float) -> AdaptationRecord | None:
        """Run one externally-constructed action through the same
        transactional fallback chain `adaptation_round` uses."""
        return self._execute(action, now_s)

    def _execute(self, action: Action, now_s: float) -> AdaptationRecord | None:
        """Run one action transactionally with technique fallback.

        Lifecycle per attempt: validate -> snapshot -> apply -> verify ->
        commit.  Any :class:`~repro.errors.WaspError` raised during the
        attempt (a planner refusing a dead link, a chaos fault striking at
        an :class:`AdaptationPoint`, verification finding the result
        inconsistent) rolls the snapshot back and falls through the
        Figure-6 technique chain: retry against re-measured bandwidth with
        bounded simulated-time backoff, then scale-out with state
        partitioning, then abandon the state (Section 8.7.1's NONE).
        Returns None when every technique rolled back - the system is then
        bit-identical to before the action.
        """
        if not isinstance(
            action, (ReassignAction, ScaleAction, ScaleDownAction, ReplanAction)
        ):
            raise AdaptationError(f"unknown action type: {action!r}")
        obs = self.obs
        prev_label: str | None = None
        for attempt in self._attempt_chain(action, now_s):
            if obs:
                if prev_label is not None:
                    obs.emit(
                        FallbackHop(
                            now_s,
                            stage=action.stage,
                            from_attempt=prev_label,
                            to_attempt=attempt.label,
                        )
                    )
                obs.emit(
                    AttemptStart(
                        now_s,
                        stage=action.stage,
                        attempt=attempt.label,
                        action=attempt.action.kind.value,
                        reason=attempt.action.reason,
                    )
                )
            prev_label = attempt.label
            txn = AdaptationTransaction.begin(
                self, now_s=now_s, stage=action.stage
            )
            self._strategy_override = attempt.strategy
            self._extra_transition_s = attempt.backoff_s
            try:
                self._validate(attempt.action)
                if obs:
                    obs.emit(
                        Validate(
                            now_s,
                            stage=action.stage,
                            action=attempt.action.kind.value,
                        )
                    )
                record = self._apply_action(attempt.action, now_s)
                if obs:
                    obs.emit(
                        Apply(
                            now_s,
                            stage=action.stage,
                            action=attempt.action.kind.value,
                            transition_s=record.transition_s,
                        )
                    )
                self._verify(record)
                if obs:
                    obs.emit(Verify(now_s, stage=action.stage))
                    if record.migration is not None:
                        emit_migration_events(
                            obs,
                            now_s,
                            record.stage,
                            record.migration,
                            self._current_strategy(),
                        )
            except WaspError as exc:
                txn.rollback(self)
                if obs:
                    obs.emit(
                        Rollback(
                            now_s,
                            stage=action.stage,
                            attempt=attempt.label,
                            error=str(exc),
                        )
                    )
                self._log_attempt(
                    now_s, action.stage, attempt.label, "rolled-back", str(exc)
                )
                continue
            finally:
                self._strategy_override = None
                self._extra_transition_s = 0.0
            record.attempt = attempt.label
            if obs:
                obs.emit(
                    Commit(
                        now_s,
                        stage=action.stage,
                        attempt=attempt.label,
                        action=record.kind.value,
                        reason=record.reason,
                        transition_s=record.transition_s,
                    )
                )
            self._log_attempt(
                now_s, action.stage, attempt.label, "committed",
                attempt.action.reason,
            )
            return record
        if obs:
            obs.emit(
                Abandoned(now_s, stage=action.stage, action=action.kind.value)
            )
        self._log_attempt(
            now_s, action.stage, "exhausted", "abandoned",
            "every technique in the fallback chain rolled back",
        )
        return None

    def _apply_action(self, action: Action, now_s: float) -> AdaptationRecord:
        if isinstance(action, ReassignAction):
            return self._execute_reassign(action, now_s)
        if isinstance(action, ScaleAction):
            return self._execute_scale(action, now_s)
        if isinstance(action, ScaleDownAction):
            return self._execute_scale_down(action, now_s)
        assert isinstance(action, ReplanAction)
        return self._execute_replan(action, now_s)

    def _stage(self, name: str) -> Stage:
        return self.runtime.plan.stage(name)

    # ------------------------------------------------------------------ #
    # Transaction lifecycle: validate / verify / fallback chain
    # ------------------------------------------------------------------ #

    def _current_strategy(self) -> MigrationStrategy:
        return self._strategy_override or self.migration_strategy

    def _notify_point(
        self, point: AdaptationPoint, stage: str, now_s: float
    ) -> None:
        if self.adaptation_hook is not None:
            self.adaptation_hook(point, stage, now_s)

    def _log_attempt(
        self, t_s: float, stage: str, attempt: str, outcome: str, detail: str
    ) -> None:
        self.attempt_log.append(
            AttemptRecord(t_s, stage, attempt, outcome, detail)
        )
        if self.recorder is None:
            return
        if outcome == "rolled-back":
            self.recorder.record_adaptation(
                t_s, "rollback", f"{stage}: {attempt}: {detail}"
            )
        elif outcome == "abandoned":
            self.recorder.record_adaptation(
                t_s, "adaptation-abandoned", f"{stage}: {detail}"
            )
        elif attempt != "primary":
            self.recorder.record_adaptation(
                t_s, f"fallback:{attempt}", f"{stage}: {detail}"
            )

    def _validate(self, action: Action) -> None:
        """Reject actions that are wrong before touching anything."""
        if isinstance(action, ReplanAction):
            return  # the replanner validated feasibility when proposing it
        plan = self.runtime.plan
        if action.stage not in plan.stages:
            raise AdaptationError(f"unknown stage {action.stage!r}")
        topology = self.runtime.topology
        if isinstance(action, (ReassignAction, ScaleAction)):
            if not action.new_assignment:
                raise AdaptationError(
                    f"stage {action.stage!r}: empty assignment"
                )
            for site, count in sorted(action.new_assignment.items()):
                if count <= 0:
                    raise AdaptationError(
                        f"stage {action.stage!r}: non-positive task count "
                        f"{count} at {site!r}"
                    )
                if topology.site(site).failed:
                    raise AdaptationError(
                        f"stage {action.stage!r}: assignment targets failed "
                        f"site {site!r}"
                    )
        elif isinstance(action, ScaleDownAction):
            if plan.stage(action.stage).placement().get(action.site, 0) < 1:
                raise AdaptationError(
                    f"stage {action.stage!r} has no task at {action.site!r}"
                )

    def _verify(self, record: AdaptationRecord) -> None:
        """Post-apply consistency check; raising here triggers rollback.

        A fault injected at an adaptation point surfaces exactly here: the
        apply path succeeded against the pre-fault world, and verification
        compares the result against the post-fault one.
        """
        plan = self.runtime.plan
        topology = self.runtime.topology
        failed = {s.name for s in topology if s.failed}
        names = (
            list(plan.stages)
            if record.kind is ActionKind.REPLAN
            else [record.stage]
        )
        for name in names:
            stage = plan.stages.get(name)
            if stage is None:
                continue
            if stage.is_source:
                continue  # sources are pinned; recovery handles their sites
            placement = stage.placement()
            on_failed = sorted(set(placement) & failed)
            if on_failed:
                raise AdaptationRollbackError(
                    f"stage {name!r} placed on failed site(s) {on_failed}"
                )
            if stage.stateful:
                stranded = sorted(
                    set(self.state_store.sites(name)) - set(placement)
                )
                if stranded:
                    raise AdaptationRollbackError(
                        f"stage {name!r}: state partitions stranded at "
                        f"{stranded}"
                    )
        if record.migration is not None and not math.isfinite(
            record.migration.transition_s
        ):
            raise AdaptationRollbackError(
                f"stage {record.stage!r}: non-finite migration transition"
            )
        # Slot accounting: every task of the live plan must be backed by an
        # allocated slot, and no site may exceed its capacity.
        tasks_at: dict[str, int] = {}
        for stage in plan.topological_stages():
            for site, count in stage.placement().items():
                tasks_at[site] = tasks_at.get(site, 0) + count
        for site_name in sorted(tasks_at):
            site = topology.site(site_name)
            if not site.failed and site.used_slots < tasks_at[site_name]:
                raise AdaptationRollbackError(
                    f"slot accounting underflow at {site_name!r}: "
                    f"{tasks_at[site_name]} tasks but only "
                    f"{site.used_slots} slots in use"
                )

    def _attempt_chain(self, action: Action, now_s: float):
        """Lazily yield the Figure-6 fallback chain for ``action``.

        Built lazily so each fallback is derived from the world as it is
        *after* the previous rollback (failed sites stripped, bandwidth
        re-measured).  Scale-down is an optimization and a re-plan is
        re-decided from scratch next round, so both get a single attempt.
        """
        yield _Attempt("primary", action, None)
        if not isinstance(action, (ReassignAction, ScaleAction)):
            return
        backoff = self.config.adaptation_retry_backoff_s
        for k in range(1, self.config.adaptation_max_retries + 1):
            retry = self._remeasured_action(action, now_s)
            if retry is None:
                break
            yield _Attempt(f"retry-{k}", retry, None, backoff_s=backoff * k)
        scale_out = self._scale_out_fallback(action)
        if scale_out is not None:
            yield _Attempt("scale-out", scale_out, None)
        abandon = self._abandon_state_fallback(action)
        if abandon is not None:
            yield _Attempt("abandon-state", abandon, MigrationStrategy.NONE)

    def _viable_assignment(
        self, stage: Stage, assignment: dict[str, int]
    ) -> dict[str, int] | None:
        """Strip failed sites from ``assignment``, re-homing displaced tasks.

        Displaced counts move to live sites by descending slot headroom
        (ties broken by name, so the result is deterministic).  Returns
        None when nothing survives.
        """
        failed = {s.name for s in self.runtime.topology if s.failed}
        surviving = {
            site: count
            for site, count in assignment.items()
            if site not in failed
        }
        displaced = sum(
            count for site, count in assignment.items() if site in failed
        )
        if displaced:
            current = stage.placement()
            available = self.runtime.topology.available_slots()

            def headroom(site: str) -> int:
                # Slots a retry could occupy: currently free, plus those the
                # stage itself holds there, minus what this assignment asks.
                return (
                    available.get(site, 0)
                    + current.get(site, 0)
                    - surviving.get(site, 0)
                )

            candidates = sorted(set(available) - failed)
            for _ in range(displaced):
                best = None
                for site in candidates:
                    if headroom(site) <= 0:
                        continue
                    if best is None or headroom(site) > headroom(best):
                        best = site
                if best is None:
                    break  # not enough live capacity; shrink the stage
                surviving[best] = surviving.get(best, 0) + 1
        return surviving or None

    def _remeasured_action(
        self, action: ReassignAction | ScaleAction, now_s: float
    ) -> Action | None:
        stage = self.runtime.plan.stages.get(action.stage)
        if stage is None:
            return None
        assignment = self._viable_assignment(stage, action.new_assignment)
        if assignment is None:
            return None
        # Fresh single-link measurements for every candidate transfer path,
        # so the retry plans against the post-fault bandwidth.
        for src in sorted(stage.placement()):
            for dst in sorted(assignment):
                if src != dst:
                    self.wan_monitor.remeasure(src, dst, now_s)
        reason = f"{action.reason} [retry: re-measured bandwidth]"
        if isinstance(action, ScaleAction):
            return ScaleAction(
                stage=action.stage,
                reason=reason,
                target_parallelism=sum(assignment.values()),
                new_assignment=assignment,
                cross_site=any(
                    site not in stage.placement() for site in assignment
                ),
            )
        return ReassignAction(
            stage=action.stage, reason=reason, new_assignment=assignment
        )

    def _scale_out_fallback(
        self, action: ReassignAction | ScaleAction
    ) -> ScaleAction | None:
        """Scale out one task further so state partitioning shrinks each
        transfer slice (Section 8.7.2's mitigation for heavy migrations)."""
        stage = self.runtime.plan.stages.get(action.stage)
        if stage is None or not stage.splittable:
            return None
        base = self._viable_assignment(stage, action.new_assignment)
        if base is None:
            return None
        failed = {s.name for s in self.runtime.topology if s.failed}
        current = stage.placement()
        available = self.runtime.topology.available_slots()
        extra_site = None
        for site in sorted(set(available) - failed):
            room = (
                available.get(site, 0)
                + current.get(site, 0)
                - base.get(site, 0)
            )
            if room <= 0:
                continue
            if extra_site is None:
                extra_site = site
        if extra_site is None:
            return None
        target = dict(base)
        target[extra_site] = target.get(extra_site, 0) + 1
        return ScaleAction(
            stage=action.stage,
            reason=(
                f"{action.reason} [fallback: scale-out partitions state]"
            ),
            target_parallelism=sum(target.values()),
            new_assignment=target,
            cross_site=any(site not in current for site in target),
        )

    def _abandon_state_fallback(
        self, action: ReassignAction | ScaleAction
    ) -> ReassignAction | None:
        """Last resort: move the execution and restart state empty
        (Section 8.7.1's NONE - loses accuracy, never availability)."""
        stage = self.runtime.plan.stages.get(action.stage)
        if stage is None:
            return None
        assignment = self._viable_assignment(stage, action.new_assignment)
        if assignment is None:
            return None
        return ReassignAction(
            stage=action.stage,
            reason=f"{action.reason} [fallback: abandon state]",
            new_assignment=assignment,
        )

    def _execute_reassign(
        self, action: ReassignAction, now_s: float
    ) -> AdaptationRecord:
        stage = self._stage(action.stage)
        moved_out = {
            site: self.state_store.mb_at_site(stage.name, site)
            for site, count in stage.placement().items()
            if action.new_assignment.get(site, 0) < count
        }
        diff = self.scheduler.apply_assignment(stage, action.new_assignment)
        migration = self._migrate_for_diff(stage, moved_out, diff)
        if migration.transfers:
            self._notify_point(
                AdaptationPoint.MIGRATION_IN_FLIGHT, stage.name, now_s
            )
        transition = (
            self.config.reconfig_base_overhead_s
            + migration.transition_s
            + self._extra_transition_s
        )
        self.runtime.suspend_stage(stage.name, now_s + transition)
        self._notify_point(
            AdaptationPoint.BETWEEN_SUSPEND_RESUME, stage.name, now_s
        )
        self._apply_migration_side_effects(stage, migration)
        self._rehome_orphans(stage, diff)
        return AdaptationRecord(
            t_s=now_s,
            kind=ActionKind.REASSIGN,
            stage=stage.name,
            reason=action.reason,
            transition_s=transition,
            migration=migration,
        )

    def _execute_scale(
        self, action: ScaleAction, now_s: float
    ) -> AdaptationRecord:
        stage = self._stage(action.stage)
        before_state = {
            site: self.state_store.mb_at_site(stage.name, site)
            for site in stage.placement()
        }
        diff = self.scheduler.apply_assignment(stage, action.new_assignment)
        migration: MigrationPlan | None = None
        transition = (
            self.config.reconfig_base_overhead_s + self._extra_transition_s
        )
        if stage.stateful and self.state_store.total_mb(stage.name) > 0:
            migration = self._rebalance_state(stage, before_state)
            if migration.transfers:
                self._notify_point(
                    AdaptationPoint.MIGRATION_IN_FLIGHT, stage.name, now_s
                )
            transition += migration.transition_s
        elif stage.stateful:
            task_sites = [t.site for t in stage.tasks]
            self.state_store.rebalance(stage.name, task_sites)
        self._rehome_orphans(stage, diff)
        self.runtime.suspend_stage(stage.name, now_s + transition)
        self._notify_point(
            AdaptationPoint.BETWEEN_SUSPEND_RESUME, stage.name, now_s
        )
        return AdaptationRecord(
            t_s=now_s,
            kind=action.kind,
            stage=stage.name,
            reason=action.reason,
            transition_s=transition,
            migration=migration,
        )

    def _execute_scale_down(
        self, action: ScaleDownAction, now_s: float
    ) -> AdaptationRecord:
        stage = self._stage(action.stage)
        partition_mb = (
            self.state_store.mb_at_site(stage.name, action.site)
            if stage.stateful
            else 0.0
        )
        self.scheduler.remove_task(stage, action.site)
        # Relay the terminated task's queued input and state to the
        # best-connected surviving site.
        survivors = stage.sites()
        target = max(
            survivors,
            key=lambda s: self.wan_monitor.bandwidth_mbps(action.site, s)
            if s != action.site
            else float("inf"),
        )
        transition = 0.0
        migration = None
        if stage.stateful and partition_mb > 0 and action.site not in survivors:
            migration = plan_migration(
                stage.name,
                {action.site: partition_mb},
                [target],
                self.migration_bandwidth,
                strategy=self._current_strategy(),
                rng=self._rng,
            )
            transition = migration.transition_s
            self.state_lost_mb += migration.state_abandoned_mb
        if stage.stateful:
            self.state_store.rebalance(
                stage.name, [t.site for t in stage.tasks]
            )
        if action.site not in survivors:
            self.runtime.relay_queue(stage.name, action.site, target)
            self.runtime.redirect_flows(stage.name, action.site, target)
        if transition > 0:
            self.runtime.suspend_stage(stage.name, now_s + transition)
        return AdaptationRecord(
            t_s=now_s,
            kind=ActionKind.SCALE_DOWN,
            stage=stage.name,
            reason=action.reason,
            transition_s=transition,
            migration=migration,
        )

    def _execute_replan(
        self, action: ReplanAction, now_s: float
    ) -> AdaptationRecord:
        estimate = action.estimate
        old_plan = self.runtime.plan
        new_plan = estimate.physical
        assignments = dict(estimate.assignments)

        # Keep surviving stateful stages where they run today, so their
        # state never crosses the WAN during the switch - but only when the
        # stage really is the *same* sub-plan (matching signature) and its
        # state outlives windows.  Window-bounded stages re-initialize at
        # the boundary (Section 4.3), so they follow the new plan's
        # placement, which was chosen for the new flow pattern.
        surviving = set(new_plan.stages) & set(old_plan.stages)
        for name in surviving:
            old_stage = old_plan.stage(name)
            if not (old_stage.stateful and old_stage.parallelism > 0):
                continue
            if old_stage.window_s > 0:
                continue
            head = old_stage.head.name
            if head not in new_plan.logical.operators:
                continue
            old_sig = old_plan.logical.subplan_signature(head)
            new_sig = new_plan.logical.subplan_signature(head)
            if old_sig == new_sig:
                assignments[name] = dict(old_stage.placement())

        self.scheduler.undeploy(old_plan)
        self.scheduler.deploy(new_plan, assignments)

        # State: drop removed stages (the safety check guarantees they were
        # stateless or window-bounded), carry surviving ones (placement was
        # pinned above, so no WAN transfer), initialize new stateful stages.
        for name in self.state_store.stage_names():
            if name not in new_plan.stages:
                self.state_store.drop_stage(name)
        for stage in new_plan.topological_stages():
            if not stage.stateful:
                continue
            task_sites = [t.site for t in stage.tasks]
            if stage.name in surviving and self.state_store.total_mb(stage.name) > 0:
                self.state_store.rebalance(stage.name, task_sites)
            else:
                self.state_store.initialize_stage(
                    stage.name, stage.state_mb, task_sites
                )

        self.runtime.replace_plan(new_plan)
        transition = self.config.replan_deploy_overhead_s
        for stage in new_plan.topological_stages():
            if stage.is_source:
                continue
            # Queued/in-flight events destined to sites the new deployment
            # does not cover follow the execution to its new sites.
            self.runtime.rehome_to_placement(
                stage.name, self.wan_monitor.bandwidth_mbps
            )
            self.runtime.suspend_stage(stage.name, now_s + transition)
        return AdaptationRecord(
            t_s=now_s,
            kind=ActionKind.REPLAN,
            stage=action.stage,
            reason=action.reason,
            transition_s=transition,
            migration=None,
        )

    # ------------------------------------------------------------------ #
    # State-migration helpers
    # ------------------------------------------------------------------ #

    def _migrate_for_diff(
        self,
        stage: Stage,
        moved_out: dict[str, float],
        diff: AssignmentDiff,
    ) -> MigrationPlan:
        moved_in: list[str] = []
        for site, count in diff.added.items():
            moved_in.extend([site] * count)
        moved_out = {s: mb for s, mb in moved_out.items() if s in diff.removed}
        plan = plan_migration(
            stage.name,
            moved_out,
            moved_in,
            self.migration_bandwidth,
            strategy=self._current_strategy(),
            rng=self._rng,
        )
        return plan

    def _apply_migration_side_effects(
        self, stage: Stage, migration: MigrationPlan
    ) -> None:
        for transfer in migration.transfers:
            self.checkpoints.forget_site(stage.name, transfer.from_site)
        if stage.stateful:
            task_sites = [t.site for t in stage.tasks]
            if migration.state_abandoned_mb > 0:
                # No Migrate: abandoned partitions restart empty (Section
                # 8.7.1 - "ignoring the state will result in a loss of
                # accuracy in the result").
                self.state_lost_mb += migration.state_abandoned_mb
                remaining = max(
                    0.0,
                    self.state_store.total_mb(stage.name)
                    - migration.state_abandoned_mb,
                )
                self.state_store.initialize_stage(
                    stage.name, remaining, task_sites
                )
            else:
                # The store mirrors deployment: balanced partition per task.
                self.state_store.rebalance(stage.name, task_sites)

    def _rebalance_state(
        self, stage: Stage, before_state: dict[str, float]
    ) -> MigrationPlan:
        """State re-partitioning after a parallelism change (Section 8.7.2).

        The balanced layout assigns ``|state| / p'`` per task; sites with
        excess (including sites the stage vacated entirely) ship slices to
        sites with deficits.  Because the per-slice size shrinks as ``p'``
        grows, scale-out bounds the slowest transfer - the reason state
        partitioning mitigates the adaptation overhead for large states.
        """
        total_mb = self.state_store.total_mb(stage.name)
        placement = stage.placement()
        p_new = max(1, sum(placement.values()))
        share_mb = total_mb / p_new
        target = {site: share_mb * count for site, count in placement.items()}
        strategy = self._current_strategy()
        if strategy is MigrationStrategy.NONE:
            # State partitioning always ships the state: abandoning it here
            # would silently turn a stateful scale into data loss.
            strategy = MigrationStrategy.WASP
        plan = rebalance_transfers(
            stage.name,
            before_state,
            target,
            self.migration_bandwidth,
            strategy=strategy,
            rng=self._rng,
        )
        self.state_store.rebalance(stage.name, [t.site for t in stage.tasks])
        return plan

    def _rehome_orphans(self, stage: Stage, diff: AssignmentDiff) -> None:
        """Move queued input and in-flight traffic off sites the stage no
        longer runs at, onto the best-connected surviving site."""
        survivors = set(stage.placement())
        if not survivors:
            return
        for site in sorted(diff.removed):
            if site in survivors:
                continue
            target = max(
                sorted(survivors),
                key=lambda s: self.wan_monitor.bandwidth_mbps(site, s),
            )
            self.runtime.move_task_queue(stage.name, site, target)
            self.runtime.redirect_flows(stage.name, site, target)

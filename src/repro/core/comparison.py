"""Table 2: qualitative comparison between adaptation techniques.

The table is part of the paper's contribution (Section 6.1) - it is what the
decision tree in Figure 6 is derived from - so the reproduction encodes it
as structured data with a renderer, and the policy tests assert that the
implemented behaviour matches the table's claims (e.g. re-planning is the
only technique whose applicability is query-specific; only data degradation
reduces result quality).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Applicability(enum.Enum):
    GENERAL = "General"
    QUERY_SPECIFIC = "Query-specific"


class Granularity(enum.Enum):
    STAGE = "Stage"
    QUERY = "Query"
    POLICY_DEPENDENT = "Policy-dependent"


class Overhead(enum.Enum):
    LOW = "Low"
    HIGH = "High"


@dataclass(frozen=True)
class TechniqueProfile:
    """One row of Table 2."""

    technique: str
    adaptation: str
    applicability: Applicability
    granularity: Granularity
    overhead: Overhead
    quality_reduction: bool
    note: str = ""


TABLE_2: tuple[TechniqueProfile, ...] = (
    TechniqueProfile(
        technique="Task Re-Assignment",
        adaptation="Task deployment",
        applicability=Applicability.GENERAL,
        granularity=Granularity.STAGE,
        overhead=Overhead.LOW,
        quality_reduction=False,
        note="Excludes the cross-site state migration overhead.",
    ),
    TechniqueProfile(
        technique="Operator Scaling",
        adaptation="Operator parallelism",
        applicability=Applicability.GENERAL,
        granularity=Granularity.STAGE,
        overhead=Overhead.LOW,
        quality_reduction=False,
        note="Excludes the cross-site state migration overhead.",
    ),
    TechniqueProfile(
        technique="Query Re-Planning",
        adaptation="Query execution plan",
        applicability=Applicability.QUERY_SPECIFIC,
        granularity=Granularity.QUERY,
        overhead=Overhead.HIGH,
        quality_reduction=False,
        note="Quality reduced only if state is incompatible with or ignored "
        "by the new plan.",
    ),
    TechniqueProfile(
        technique="Data Degradation",
        adaptation="Degradation policy",
        applicability=Applicability.QUERY_SPECIFIC,
        granularity=Granularity.POLICY_DEPENDENT,
        overhead=Overhead.LOW,
        quality_reduction=True,
    ),
)


def profile(technique: str) -> TechniqueProfile:
    """Look up a row by technique name (case-insensitive prefix match)."""
    needle = technique.lower()
    for row in TABLE_2:
        if row.technique.lower().startswith(needle):
            return row
    raise KeyError(f"no technique matching {technique!r}")


def render_table() -> str:
    """Render Table 2 as aligned text (the benchmark harness prints this)."""
    headers = (
        "Technique",
        "Adaptation",
        "Applicability",
        "Granularity",
        "Overhead",
        "Quality reduction",
    )
    rows = [
        (
            p.technique,
            p.adaptation,
            p.applicability.value,
            p.granularity.value,
            p.overhead.value,
            "Yes" if p.quality_reduction else "No",
        )
        for p in TABLE_2
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

"""Transactional execution support for adaptation actions.

WASP's whole premise is surviving wide-area dynamics, yet a dynamic can
strike *while an adaptation is being applied*: a destination site dies with
a state transfer in flight, a link collapses between suspend and resume.  A
non-transactional controller then leaves a stage half-reassigned with
stranded state.  This module provides the rollback unit: a snapshot of every
piece of system state the controller's apply path can mutate -

* slot accounting (the topology's per-site used counters),
* task lists (which stage runs where),
* the engine's mutable execution state (queues, suspensions, plan),
* the state store's partitions,
* the checkpoint coordinator's records, and
* the controller's loss counter.

Environment facts - failures, slot revocations, bandwidth factors,
straggler slowdowns - are deliberately *not* captured: a rollback restores
the deployment, never the world that broke it.

The controller drives the transaction through the standard lifecycle:
validate -> snapshot -> apply -> verify -> commit, rolling back to the
snapshot on any :class:`~repro.errors.WaspError` and falling through the
Figure-6 technique chain (retry with re-measured bandwidth, scale-out with
state partitioning, abandon state).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.checkpoint import CheckpointRecord
    from ..engine.physical import Task
    from ..engine.runtime import RuntimeSnapshot
    from ..engine.state import StatePartition
    from .controller import ReconfigurationManager


class AdaptationPoint(enum.Enum):
    """Interleaving points the transactional executor exposes to chaos.

    The chaos injector can register a hook on the controller and fire
    faults exactly here - the interleavings the paper's dynamics make
    likely but ad-hoc testing never provokes.
    """

    #: A migration plan with at least one transfer has been computed and is
    #: conceptually crossing the WAN.
    MIGRATION_IN_FLIGHT = "migration-in-flight"
    #: The stage has been suspended for the transition and has not resumed.
    BETWEEN_SUSPEND_RESUME = "between-suspend-resume"


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of the technique chain, for experiment assertions."""

    t_s: float
    stage: str
    attempt: str  # "primary", "retry-1", "scale-out", "abandon-state"
    outcome: str  # "committed", "rolled-back", "abandoned"
    detail: str = ""


@dataclass
class AdaptationTransaction:
    """Snapshot of everything one adaptation action may mutate."""

    used_slots: dict[str, int]
    stage_tasks: dict[str, list["Task"]]
    runtime: "RuntimeSnapshot"
    state_partitions: dict[str, list["StatePartition"]]
    checkpoint_records: dict[tuple[str, str], "CheckpointRecord"]
    state_lost_mb: float

    @classmethod
    def begin(
        cls,
        manager: "ReconfigurationManager",
        *,
        now_s: float | None = None,
        stage: str | None = None,
    ) -> "AdaptationTransaction":
        """Capture the snapshot (and announce it on the manager's event bus
        when one is listening - ``now_s``/``stage`` exist only for that)."""
        obs = getattr(manager, "obs", None)
        if obs and now_s is not None:
            from ..obs.events import Snapshot

            obs.emit(Snapshot(now_s, stage=stage or ""))
        plan = manager.runtime.plan
        return cls(
            used_slots=manager.runtime.topology.slot_snapshot(),
            stage_tasks={
                name: list(stage.tasks) for name, stage in plan.stages.items()
            },
            runtime=manager.runtime.mutation_snapshot(),
            state_partitions=manager.state_store.snapshot(),
            checkpoint_records=manager.checkpoints.snapshot_records(),
            state_lost_mb=manager.state_lost_mb,
        )

    def rollback(self, manager: "ReconfigurationManager") -> None:
        """Restore every captured mutation (idempotent)."""
        abandoned_plan = manager.runtime.plan
        manager.runtime.restore_mutation_snapshot(self.runtime)
        plan = manager.runtime.plan
        if abandoned_plan is not plan:
            # A re-plan deployed tasks onto the replacement plan's stages;
            # clear them so the replanner may propose that plan again later
            # (deploy refuses stages that already carry tasks).
            for stage in abandoned_plan.stages.values():
                stage.clear_tasks()
        for name, tasks in self.stage_tasks.items():
            if name in plan.stages:
                plan.stages[name].set_tasks(list(tasks))
        manager.runtime.topology.restore_slot_snapshot(self.used_slots)
        manager.state_store.restore(self.state_partitions)
        manager.checkpoints.restore_records(self.checkpoint_records)
        manager.state_lost_mb = self.state_lost_mb

"""Adaptation actions (Section 4).

The policy (:mod:`repro.core.policy`) emits these as *decisions*; the
Reconfiguration Manager (:mod:`repro.core.controller`) executes them against
the scheduler, state store and engine.  Keeping decisions as plain data makes
the policy unit-testable without a running engine and gives experiments an
audit trail of what was adapted and why.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..planner.cost import DeploymentEstimate


class ActionKind(enum.Enum):
    REASSIGN = "re-assign"
    SCALE_UP = "scale up"
    SCALE_OUT = "scale out"
    SCALE_DOWN = "scale down"
    REPLAN = "re-plan"


@dataclass(frozen=True)
class Action:
    """Base class: every action names the stage it targets and its cause."""

    kind: ActionKind
    stage: str
    reason: str


@dataclass(frozen=True)
class ReassignAction(Action):
    """Move the stage's tasks to a new placement at fixed parallelism."""

    new_assignment: dict[str, int] = field(default_factory=dict)

    def __init__(self, stage: str, reason: str, new_assignment: dict[str, int]):
        object.__setattr__(self, "kind", ActionKind.REASSIGN)
        object.__setattr__(self, "stage", stage)
        object.__setattr__(self, "reason", reason)
        object.__setattr__(self, "new_assignment", dict(new_assignment))


@dataclass(frozen=True)
class ScaleAction(Action):
    """Increase parallelism; ``assignment`` is the complete new placement."""

    target_parallelism: int = 0
    new_assignment: dict[str, int] = field(default_factory=dict)

    def __init__(
        self,
        stage: str,
        reason: str,
        target_parallelism: int,
        new_assignment: dict[str, int],
        *,
        cross_site: bool,
    ):
        kind = ActionKind.SCALE_OUT if cross_site else ActionKind.SCALE_UP
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "stage", stage)
        object.__setattr__(self, "reason", reason)
        object.__setattr__(self, "target_parallelism", target_parallelism)
        object.__setattr__(self, "new_assignment", dict(new_assignment))


@dataclass(frozen=True)
class ScaleDownAction(Action):
    """Remove one task at ``site`` (gradual scale-down, Section 4.2)."""

    site: str = ""

    def __init__(self, stage: str, reason: str, site: str):
        object.__setattr__(self, "kind", ActionKind.SCALE_DOWN)
        object.__setattr__(self, "stage", stage)
        object.__setattr__(self, "reason", reason)
        object.__setattr__(self, "site", site)


@dataclass(frozen=True)
class ReplanAction(Action):
    """Switch the query to a re-optimized logical + physical plan."""

    estimate: DeploymentEstimate = None  # type: ignore[assignment]

    def __init__(self, stage: str, reason: str, estimate: DeploymentEstimate):
        object.__setattr__(self, "kind", ActionKind.REPLAN)
        object.__setattr__(self, "stage", stage)
        object.__setattr__(self, "reason", reason)
        object.__setattr__(self, "estimate", estimate)

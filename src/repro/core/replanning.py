"""Query re-planning with state preservation (Section 4.3).

The re-planner owns the query's alternative logical plans (produced by
:mod:`repro.planner.enumerate` at query-registration time) and, when asked,
proposes the best *state-safe* alternative: only candidates whose stateful
sub-plans are common with the running plan are considered, because only
those can restore the old execution's state (windowed operators are exempt -
their short, finite state is re-initialized at the window boundary anyway).

A proposal is only returned when it beats the current plan's estimated cost
by a hysteresis margin, so the controller never flip-flops between plans of
near-equal cost under measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import WaspConfig
from ..engine.logical import LogicalPlan, can_replace_preserving_state
from ..engine.physical import PhysicalPlan
from ..errors import InfeasiblePlacementError
from ..planner.cost import (
    DeploymentEstimate,
    choose_best_deployment,
    estimate_deployment,
)
from ..planner.placement import NetworkView

#: A candidate must be at least this much cheaper than the incumbent.
HYSTERESIS = 0.9


@dataclass(frozen=True)
class ReplanProposal:
    """A vetted alternative deployment."""

    estimate: DeploymentEstimate
    surviving_stages: frozenset[str]
    current_score_ms: float

    @property
    def new_plan_name(self) -> str:
        return self.estimate.logical.name


class Replanner:
    """Evaluates a query's plan variants against the running plan."""

    def __init__(
        self,
        variants: list[LogicalPlan],
        config: WaspConfig | None = None,
    ) -> None:
        self._variants = list(variants)
        self._config = config or WaspConfig.paper_defaults()

    @property
    def variants(self) -> list[LogicalPlan]:
        return list(self._variants)

    def safe_candidates(self, current: LogicalPlan) -> list[LogicalPlan]:
        """Variants that can replace ``current`` without losing state."""
        return [
            v
            for v in self._variants
            if v.name != current.name
            and can_replace_preserving_state(current, v)
        ]

    def propose(
        self,
        current_logical: LogicalPlan,
        current_physical: PhysicalPlan,
        network: NetworkView,
        available_slots: dict[str, int],
        source_generation_eps: dict[str, float],
        *,
        require_improvement: bool = True,
    ) -> ReplanProposal | None:
        """Best state-safe alternative, or None when nothing qualifies.

        ``available_slots`` should already include the slots the current
        deployment would release - re-planning replaces the entire
        execution, so the candidate may reuse them.
        """
        candidates = self.safe_candidates(current_logical)
        if not candidates:
            return None

        # Shared stages keep their live parallelism; new stages start at the
        # initial parallelism (1 in the paper's configuration).
        parallelism = {
            name: stage.parallelism
            for name, stage in current_physical.stages.items()
            if stage.parallelism > 0
        }

        current_estimate = estimate_deployment(
            current_logical,
            network,
            available_slots,
            source_generation_eps,
            alpha=self._config.alpha,
            parallelism=parallelism,
        )
        current_score = current_estimate.delay_score_ms

        try:
            best = choose_best_deployment(
                candidates,
                network,
                available_slots,
                source_generation_eps,
                alpha=self._config.alpha,
                parallelism=parallelism,
            )
        except InfeasiblePlacementError:
            return None

        if require_improvement and current_estimate.feasible:
            if not best.delay_score_ms < current_score * HYSTERESIS:
                return None

        surviving = frozenset(
            set(best.physical.stages) & set(current_physical.stages)
        )
        return ReplanProposal(
            estimate=best,
            surviving_stages=surviving,
            current_score_ms=current_score,
        )

"""Execution-health diagnosis (Sections 3.2 and 3.3).

An execution is *healthy* when it is unconstrained by its allocated
resources: every task processes its input as it arrives
(``lambda_P = lambda_I``) and no network queue builds between an operator
and its upstreams (``lambda_I ~= sum_u lambda_O[u]``).  When the conditions
fail, the diagnosis distinguishes:

* **compute-bound** - the stage's expected input exceeds its processing
  capacity, or its input queues grew over the window while its tasks ran at
  full utilization;
* **network-bound** - sender-side WAN queues feeding the stage grew, or an
  expected flow exceeds the measured link bandwidth headroom;
* **wasteful** - utilization is persistently low with empty queues and
  parallelism above the minimum (a scale-down candidate, Section 4.2).

Transient fluctuations are ignored (Section 7): backlog must exceed what the
stage can absorb within ``backlog_health_s`` before a bottleneck is declared.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import WaspConfig
from ..engine.metrics import MetricsWindow, StageMetrics
from ..engine.physical import PhysicalPlan, Stage
from ..engine.runtime import MBIT_BYTES
from .estimator import StageEstimate


class Health(enum.Enum):
    HEALTHY = "healthy"
    COMPUTE_BOUND = "compute_bound"
    NETWORK_BOUND = "network_bound"
    WASTEFUL = "wasteful"


@dataclass(frozen=True)
class LinkPressure:
    """One constrained inbound link of a stage."""

    src_site: str
    dst_site: str
    backlog_events: float
    backlog_growth: float
    expected_flow_eps: float
    capacity_eps: float

    @property
    def deficit_eps(self) -> float:
        return max(0.0, self.expected_flow_eps - self.capacity_eps)


@dataclass(frozen=True)
class StageDiagnosis:
    """Health verdict and supporting evidence for one stage."""

    stage: str
    health: Health
    expected_input_eps: float
    processing_capacity_eps: float
    utilization: float
    input_backlog: float
    input_backlog_growth: float
    constrained_links: tuple[LinkPressure, ...] = ()
    #: Sites whose tasks cannot keep up with their balanced input share
    #: (stragglers / weak slots): their per-site queue backs up even when
    #: the stage's aggregate capacity looks sufficient.
    slow_sites: tuple[str, ...] = ()

    @property
    def compute_deficit_eps(self) -> float:
        return max(
            0.0, self.expected_input_eps - self.processing_capacity_eps
        )


class Diagnoser:
    """Applies the Section-3.2 health conditions to a metrics window."""

    def __init__(self, config: WaspConfig | None = None) -> None:
        self._config = config or WaspConfig.paper_defaults()

    def diagnose(
        self,
        plan: PhysicalPlan,
        window: MetricsWindow,
        estimates: dict[str, StageEstimate],
        network: "NetworkView",
    ) -> dict[str, StageDiagnosis]:
        """Classify every non-source stage (sources are external, pinned)."""
        results: dict[str, StageDiagnosis] = {}
        for stage in plan.topological_stages():
            if stage.is_source:
                continue
            metrics = window.stages.get(stage.name)
            estimate = estimates.get(
                stage.name,
                StageEstimate(stage.name, 0.0, 0.0),
            )
            results[stage.name] = self._diagnose_stage(
                stage, metrics, estimate, network
            )
        return results

    # ------------------------------------------------------------------ #

    def _stage_capacity_eps(self, stage: Stage, network: "NetworkView") -> float:
        total = 0.0
        for task in stage.tasks:
            total += network.site_proc_rate_eps(task.site) / stage.cost
        return total

    def _diagnose_stage(
        self,
        stage: Stage,
        metrics: StageMetrics | None,
        estimate: StageEstimate,
        network: "NetworkView",
    ) -> StageDiagnosis:
        config = self._config
        capacity = self._stage_capacity_eps(stage, network)
        utilization = metrics.utilization if metrics else 0.0
        input_backlog = metrics.input_backlog if metrics else 0.0
        backlog_growth = metrics.input_backlog_growth if metrics else 0.0

        # Backlog tolerable within the health window?  (Transient spikes
        # are ignored, Section 7.)
        backlog_delay_s = input_backlog / capacity if capacity > 0 else (
            float("inf") if input_backlog > 0 else 0.0
        )

        constrained = self._constrained_links(stage, metrics, estimate, network)
        slow_sites = self._slow_sites(stage, metrics, estimate, network)

        compute_bound = (
            estimate.input_eps > capacity * 1.001
            or bool(slow_sites)
            or (
                backlog_delay_s > config.backlog_health_s
                and utilization > 0.9
            )
            or (backlog_growth > 0 and utilization > 0.95 and
                backlog_delay_s > config.backlog_health_s / 2)
        )
        network_bound = bool(constrained)

        if compute_bound and not network_bound:
            health = Health.COMPUTE_BOUND
        elif network_bound and not compute_bound:
            health = Health.NETWORK_BOUND
        elif compute_bound and network_bound:
            # Both constrained: the network starves or floods the operator;
            # treat as network-bound first (scale-out also adds compute).
            health = Health.NETWORK_BOUND
        elif (
            utilization < config.waste_utilization
            and input_backlog <= capacity * config.backlog_health_s
            and backlog_growth <= 0
            and stage.parallelism > 1
            and self._over_provisioned(stage, estimate, network)
        ):
            health = Health.WASTEFUL
        else:
            health = Health.HEALTHY

        return StageDiagnosis(
            stage=stage.name,
            health=health,
            expected_input_eps=estimate.input_eps,
            processing_capacity_eps=capacity,
            utilization=utilization,
            input_backlog=input_backlog,
            input_backlog_growth=backlog_growth,
            constrained_links=tuple(constrained),
            slow_sites=slow_sites,
        )

    def _slow_sites(
        self,
        stage: Stage,
        metrics: StageMetrics | None,
        estimate: StageEstimate,
        network: "NetworkView",
    ) -> tuple[str, ...]:
        """Sites whose tasks cannot drain their balanced input share.

        Balanced partitioning routes ``lambda_hat_I / p`` to every task, so
        a site with ``n`` tasks receives ``n * share`` but only processes
        ``n * effective_rate / cost``: when the share exceeds the rate, the
        per-site queue grows without bound - the straggler signature.  A
        standing per-site backlog beyond the site's health window is the
        observational confirmation.
        """
        if metrics is None:
            return ()
        placement = stage.placement()
        p = sum(placement.values())
        if p == 0:
            return ()
        share_eps = estimate.input_eps / p
        slow: list[str] = []
        for site in sorted(placement):
            rate_eps = network.site_proc_rate_eps(site) / stage.cost
            backlog = metrics.input_backlog_by_site.get(site, 0.0)
            drain_slack = max(rate_eps, 1.0) * self._config.backlog_health_s
            model_slow = share_eps > rate_eps * 1.001 and share_eps > 0
            observed_slow = backlog > drain_slack
            if model_slow or observed_slow:
                slow.append(site)
        # Only meaningful as an imbalance signal when some site is fine.
        if len(slow) == len(placement):
            return tuple(slow) if share_eps > 0 else ()
        return tuple(slow)

    def _constrained_links(
        self,
        stage: Stage,
        metrics: StageMetrics | None,
        estimate: StageEstimate,
        network: "NetworkView",
    ) -> list[LinkPressure]:
        """Inbound links whose WAN queue is growing beyond the health slack."""
        if metrics is None:
            return []
        links: list[LinkPressure] = []
        for (src_site, dst_site), backlog in sorted(metrics.net_backlog.items()):
            growth = metrics.net_backlog_growth.get((src_site, dst_site), 0.0)
            inflow = metrics.net_inflow.get((src_site, dst_site), 0.0)
            # Event size on this link is the upstream's output size; the
            # inflow rate approximates the achieved link throughput.
            bandwidth_mbps = network.bandwidth_mbps(src_site, dst_site)
            # Use the dominant upstream's event size for conversion.
            event_bytes = self._inbound_event_bytes(stage, network)
            capacity_eps = bandwidth_mbps * MBIT_BYTES / event_bytes
            drain_slack = capacity_eps * self._config.backlog_health_s
            growing = growth > 1e-6 and backlog > drain_slack * 0.1
            # A standing queue that exceeds what the link can drain within
            # the health window is just as constrained as a growing one -
            # it keeps emitting stale events until acted upon.
            standing = backlog > drain_slack
            if growing or standing:
                links.append(
                    LinkPressure(
                        src_site=src_site,
                        dst_site=dst_site,
                        backlog_events=backlog,
                        backlog_growth=growth,
                        expected_flow_eps=inflow + growth / max(
                            1.0, self._config.monitor_interval_s
                        ),
                        capacity_eps=capacity_eps,
                    )
                )
        return links

    def _inbound_event_bytes(self, stage: Stage, network: "NetworkView") -> float:
        """Representative event size for traffic entering ``stage``."""
        plan = network.plan_for(stage.name)
        if plan is None:
            return stage.head.event_bytes
        upstream = plan.upstream_stages(stage.name)
        if not upstream:
            return stage.head.event_bytes
        return max(u.output_event_bytes for u in upstream)

    def _over_provisioned(
        self, stage: Stage, estimate: StageEstimate, network: "NetworkView"
    ) -> bool:
        """Would one fewer task still leave capacity headroom?

        The 0.8 factor mirrors the placement headroom alpha: the expected
        rate must fit within the reduced capacity with slack, or removing a
        task would immediately re-create the bottleneck it was added for.
        """
        if stage.parallelism <= 1:
            return False
        per_task = [
            network.site_proc_rate_eps(t.site) / stage.cost
            for t in stage.tasks
        ]
        smallest = min(per_task)
        remaining = sum(per_task) - smallest
        return estimate.input_eps < remaining * 0.8


class NetworkView:
    """What diagnosis needs from the environment.

    A thin adapter over the WAN monitor + topology + plan; implemented by
    the controller so the diagnoser stays free of wiring concerns.
    """

    def bandwidth_mbps(self, src: str, dst: str) -> float:  # pragma: no cover
        raise NotImplementedError

    def site_proc_rate_eps(self, site: str) -> float:  # pragma: no cover
        raise NotImplementedError

    def plan_for(self, stage_name: str) -> PhysicalPlan | None:  # pragma: no cover
        raise NotImplementedError

"""Long-term dynamics: periodic background re-planning (Section 6.2).

Short-term dynamics are handled reactively by the Figure-6 policy.  But
some dynamics "usually follow a specific pattern and can be predicted"
(e.g. the daily workload shift of Section 2.2): for those, WASP
"periodically re-evaluat[es] the query plan in the background".

:class:`LongTermPlanner` implements that background loop: on its own (much
slower) cadence it forecasts the source rates a horizon ahead, asks the
re-planner whether a different plan would serve the *forecast* better than
the current one, and - only when the improvement clears the hysteresis -
executes the switch proactively, before the shift hits.

Forecasting itself is explicitly out of the paper's scope ("How to
accurately model/profile the dynamics itself is out of the scope of this
work"), so two simple forecasters are provided:

* :class:`OracleForecaster` - asks the workload model directly (exact for
  the synthetic diurnal trace; stands in for an offline profile);
* :class:`SeasonalNaiveForecaster` - predicts the rate observed one season
  ago, learning the pattern purely from the metric monitor's observations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..engine.runtime import WorkloadModel
from ..errors import ConfigurationError
from .actions import ReplanAction
from .controller import AdaptationRecord, ReconfigurationManager


class Forecaster:
    """Protocol: predict per-source generation rates at a future time."""

    def observe(self, t_s: float, rates: dict[str, float]) -> None:
        """Feed an observation (optional for model-based forecasters)."""

    def forecast(self, t_s: float) -> dict[str, float]:  # pragma: no cover
        raise NotImplementedError


class OracleForecaster(Forecaster):
    """Reads the workload model directly (a perfect offline profile)."""

    def __init__(self, workload: WorkloadModel, source_names: list[str]):
        self._workload = workload
        self._sources = list(source_names)

    def forecast(self, t_s: float) -> dict[str, float]:
        return {
            name: self._workload.generation_eps(name, t_s)
            for name in self._sources
        }


class SeasonalNaiveForecaster(Forecaster):
    """Predicts the rate observed one season (period) earlier.

    The classic baseline for periodic signals: with a 24 h (or compressed)
    diurnal cycle, tomorrow-at-noon looks like today-at-noon.  Falls back
    to the most recent observation while less than one full season of
    history exists.
    """

    def __init__(self, season_s: float) -> None:
        if season_s <= 0:
            raise ConfigurationError(f"season_s must be > 0, got {season_s}")
        self._season_s = float(season_s)
        self._times: list[float] = []
        self._rates: list[dict[str, float]] = []

    def observe(self, t_s: float, rates: dict[str, float]) -> None:
        if self._times and t_s <= self._times[-1]:
            return
        self._times.append(t_s)
        self._rates.append(dict(rates))

    def forecast(self, t_s: float) -> dict[str, float]:
        if not self._times:
            return {}
        target = t_s - self._season_s
        if target < self._times[0]:
            return dict(self._rates[-1])  # no full season yet
        idx = bisect.bisect_right(self._times, target) - 1
        return dict(self._rates[max(0, idx)])


@dataclass(frozen=True)
class LongTermConfig:
    """Cadence of the background loop.

    Attributes:
        period_s: How often the background re-evaluation runs.  Much slower
            than the reactive monitor (Section 6.2's loop exists so the
            reactive path is not bothered with predictable shifts).
        horizon_s: How far ahead to forecast - long enough to cover the
            re-planning overhead, short enough to stay accurate.
    """

    period_s: float = 600.0
    horizon_s: float = 120.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("period_s must be > 0")
        if self.horizon_s < 0:
            raise ConfigurationError("horizon_s must be >= 0")


class LongTermPlanner:
    """Background plan re-evaluation against forecast workload."""

    def __init__(
        self,
        manager: ReconfigurationManager,
        forecaster: Forecaster,
        config: LongTermConfig | None = None,
    ) -> None:
        self.manager = manager
        self.forecaster = forecaster
        self.config = config or LongTermConfig()
        self.history: list[AdaptationRecord] = []

    def observe_window(self, t_s: float, rates: dict[str, float]) -> None:
        """Feed observed source rates (call once per monitoring window)."""
        self.forecaster.observe(t_s, rates)

    def background_round(self, now_s: float) -> AdaptationRecord | None:
        """One background iteration: forecast, evaluate, maybe re-plan.

        Uses the same hysteresis as reactive re-planning, so near-equal
        plans never flip; a proactive switch only happens when the forecast
        clearly favours an alternative.
        """
        manager = self.manager
        if manager.replanner is None:
            return None
        forecast = self.forecaster.forecast(now_s + self.config.horizon_s)
        if not forecast:
            return None
        plan = manager.runtime.plan
        # Skip while any stage is mid-transition: the reactive loop owns it.
        if any(
            manager.runtime.is_suspended(s.name)
            for s in plan.topological_stages()
        ):
            return None
        slots = dict(manager.runtime.topology.available_slots())
        for stage in plan.topological_stages():
            for site, count in stage.placement().items():
                slots[site] = slots.get(site, 0) + count
        manager.wan_monitor.refresh(now_s)
        proposal = manager.replanner.propose(
            plan.logical,
            plan,
            manager.wan_monitor,
            slots,
            forecast,
        )
        if proposal is None:
            return None
        action = ReplanAction(
            proposal.estimate.logical.name,
            "long-term dynamics: proactive re-plan for forecast workload "
            f"(score {proposal.estimate.delay_score_ms:.1f}ms vs "
            f"{proposal.current_score_ms:.1f}ms)",
            proposal.estimate,
        )
        record = manager._execute(action, now_s)
        manager.history.append(record)
        self.history.append(record)
        if manager.recorder is not None:
            manager.recorder.record_adaptation(
                now_s, "re-plan (long-term)", record.reason
            )
        return record

"""WASP's contribution: monitoring, diagnosis, policy, adaptation."""

from .actions import (
    Action,
    ActionKind,
    ReassignAction,
    ReplanAction,
    ScaleAction,
    ScaleDownAction,
)
from .comparison import TABLE_2, TechniqueProfile, render_table
from .controller import AdaptationRecord, ReconfigurationManager
from .diagnosis import Diagnoser, Health, LinkPressure, StageDiagnosis
from .estimator import StageEstimate, WorkloadEstimator
from .longterm import (
    LongTermConfig,
    LongTermPlanner,
    OracleForecaster,
    SeasonalNaiveForecaster,
)
from .migration import (
    MigrationPlan,
    MigrationStrategy,
    Transfer,
    estimate_transition_s,
    plan_migration,
)
from .policy import AdaptationPolicy, PolicyContext, PolicyMode
from .replanning import Replanner, ReplanProposal
from .scaling import (
    ScaleDecision,
    can_scale_down,
    compute_scale_out_target,
    compute_scale_up_target,
    pick_scale_down_site,
)

__all__ = [
    "Action",
    "ActionKind",
    "AdaptationPolicy",
    "AdaptationRecord",
    "Diagnoser",
    "Health",
    "LinkPressure",
    "LongTermConfig",
    "LongTermPlanner",
    "MigrationPlan",
    "OracleForecaster",
    "SeasonalNaiveForecaster",
    "MigrationStrategy",
    "PolicyContext",
    "PolicyMode",
    "ReassignAction",
    "ReconfigurationManager",
    "ReplanAction",
    "ReplanProposal",
    "Replanner",
    "ScaleAction",
    "ScaleDecision",
    "ScaleDownAction",
    "StageDiagnosis",
    "StageEstimate",
    "TABLE_2",
    "TechniqueProfile",
    "Transfer",
    "WorkloadEstimator",
    "can_scale_down",
    "compute_scale_out_target",
    "compute_scale_up_target",
    "estimate_transition_s",
    "pick_scale_down_site",
    "plan_migration",
    "render_table",
]

"""WASP's adaptation policy - the Figure 6 decision tree (Section 6.2).

For every unhealthy stage the policy decides *which* adaptation to take:

* **compute bottleneck** -> scale **up** the operator, preferring slots at
  the sites it already runs on (remote slots only when local ones run out,
  since they add WAN delay);
* **network bottleneck, stateless query** -> re-optimize the whole pipeline
  (re-plan): nothing needs migrating, so the most powerful adaptation is
  also cheap;
* **network bottleneck, stateful query** -> try **task re-assignment** at
  the current parallelism first; when no placement exists, the estimated
  migration overhead exceeds ``t_max``, or the operator cannot be split,
  fall back to **scale-out** (which also partitions the state, shrinking
  the slowest transfer); when the parallelism would exceed ``p_max`` times
  the initial value, prefer **re-planning** if a state-safe variant exists;
* **wasteful stage** -> **scale down** one task per round (Section 4.2).

The policy is pure decision logic: it never mutates the deployment.  Action
subsets (used by the Section 8.5 baselines) are expressed through
:class:`PolicyMode`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..config import WaspConfig
from ..engine.physical import PhysicalPlan, Stage
from ..errors import InfeasiblePlacementError
from ..planner.placement import (
    DownstreamDemand,
    PlacementProblem,
    UpstreamFlow,
    solve_placement,
)
from .actions import Action, ReassignAction, ReplanAction, ScaleAction, ScaleDownAction
from .diagnosis import Health, StageDiagnosis
from .estimator import StageEstimate, WorkloadEstimator
from .migration import estimate_transition_s
from .replanning import Replanner
from .scaling import (
    can_scale_down,
    compute_scale_out_target,
    compute_scale_up_target,
    pick_scale_down_site,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.events import EventBus


@dataclass(frozen=True)
class PolicyMode:
    """Which adaptation techniques are enabled (Section 8.5 baselines).

    WASP enables everything; ``Re-assign`` only re-assignment; ``Scale``
    re-assignment + scaling; ``Re-plan`` only re-planning.
    """

    allow_reassign: bool = True
    allow_scale: bool = True
    allow_replan: bool = True

    @classmethod
    def wasp(cls) -> "PolicyMode":
        return cls()

    @classmethod
    def reassign_only(cls) -> "PolicyMode":
        return cls(allow_reassign=True, allow_scale=False, allow_replan=False)

    @classmethod
    def scale_only(cls) -> "PolicyMode":
        return cls(allow_reassign=True, allow_scale=True, allow_replan=False)

    @classmethod
    def replan_only(cls) -> "PolicyMode":
        return cls(allow_reassign=False, allow_scale=False, allow_replan=True)


@dataclass
class PolicyContext:
    """Everything one adaptation round knows."""

    plan: PhysicalPlan
    diagnoses: dict[str, StageDiagnosis]
    estimates: dict[str, StageEstimate]
    network: "PolicyNetworkView"
    available_slots: dict[str, int]
    state_mb_at: "StateLookup"
    source_generation_eps: dict[str, float]
    config: WaspConfig
    replanner: Replanner | None = None
    mode: PolicyMode = field(default_factory=PolicyMode.wasp)
    #: Bandwidth lookup for *bulk state transfers* (may include relay
    #: routing); defaults to the network view's direct lookup.
    migration_bandwidth: "Callable[[str, str], float] | None" = None
    #: Simulated time of the round (stamped on emitted ``decide`` events).
    now_s: float = 0.0

    def migration_bw(self, src: str, dst: str) -> float:
        if self.migration_bandwidth is not None:
            return self.migration_bandwidth(src, dst)
        return self.network.bandwidth_mbps(src, dst)


class PolicyNetworkView:
    """bandwidth_mbps / latency_ms protocol (the WAN monitor satisfies it)."""

    def bandwidth_mbps(self, src: str, dst: str) -> float:  # pragma: no cover
        raise NotImplementedError

    def latency_ms(self, src: str, dst: str) -> float:  # pragma: no cover
        raise NotImplementedError


class StateLookup:
    """Callable protocol: (stage, site) -> resident state MB."""

    def __call__(self, stage: str, site: str) -> float:  # pragma: no cover
        raise NotImplementedError


class AdaptationPolicy:
    """Turns diagnoses into adaptation actions per Figure 6."""

    def __init__(
        self,
        estimator: WorkloadEstimator | None = None,
        *,
        obs: "EventBus | None" = None,
    ) -> None:
        self._estimator = estimator or WorkloadEstimator()
        #: Optional event bus; ``decide`` events are emitted only when a
        #: sink is attached (the bus is truthy).
        self.obs = obs

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def decide(self, ctx: PolicyContext) -> list[Action]:
        actions: list[Action] = []
        replan: ReplanAction | None = None
        # Decisions within one round consume from the same slot pool: work
        # on a copy and debit it per action, so two stages cannot book the
        # same free slot.
        ctx.available_slots = dict(ctx.available_slots)
        for stage in ctx.plan.topological_stages():
            if stage.is_source:
                continue
            diagnosis = ctx.diagnoses.get(stage.name)
            if diagnosis is None:
                continue
            action = self._decide_stage(stage, diagnosis, ctx)
            if action is None:
                continue
            if isinstance(action, ReplanAction):
                # Re-planning replaces the entire execution; it subsumes any
                # per-stage action this round.
                replan = replan or action
            else:
                actions.append(action)
                self._debit_slots(stage, action, ctx)
        decided = [replan] if replan is not None else actions
        if self.obs:
            from ..obs.events import Decide

            for action in decided:
                self.obs.emit(
                    Decide(
                        ctx.now_s,
                        stage=action.stage,
                        action=action.kind.value,
                        reason=action.reason,
                    )
                )
        return decided

    @staticmethod
    def _debit_slots(
        stage: Stage, action: Action, ctx: PolicyContext
    ) -> None:
        """Reserve the slots an action will claim when executed.

        Freed slots (re-assignment away from a site, scale-down) are *not*
        credited back within the round - they only become usable once the
        action has executed, and being conservative here just defers any
        follow-up to the next monitoring interval.
        """
        current = stage.placement()
        if isinstance(action, (ReassignAction, ScaleAction)):
            for site, count in action.new_assignment.items():
                extra = count - current.get(site, 0)
                if extra > 0:
                    ctx.available_slots[site] = (
                        ctx.available_slots.get(site, 0) - extra
                    )

    # ------------------------------------------------------------------ #
    # Per-stage decision (Figure 6)
    # ------------------------------------------------------------------ #

    def _decide_stage(
        self, stage: Stage, diagnosis: StageDiagnosis, ctx: PolicyContext
    ) -> Action | None:
        if diagnosis.health is Health.HEALTHY:
            return None
        if diagnosis.health is Health.WASTEFUL:
            return self._decide_scale_down(stage, diagnosis, ctx)
        if diagnosis.health is Health.COMPUTE_BOUND:
            return self._decide_compute_bound(stage, diagnosis, ctx)
        return self._decide_network_bound(stage, diagnosis, ctx)

    def _decide_compute_bound(
        self, stage: Stage, diagnosis: StageDiagnosis, ctx: PolicyContext
    ) -> Action | None:
        if not ctx.mode.allow_scale or not stage.splittable:
            # A non-splittable operator (counter/sink) cannot gain tasks
            # without a plan change; or scaling is disabled for this
            # baseline - fall back to what is allowed.
            replan = self._try_replan(stage, "compute bottleneck", ctx)
            if replan is not None:
                return replan
            if ctx.mode.allow_reassign:
                return self._try_reassign(stage, diagnosis, ctx)
            return None
        if diagnosis.slow_sites and ctx.mode.allow_reassign:
            # Straggler signature: aggregate capacity may look fine, but the
            # slow sites cannot drain their balanced share.  Moving the work
            # off them (the compute-aware placement excludes them) beats
            # adding tasks elsewhere, which would leave the slow-site queue
            # in place.
            reassign = self._try_reassign(stage, diagnosis, ctx)
            if reassign is not None:
                return reassign
        decision = compute_scale_up_target(stage, diagnosis, ctx.config)
        if decision.delta <= 0:
            return None
        assignment = self._scale_up_assignment(stage, decision.delta, ctx)
        if assignment is None:
            replan = self._try_replan(
                stage, "compute bottleneck, no slots", ctx
            )
            return replan
        cross_site = any(
            site not in stage.placement() for site in assignment
        )
        target = dict(stage.placement())
        for site, extra in assignment.items():
            target[site] = target.get(site, 0) + extra
        return ScaleAction(
            stage.name,
            f"compute bottleneck: expected {diagnosis.expected_input_eps:.0f}"
            f" eps > capacity {diagnosis.processing_capacity_eps:.0f} eps",
            decision.target,
            target,
            cross_site=cross_site,
        )

    def _decide_network_bound(
        self, stage: Stage, diagnosis: StageDiagnosis, ctx: PolicyContext
    ) -> Action | None:
        stateless_query = not any(
            s.stateful for s in ctx.plan.topological_stages()
        )
        if stateless_query and ctx.mode.allow_replan:
            replan = self._try_replan(
                stage, "network bottleneck, stateless query", ctx
            )
            if replan is not None:
                return replan
            # No better plan exists; re-optimize physically instead.

        if ctx.mode.allow_reassign:
            reassign = self._try_reassign(stage, diagnosis, ctx)
            if reassign is not None:
                return reassign

        if ctx.mode.allow_scale and stage.splittable:
            scale = self._try_scale_out(stage, diagnosis, ctx)
            if scale is not None:
                return scale

        if ctx.mode.allow_replan:
            replan = self._try_replan(
                stage, "network bottleneck, no physical adaptation", ctx
            )
            if replan is None and not (
                ctx.mode.allow_reassign or ctx.mode.allow_scale
            ):
                # Re-planning is the only technique available (the Re-plan
                # baseline of Section 8.5): re-evaluate the joint
                # logical+physical deployment even without a hysteresis win,
                # since no other action can resolve the bottleneck.
                replan = self._try_replan(
                    stage,
                    "network bottleneck, forced re-evaluation",
                    ctx,
                    require_improvement=False,
                )
            return replan
        return None

    def _decide_scale_down(
        self, stage: Stage, diagnosis: StageDiagnosis, ctx: PolicyContext
    ) -> Action | None:
        if not ctx.mode.allow_scale:
            return None
        if not can_scale_down(stage, diagnosis, ctx.config):
            return None
        site = pick_scale_down_site(stage)
        reduced = dict(stage.placement())
        reduced[site] -= 1
        if reduced[site] == 0:
            del reduced[site]
        if not self._assignment_feasible(stage, reduced, ctx):
            # Section 4.2: the bandwidth to/from every remaining site must
            # still cover the relayed input/output after the scaling.
            return None
        if stage.stateful and site not in reduced:
            # Merging the vacated partition back must itself be cheap:
            # scale-down is an optional optimization, never worth a long
            # suspension (t_adapt <= t_max applies to every state move).
            partition_mb = ctx.state_mb_at(stage.name, site)
            merge_s = estimate_transition_s(
                stage.name,
                {site: partition_mb},
                sorted(reduced),
                ctx.migration_bw,
            )
            if merge_s > ctx.config.t_max_s:
                return None
        return ScaleDownAction(
            stage.name,
            f"wasteful: utilization {diagnosis.utilization:.2f} < "
            f"{ctx.config.waste_utilization}",
            site,
        )

    def _assignment_feasible(
        self, stage: Stage, assignment: dict[str, int], ctx: PolicyContext
    ) -> bool:
        """Do the bandwidth caps admit this exact placement?"""
        from ..planner.placement import per_site_capacity

        p = sum(assignment.values())
        if p == 0:
            return False
        problem = self._placement_problem(
            stage, ctx, p, reuse_own_slots=True
        )
        return all(
            per_site_capacity(site, problem, ctx.network) >= count
            for site, count in assignment.items()
        )

    # ------------------------------------------------------------------ #
    # Action builders
    # ------------------------------------------------------------------ #

    def _migration_capped_slots(
        self,
        stage: Stage,
        ctx: PolicyContext,
        slots: dict[str, int],
        parallelism: int,
    ) -> dict[str, int]:
        """Zero out candidate sites whose state-slice transfer would blow
        the t_max budget (Section 6.2: t_adapt <= t_max governs every
        adaptation that moves state, including the slices a scale-out
        partitions off)."""
        if not stage.stateful or parallelism <= 0:
            return slots
        current = stage.placement()
        total_mb = sum(
            ctx.state_mb_at(stage.name, site) for site in current
        )
        if total_mb <= 0:
            return slots
        slice_mb = total_mb / parallelism
        state_sites = [
            site
            for site in current
            if ctx.state_mb_at(stage.name, site) > 0
        ] or sorted(current)
        capped = dict(slots)
        for site in slots:
            if site in current:
                continue  # existing sites split locally where possible
            best_bw = max(
                (
                    ctx.migration_bw(src, site)
                    for src in state_sites
                    if src != site
                ),
                default=0.0,
            )
            transfer_s = (
                slice_mb * 8.0 / best_bw if best_bw > 0 else math.inf
            )
            if transfer_s > ctx.config.t_max_s:
                capped[site] = 0
        return capped

    def _placement_problem(
        self,
        stage: Stage,
        ctx: PolicyContext,
        parallelism: int,
        *,
        reuse_own_slots: bool,
        cap_by_migration: bool = False,
    ) -> PlacementProblem:
        flows = self._estimator.upstream_flows_eps(
            ctx.plan, stage, ctx.estimates
        )
        upstream = [
            UpstreamFlow(
                site=site,
                eps=eps,
                event_bytes=ctx.plan.stages[up_name].output_event_bytes,
            )
            for (up_name, site), eps in sorted(flows.items())
        ]
        estimate = ctx.estimates.get(stage.name)
        out_eps = estimate.output_eps if estimate else 0.0
        downstream: list[DownstreamDemand] = []
        for down in ctx.plan.downstream_stages(stage.name):
            placement = down.placement()
            total = sum(placement.values())
            if total == 0:
                continue
            for site, count in sorted(placement.items()):
                downstream.append(
                    DownstreamDemand(
                        site=site,
                        fraction=count / total,
                        eps=out_eps,
                        event_bytes=stage.output_event_bytes,
                    )
                )
        slots = dict(ctx.available_slots)
        if reuse_own_slots:
            for site, count in stage.placement().items():
                slots[site] = slots.get(site, 0) + count
        if cap_by_migration:
            slots = self._migration_capped_slots(
                stage, ctx, slots, parallelism
            )
        # Per-task compute demand under balanced partitioning: sites whose
        # (possibly straggling) slots cannot keep up host no tasks.
        per_task_demand = 0.0
        site_rates: dict[str, float] | None = None
        rate_lookup = getattr(ctx.network, "site_proc_rate_eps", None)
        if estimate is not None and callable(rate_lookup):
            per_task_demand = estimate.input_eps / max(1, parallelism)
            site_rates = {
                site: rate_lookup(site) / stage.cost for site in slots
            }
            if not any(
                rate >= per_task_demand for rate in site_rates.values()
            ):
                # No site can host a full share: the demand is globally
                # unsatisfiable at this parallelism, so the check would
                # only forbid partially-helpful placements.  Keep it only
                # as a *relative* (straggler) filter.
                per_task_demand = 0.0
        return PlacementProblem(
            parallelism=parallelism,
            upstream=upstream,
            downstream=downstream,
            available_slots=slots,
            alpha=ctx.config.alpha,
            per_task_demand_eps=per_task_demand,
            site_task_rate_eps=site_rates,
        )

    def _try_reassign(
        self, stage: Stage, diagnosis: StageDiagnosis, ctx: PolicyContext
    ) -> ReassignAction | None:
        """Re-solve placement at fixed parallelism; accept if it moves the
        constrained traffic and the migration overhead is tolerable."""
        p = stage.parallelism
        if p == 0:
            return None
        problem = self._placement_problem(
            stage, ctx, p, reuse_own_slots=True
        )
        try:
            solution = solve_placement(problem, ctx.network)
        except InfeasiblePlacementError:
            return None
        if solution.assignment == stage.placement():
            return None
        moved_out = {
            site: ctx.state_mb_at(stage.name, site)
            for site, count in stage.placement().items()
            if solution.assignment.get(site, 0) < count
        }
        moved_in: list[str] = []
        for site, count in solution.assignment.items():
            extra = count - stage.placement().get(site, 0)
            moved_in.extend([site] * max(0, extra))
        t_adapt = estimate_transition_s(
            stage.name, moved_out, moved_in, ctx.migration_bw
        )
        if t_adapt > ctx.config.t_max_s:
            return None
        return ReassignAction(
            stage.name,
            f"network bottleneck on "
            f"{[(l.src_site, l.dst_site) for l in diagnosis.constrained_links]}",
            solution.assignment,
        )

    def _try_scale_out(
        self, stage: Stage, diagnosis: StageDiagnosis, ctx: PolicyContext
    ) -> Action | None:
        decision = compute_scale_out_target(stage, diagnosis, ctx.config)
        target_p = max(decision.target, stage.parallelism + 1)
        if target_p > ctx.config.p_max * max(1, stage.initial_parallelism):
            replan = self._try_replan(
                stage,
                f"parallelism {target_p} would exceed p_max x initial",
                ctx,
            )
            if replan is not None:
                return replan
            target_p = min(
                target_p,
                ctx.config.p_max * max(1, stage.initial_parallelism),
            )
            if target_p <= stage.parallelism:
                return None
        solution = None
        reason_suffix = ""
        for cap_migration in (True, False):
            # First pass: only destinations whose state slice arrives within
            # t_max.  Second pass (last resort): accept a long migration -
            # still better than unbounded queue growth when nothing else is
            # available.
            try:
                solution = solve_placement(
                    self._placement_problem(
                        stage, ctx, target_p, reuse_own_slots=True,
                        cap_by_migration=cap_migration,
                    ),
                    ctx.network,
                )
                break
            except InfeasiblePlacementError:
                pass
            # Try the largest feasible parallelism above the current one.
            for p in range(target_p - 1, stage.parallelism, -1):
                try:
                    solution = solve_placement(
                        self._placement_problem(
                            stage, ctx, p, reuse_own_slots=True,
                            cap_by_migration=cap_migration,
                        ),
                        ctx.network,
                    )
                    target_p = p
                    break
                except InfeasiblePlacementError:
                    continue
            if solution is not None:
                break
            reason_suffix = " (migration budget waived: no fast destination)"
        if solution is None:
            return None
        cross_site = set(solution.assignment) - set(stage.placement())
        return ScaleAction(
            stage.name,
            "network bottleneck: scale out to spread load over "
            f"{len(solution.assignment)} sites{reason_suffix}",
            target_p,
            solution.assignment,
            cross_site=bool(cross_site),
        )

    def _scale_up_assignment(
        self, stage: Stage, extra: int, ctx: PolicyContext
    ) -> dict[str, int] | None:
        """Slots for ``extra`` new tasks: local sites first, remote after.

        Returns the *delta* assignment, or None when no slots exist at all.
        """
        remaining = extra
        delta: dict[str, int] = {}
        # Local first: sites already hosting the stage.
        for site in sorted(stage.placement()):
            free = ctx.available_slots.get(site, 0) - delta.get(site, 0)
            take = min(free, remaining)
            if take > 0:
                delta[site] = delta.get(site, 0) + take
                remaining -= take
            if remaining == 0:
                return delta
        # Remote: closest sites by latency to the stage's primary site,
        # excluding (for stateful stages) destinations whose state slice
        # could not arrive within the t_max budget.
        anchor = next(iter(sorted(stage.placement())), None)
        remote_slots = {
            s: n
            for s, n in ctx.available_slots.items()
            if s not in stage.placement()
        }
        remote_slots = self._migration_capped_slots(
            stage, ctx, remote_slots, stage.parallelism + extra
        )
        candidates = sorted(
            (s for s, n in remote_slots.items() if n > 0),
            key=lambda s: (
                ctx.network.latency_ms(anchor, s) if anchor else 0.0,
                s,
            ),
        )
        for site in candidates:
            free = ctx.available_slots.get(site, 0) - delta.get(site, 0)
            take = min(free, remaining)
            if take > 0:
                delta[site] = delta.get(site, 0) + take
                remaining -= take
            if remaining == 0:
                return delta
        return delta if delta else None

    def _try_replan(
        self,
        stage: Stage,
        reason: str,
        ctx: PolicyContext,
        *,
        require_improvement: bool = True,
    ) -> ReplanAction | None:
        if ctx.replanner is None or not ctx.mode.allow_replan:
            return None
        # Re-planning may reuse every slot the current deployment holds.
        slots = dict(ctx.available_slots)
        for s in ctx.plan.topological_stages():
            for site, count in s.placement().items():
                slots[site] = slots.get(site, 0) + count
        proposal = ctx.replanner.propose(
            ctx.plan.logical,
            ctx.plan,
            ctx.network,
            slots,
            ctx.source_generation_eps,
            require_improvement=require_improvement,
        )
        if proposal is None:
            return None
        return ReplanAction(
            stage.name,
            f"{reason}; switch to {proposal.new_plan_name} "
            f"(score {proposal.estimate.delay_score_ms:.1f}ms vs "
            f"{proposal.current_score_ms:.1f}ms)",
            proposal.estimate,
        )

"""Operator-scaling factor computation (Section 4.2).

WASP computes the new parallelism of a bottleneck operator from the ratio of
the actual (expected) input rate to the observed processing rate, following
DS2's rate-based model:

    p' = ceil( lambda_hat_I / lambda_P * p )

which is the minimum parallelism that resolves the bottleneck.  For network
bottlenecks, the scale-out factor is "the ratio between the stream rate that
cannot be handled over the bandwidth availability" - each additional task
placed behind a different link absorbs that link's worth of traffic.

Scale-down is deliberately gradual: one task per iteration, and only when
every remaining task would have both the compute and bandwidth headroom to
absorb the relayed load (the paper prioritizes performance stability over
resource utilization).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import WaspConfig
from ..engine.physical import Stage
from .diagnosis import StageDiagnosis


@dataclass(frozen=True)
class ScaleDecision:
    """A computed parallelism change for one stage."""

    stage: str
    current: int
    target: int

    @property
    def delta(self) -> int:
        return self.target - self.current


def compute_scale_up_target(
    stage: Stage,
    diagnosis: StageDiagnosis,
    config: WaspConfig | None = None,
) -> ScaleDecision:
    """DS2-style minimum parallelism for a compute bottleneck.

    ``lambda_P`` is taken as the stage's current processing *capacity* (the
    fluid engine runs tasks at capacity when backlogged, so observed
    lambda_P equals capacity during a bottleneck); using capacity rather
    than a noisy observation makes the target the true minimum.
    """
    config = config or WaspConfig.paper_defaults()
    p = max(1, stage.parallelism)
    capacity = diagnosis.processing_capacity_eps
    if capacity <= 0:
        # No live capacity (e.g. right after failure): size from scratch
        # assuming homogeneous tasks - double until reviewed next round.
        return ScaleDecision(stage.name, p, p * 2)
    # Accumulated backlog (e.g. after a failure, Section 8.6) is treated as
    # extra rate to absorb within one monitoring interval, so recovery
    # provisions enough capacity to drain the queue quickly.
    effective_input = diagnosis.expected_input_eps + (
        diagnosis.input_backlog / config.monitor_interval_s
    )
    ratio = effective_input / capacity
    target = max(p + 1, math.ceil(ratio * p))
    target = min(target, p + config.max_scale_out_per_round)
    return ScaleDecision(stage.name, p, target)


def compute_scale_out_target(
    stage: Stage,
    diagnosis: StageDiagnosis,
    config: WaspConfig | None = None,
) -> ScaleDecision:
    """Additional tasks needed to spread constrained links' excess load.

    For each constrained inbound link, the unhandled stream rate is the
    deficit between the expected flow and the link's capacity; dividing the
    total deficit by the per-link absorbable rate (the link capacity itself,
    since a new task behind a fresh link absorbs up to its share) gives the
    number of extra tasks, which is then re-validated by the placement
    solver.
    """
    config = config or WaspConfig.paper_defaults()
    p = max(1, stage.parallelism)
    if not diagnosis.constrained_links:
        return ScaleDecision(stage.name, p, p)
    extra = 0
    for link in diagnosis.constrained_links:
        if link.capacity_eps <= 0:
            extra += 1
            continue
        # Each new task takes over 1/p' of the flow; approximating with the
        # current per-task share keeps the estimate conservative (>= 1).
        per_task_flow = link.expected_flow_eps / p
        deficit_tasks = math.ceil(
            link.deficit_eps / max(per_task_flow, link.capacity_eps * 0.1)
        )
        extra += max(1, deficit_tasks)
    extra = min(extra, config.max_scale_out_per_round)
    target = p + extra
    # Never target a parallelism below the DS2 compute minimum: a smaller
    # p' cannot process the expected stream at all, so the anti-hoarding
    # cap yields to viability (Section 4.2's "minimum parallelism value
    # that can effectively resolve the bottleneck").
    if diagnosis.processing_capacity_eps > 0:
        per_task_rate = diagnosis.processing_capacity_eps / p
        ds2_minimum = math.ceil(
            diagnosis.expected_input_eps / max(per_task_rate, 1e-9)
        )
        target = max(target, min(ds2_minimum, p + 2 * config.max_scale_out_per_round))
    return ScaleDecision(stage.name, p, target)


def can_scale_down(
    stage: Stage,
    diagnosis: StageDiagnosis,
    config: WaspConfig | None = None,
) -> bool:
    """Safe to remove one task?  (Section 4.2's per-iteration check.)

    The remaining tasks must absorb the relayed stream: expected input must
    fit within the reduced capacity with the waste threshold as headroom,
    and there must be no standing backlog or constrained links.
    """
    config = config or WaspConfig.paper_defaults()
    if stage.parallelism <= 1:
        return False
    if diagnosis.constrained_links:
        return False
    if diagnosis.input_backlog_growth > 0:
        return False
    capacity = diagnosis.processing_capacity_eps
    if capacity <= 0 or stage.parallelism == 0:
        return False
    per_task = capacity / stage.parallelism
    remaining = capacity - per_task
    # 10% headroom above the expected rate so the relayed load does not
    # immediately re-trigger a bottleneck (stability over utilization).
    return diagnosis.expected_input_eps <= remaining * 0.9


def pick_scale_down_site(stage: Stage) -> str:
    """Choose which task to terminate: prefer sites not co-located with the
    rest of the stage (singleton sites), reducing inter-site traffic
    (Section 4.2 prioritizes tasks not co-located with up/downstream)."""
    placement = stage.placement()
    singletons = sorted(s for s, n in placement.items() if n == 1)
    if len(singletons) < len(placement) and singletons:
        return singletons[0]
    # All sites equal: drop from the most-populated site (cheapest relay).
    return max(sorted(placement), key=lambda s: placement[s])

"""Actual-workload estimation (Section 3.3).

Under backpressure, the observed input/output rates of an operator reflect
the *throttled* stream, not the actual workload: a bottleneck operator tells
its upstreams to slow down, so every rate measured downstream of the
bottleneck is a lie.  To size adaptations correctly the controller must
reason about the rates the query *would* see if it were unconstrained, which
are computed recursively from the source generation rates:

    lambda_hat_P = lambda_hat_I = sum_u lambda_hat_O[u]   (or lambda_O[src])
    lambda_hat_O = sigma * lambda_hat_I

Selectivities come from the plan's operator specs, falling back to observed
window selectivity where an operator's spec is unknown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.metrics import MetricsWindow
from ..engine.physical import PhysicalPlan, Stage


@dataclass(frozen=True)
class StageEstimate:
    """Expected (unthrottled) rates for one stage."""

    stage: str
    input_eps: float
    output_eps: float


class WorkloadEstimator:
    """Computes lambda-hat for every stage of a physical plan."""

    def estimate(
        self, plan: PhysicalPlan, window: MetricsWindow
    ) -> dict[str, StageEstimate]:
        """Expected rates per stage from the window's source generation.

        Source generation is observed at the sources themselves (the
        external arrival rate), which backpressure cannot distort - events
        queue at the source site but the generation counter still ticks.
        """
        rates = plan.expected_stage_rates(dict(window.source_generation_eps))
        return {
            name: StageEstimate(
                stage=name,
                input_eps=vals["input"],
                output_eps=vals["output"],
            )
            for name, vals in rates.items()
        }

    def upstream_flows_eps(
        self,
        plan: PhysicalPlan,
        stage: Stage,
        estimates: dict[str, StageEstimate],
    ) -> dict[tuple[str, str], float]:
        """Expected per-(upstream site, event-bytes) traffic into ``stage``.

        Balanced partitioning: each upstream task emits its share of the
        upstream stage's expected output.  Keyed by (site, stage-name) pairs
        flattened to site because event size is per upstream stage; the
        caller converts to placement flows.
        """
        flows: dict[tuple[str, str], float] = {}
        for up in plan.upstream_stages(stage.name):
            est = estimates.get(up.name)
            if est is None:
                continue
            placement = up.placement()
            total = sum(placement.values())
            if total == 0:
                continue
            for site, count in placement.items():
                key = (up.name, site)
                flows[key] = flows.get(key, 0.0) + est.output_eps * count / total
        return flows

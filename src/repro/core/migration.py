"""Network-aware state migration (Section 5) and its baselines (Section 8.7).

Migrating a task between sites requires moving its state partition over the
WAN; the adaptation is only as fast as its *slowest* transfer, because the
stage stays suspended until every moved task can resume.  WASP therefore
chooses the mapping from vacated sites ``(S - S')`` to new sites
``(S' - S)`` by solving

    minmax  |state_s1| / B(s1 -> s2)    over the assignment s1 -> s2

The experiment in Section 8.7.1 compares this against ``random`` (ignore
bandwidth), ``distant`` (adversarial: the slowest mapping) and ``none``
(abandon the state - fast but loses accuracy).  All four strategies are
implemented here behind one interface.

The adaptation-overhead estimate the policy uses (Section 6.2) is the same
quantity: ``t_adapt = t_migrate = max |state| / B``.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import MigrationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.events import EventBus


class MigrationStrategy(enum.Enum):
    """How to map vacated state partitions to destination sites."""

    WASP = "wasp"          # minmax transfer time (network-aware)
    RANDOM = "random"      # bandwidth-agnostic random mapping
    DISTANT = "distant"    # adversarial: maximize the slowest transfer
    NONE = "none"          # abandon state (loses accuracy)


@dataclass(frozen=True)
class Transfer:
    """One state partition's move."""

    stage: str
    from_site: str
    to_site: str
    size_mb: float
    bandwidth_mbps: float

    @property
    def duration_s(self) -> float:
        if self.size_mb <= 0:
            return 0.0
        if self.bandwidth_mbps <= 0:
            return math.inf
        return self.size_mb * 8.0 / self.bandwidth_mbps


def _require_finite(stage: str, transfers: tuple[Transfer, ...]) -> None:
    """Refuse migration plans containing an unfinishable transfer.

    A zero-bandwidth pair (e.g. a collapsed link) would otherwise yield an
    ``inf`` duration that propagates silently into the minmax and the
    policy's overhead estimate; planning an infinite transfer is always a
    bug at the call site, so it surfaces as :class:`MigrationError` and the
    caller can fall back (re-measure, relay, scale out, or abandon state).
    """
    for t in transfers:
        if t.size_mb > 0 and t.bandwidth_mbps <= 0:
            raise MigrationError(
                f"stage {stage!r}: transfer {t.from_site} -> {t.to_site} of "
                f"{t.size_mb:.1f} MB has no bandwidth (link collapsed?)"
            )


@dataclass(frozen=True)
class MigrationPlan:
    """A set of transfers executed in parallel; cost is the slowest one."""

    transfers: tuple[Transfer, ...]
    state_abandoned_mb: float = 0.0

    @property
    def transition_s(self) -> float:
        return max((t.duration_s for t in self.transfers), default=0.0)

    @property
    def total_mb(self) -> float:
        return sum(t.size_mb for t in self.transfers)


class BandwidthLookup:
    """Callable protocol: (src, dst) -> Mbps (monitor-measured)."""

    def __call__(self, src: str, dst: str) -> float:  # pragma: no cover
        raise NotImplementedError


def _assignment_cost(
    sources: list[tuple[str, float]],
    destinations: list[str],
    perm: tuple[int, ...],
    bandwidth: "BandwidthLookup",
) -> float:
    worst = 0.0
    for (src, size_mb), dst_idx in zip(sources, perm):
        dst = destinations[dst_idx]
        bw = bandwidth(src, dst)
        if bw <= 0:
            return math.inf
        worst = max(worst, size_mb * 8.0 / bw)
    return worst


def plan_migration(
    stage: str,
    moved_out: dict[str, float],
    moved_in: list[str],
    bandwidth,
    *,
    strategy: MigrationStrategy = MigrationStrategy.WASP,
    rng: np.random.Generator | None = None,
) -> MigrationPlan:
    """Map vacated partitions to destination sites under a strategy.

    Args:
        stage: Stage whose tasks move (for labelling).
        moved_out: ``{site: state_mb}`` for each vacated partition.
        moved_in: Destination sites (one per incoming task; a site hosting
            k new tasks appears k times).
        bandwidth: ``(src, dst) -> Mbps`` lookup (the WAN monitor's view).
        strategy: Mapping strategy (see :class:`MigrationStrategy`).
        rng: Required for the RANDOM strategy.

    Raises:
        MigrationError: If destination capacity is insufficient or the
            RANDOM strategy is requested without an rng.
    """
    sources = sorted(moved_out.items())
    destinations = sorted(moved_in)
    if strategy is MigrationStrategy.NONE:
        return MigrationPlan(
            transfers=(),
            state_abandoned_mb=sum(moved_out.values()),
        )
    if not sources:
        return MigrationPlan(transfers=())
    if len(destinations) < len(sources):
        raise MigrationError(
            f"stage {stage!r}: {len(sources)} partitions to move but only "
            f"{len(destinations)} destination tasks"
        )

    n = len(sources)
    if strategy is MigrationStrategy.RANDOM:
        if rng is None:
            raise MigrationError("RANDOM migration strategy requires an rng")
        chosen = tuple(rng.permutation(len(destinations))[:n])
    elif strategy in (MigrationStrategy.WASP, MigrationStrategy.DISTANT):
        best_perm: tuple[int, ...] | None = None
        best_cost = math.inf if strategy is MigrationStrategy.WASP else -math.inf
        if n <= 7:
            candidates = itertools.permutations(range(len(destinations)), n)
        else:
            candidates = _greedy_candidates(
                sources, destinations, bandwidth, strategy
            )
        for perm in candidates:
            cost = _assignment_cost(sources, destinations, perm, bandwidth)
            if strategy is MigrationStrategy.WASP and cost < best_cost:
                best_cost, best_perm = cost, perm
            elif strategy is MigrationStrategy.DISTANT and cost > best_cost:
                best_cost, best_perm = cost, perm
        if best_perm is None:
            raise MigrationError(f"stage {stage!r}: no feasible mapping")
        chosen = best_perm
    else:  # pragma: no cover - exhaustive enum
        raise MigrationError(f"unknown strategy {strategy!r}")

    transfers = tuple(
        Transfer(
            stage=stage,
            from_site=src,
            to_site=destinations[dst_idx],
            size_mb=size_mb,
            bandwidth_mbps=bandwidth(src, destinations[dst_idx]),
        )
        for (src, size_mb), dst_idx in zip(sources, chosen)
    )
    _require_finite(stage, transfers)
    return MigrationPlan(transfers=transfers)


def _greedy_candidates(
    sources: list[tuple[str, float]],
    destinations: list[str],
    bandwidth,
    strategy: MigrationStrategy,
) -> list[tuple[int, ...]]:
    """One greedy mapping for large instances: biggest partition first onto
    the fastest (WASP) or slowest (DISTANT) remaining destination."""
    order = sorted(
        range(len(sources)), key=lambda i: -sources[i][1]
    )
    free = set(range(len(destinations)))
    assignment: dict[int, int] = {}
    for i in order:
        src, _ = sources[i]
        ranked = sorted(
            free,
            key=lambda j: bandwidth(src, destinations[j]),
            reverse=(strategy is MigrationStrategy.WASP),
        )
        choice = ranked[0]
        assignment[i] = choice
        free.remove(choice)
    return [tuple(assignment[i] for i in range(len(sources)))]


def rebalance_transfers(
    stage: str,
    before_mb: dict[str, float],
    target_mb: dict[str, float],
    bandwidth,
    *,
    strategy: MigrationStrategy = MigrationStrategy.WASP,
    rng: np.random.Generator | None = None,
) -> MigrationPlan:
    """Transfers that move a stage's state from one layout to another.

    Used by operator scaling (Sections 6.2 and 8.7.2): after a parallelism
    change the balanced layout assigns ``|state| / p'`` per task, so sites
    with excess state ship slices to sites with deficits.  A source may be
    split across several destinations (state partitioning), which is exactly
    how scale-out shrinks the slowest transfer.

    The ``strategy`` orders destination choices: WASP prefers the
    best-bandwidth pairing, DISTANT the worst, RANDOM shuffles, and NONE
    abandons the excess state instead of moving it.
    """
    eps = 1e-9
    excess = {
        s: before_mb.get(s, 0.0) - target_mb.get(s, 0.0)
        for s in set(before_mb) | set(target_mb)
    }
    sources = sorted(
        ((s, v) for s, v in excess.items() if v > eps),
        key=lambda kv: -kv[1],
    )
    deficits = {s: -v for s, v in excess.items() if v < -eps}
    if strategy is MigrationStrategy.NONE:
        return MigrationPlan(
            transfers=(),
            state_abandoned_mb=sum(v for _, v in sources),
        )
    if strategy is MigrationStrategy.RANDOM and rng is None:
        raise MigrationError("RANDOM migration strategy requires an rng")

    transfers: list[Transfer] = []
    for src, remaining in sources:
        while remaining > eps and deficits:
            candidates = sorted(deficits)
            if strategy is MigrationStrategy.RANDOM:
                dst = candidates[int(rng.integers(len(candidates)))]
            elif strategy is MigrationStrategy.DISTANT:
                dst = min(candidates, key=lambda d: (bandwidth(src, d), d))
            else:
                dst = max(candidates, key=lambda d: (bandwidth(src, d), d))
            chunk = min(remaining, deficits[dst])
            transfers.append(
                Transfer(
                    stage=stage,
                    from_site=src,
                    to_site=dst,
                    size_mb=chunk,
                    bandwidth_mbps=bandwidth(src, dst),
                )
            )
            remaining -= chunk
            deficits[dst] -= chunk
            if deficits[dst] <= eps:
                del deficits[dst]
    plan = MigrationPlan(transfers=tuple(transfers))
    _require_finite(stage, plan.transfers)
    return plan


def emit_migration_events(
    obs: "EventBus | None",
    t_s: float,
    stage: str,
    plan: MigrationPlan,
    strategy: MigrationStrategy,
) -> None:
    """Describe a computed migration plan on the event bus.

    Emits a ``migration`` span containing ``migrate.start``, one
    ``migrate.transfer`` per partition move (size, bytes, bandwidth,
    duration) and ``migrate.end`` with the plan's transition cost.  Plans
    with neither transfers nor abandoned state are silent - nothing moved.
    """
    if not obs:
        return
    if not plan.transfers and plan.state_abandoned_mb <= 0:
        return
    from ..obs.events import MigrateEnd, MigrateStart, MigrateTransfer

    with obs.span("migration", t_s):
        obs.emit(
            MigrateStart(
                t_s,
                stage=stage,
                strategy=strategy.value,
                transfers=len(plan.transfers),
                total_mb=plan.total_mb,
            )
        )
        for transfer in plan.transfers:
            obs.emit(
                MigrateTransfer(
                    t_s,
                    stage=stage,
                    from_site=transfer.from_site,
                    to_site=transfer.to_site,
                    size_mb=transfer.size_mb,
                    bytes=transfer.size_mb * 1e6,
                    bandwidth_mbps=transfer.bandwidth_mbps,
                    duration_s=transfer.duration_s,
                )
            )
        obs.emit(
            MigrateEnd(
                t_s,
                stage=stage,
                transition_s=plan.transition_s,
                abandoned_mb=plan.state_abandoned_mb,
            )
        )


def estimate_transition_s(
    stage: str,
    moved_out: dict[str, float],
    moved_in: list[str],
    bandwidth,
) -> float:
    """The policy's ``t_adapt`` estimate (Section 6.2): the WASP-strategy
    migration time, infinite when no destinations can host the state or no
    finite-bandwidth mapping exists (the ``t_adapt <= t_max`` check then
    rejects the adaptation instead of planning an infinite transfer)."""
    if not moved_out:
        return 0.0
    if len(moved_in) < len(moved_out):
        return math.inf
    try:
        plan = plan_migration(
            stage, moved_out, moved_in, bandwidth,
            strategy=MigrationStrategy.WASP,
        )
    except MigrationError:
        return math.inf
    return plan.transition_s

"""Yahoo! Streaming Benchmark workload (Section 8.3).

The YSB Advertising Campaign query monitors advertisements related to
specific campaigns every 10 seconds.  The paper generates the data
synthetically and distributes it evenly across the 8 edge locations, with
the source rate initialized to 10,000 events/second per source; all Redis /
Kafka I/O is replaced with in-memory operations (the paper does the same to
avoid benchmarking the I/O systems).

Events carry {user_id, page_id, ad_id, ad_type, event_type, event_time,
ip_address}; on the wire we model them at 200 B raw, ~80 B after the
filter/projection chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import ShapedWorkload

#: Paper configuration: 10,000 events/second per source at t = 0.
DEFAULT_RATE_EPS = 10_000.0
#: Raw YSB event size on the wire.
RAW_EVENT_BYTES = 200.0
#: Size after filtering to "view" events and projecting {ad_id, event_time}.
PROJECTED_EVENT_BYTES = 80.0
#: Fraction of events surviving the event_type = "view" filter (the YSB
#: generator emits view/click/purchase uniformly; views are 1 in 3).
VIEW_FILTER_SELECTIVITY = 1.0 / 3.0
#: Number of distinct campaigns in the synthetic campaign table.
CAMPAIGN_COUNT = 100
#: Campaign-metadata update stream rate (tiny; it is a dimension table).
CAMPAIGN_UPDATE_EPS = 50.0


@dataclass(frozen=True)
class YsbSpec:
    """Knobs for the YSB workload."""

    rate_eps: float = DEFAULT_RATE_EPS
    campaign_update_eps: float = CAMPAIGN_UPDATE_EPS


class YsbWorkload(ShapedWorkload):
    """Uniform synthetic ad-event streams plus a campaign-update stream.

    The global factor schedule applies to the ad streams only - campaign
    metadata updates are a control-plane trickle that does not follow user
    traffic (and the Section 8.4 rate steps double the *ad* workload).
    """

    def __init__(
        self,
        ad_sources: list[str],
        campaign_source: str,
        spec: YsbSpec | None = None,
    ) -> None:
        spec = spec or YsbSpec()
        rates = {name: spec.rate_eps for name in ad_sources}
        rates[campaign_source] = spec.campaign_update_eps
        super().__init__(rates)
        self._campaign_source = campaign_source

    @property
    def campaign_source(self) -> str:
        return self._campaign_source

    def generation_eps(self, source_stage: str, t_s: float) -> float:
        if source_stage == self._campaign_source:
            return self.base_rate_eps(source_stage)
        return super().generation_eps(source_stage, t_s)

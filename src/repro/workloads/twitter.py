"""Synthetic geo-tagged Twitter trace (Section 8.3).

The paper replays a real Twitter trace whose events are distributed by the
geo-location embedded in each tweet, so the workload covers the *spatial and
temporal* distribution of actual events: Twitter activity is strongly skewed
across regions and day hours carry ~2x the workload of night hours
(Section 2.2, citing the "global Twitter heartbeat" study).

Without the proprietary trace, we synthesize the same two properties:

* **spatial skew** - per-source weights drawn from a Zipf-like power law
  and fixed per run (a seed reproduces the same "geography");
* **diurnal cycle** - a sinusoidal day/night shape per source, phase-shifted
  by the source's home-region longitude so peaks roll around the globe,
  calibrated to the 2x day/night ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .base import ShapedWorkload

#: Tweet size on the wire (truncated JSON with geo tag).
TWEET_EVENT_BYTES = 300.0
#: Size after filtering/extracting (topic, country, timestamp).
TOPIC_EVENT_BYTES = 90.0
#: Fraction of tweets surviving the language/attribute filter.
TWEET_FILTER_SELECTIVITY = 0.3
#: Simulated day length.  Experiments run for ~30 simulated minutes; a real
#: 24 h cycle would look constant, so the synthetic trace compresses the
#: diurnal period (the paper replays its trace "scaled" - Table 3 - which
#: has the same effect of exercising temporal variation within a run).
DEFAULT_DAY_LENGTH_S = 1_200.0
#: Day/night workload ratio (Section 2.2 reports ~2x).
DAY_NIGHT_RATIO = 2.0


@dataclass(frozen=True)
class TwitterSpec:
    """Knobs for the synthetic Twitter workload."""

    mean_rate_eps: float = 10_000.0
    zipf_exponent: float = 0.4
    day_length_s: float = DEFAULT_DAY_LENGTH_S
    day_night_ratio: float = DAY_NIGHT_RATIO

    def __post_init__(self) -> None:
        if self.mean_rate_eps <= 0:
            raise ConfigurationError("mean_rate_eps must be > 0")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be >= 0")
        if self.day_length_s <= 0:
            raise ConfigurationError("day_length_s must be > 0")
        if self.day_night_ratio < 1:
            raise ConfigurationError("day_night_ratio must be >= 1")


class TwitterWorkload(ShapedWorkload):
    """Zipf-skewed, diurnally-shaped tweet streams."""

    def __init__(
        self,
        sources: list[str],
        rng: np.random.Generator,
        spec: TwitterSpec | None = None,
        *,
        phase_by_source: dict[str, float] | None = None,
    ) -> None:
        spec = spec or TwitterSpec()
        self._spec = spec
        n = len(sources)
        if n == 0:
            raise ConfigurationError("TwitterWorkload needs sources")
        # Zipf-like weights over a random permutation of the sources, so the
        # "largest country" is not always the first site alphabetically.
        ranks = rng.permutation(n) + 1
        weights = ranks.astype(float) ** (-spec.zipf_exponent)
        weights /= weights.sum()
        rates = {
            name: spec.mean_rate_eps * n * w
            for name, w in zip(sorted(sources), weights)
        }
        super().__init__(rates)
        # Diurnal phase per source: rolled around the globe.
        if phase_by_source is None:
            phase_by_source = {
                name: i / n for i, name in enumerate(sorted(sources))
            }
        self._phase = dict(phase_by_source)
        # Amplitude from the day/night ratio r: (1+a)/(1-a) = r.
        r = spec.day_night_ratio
        self._amplitude = (r - 1) / (r + 1)

    @property
    def spec(self) -> TwitterSpec:
        return self._spec

    def shape(self, source_stage: str, t_s: float) -> float:
        phase = self._phase.get(source_stage, 0.0)
        angle = 2 * math.pi * (t_s / self._spec.day_length_s + phase)
        return 1.0 + self._amplitude * math.sin(angle)

    def spatial_weights(self) -> dict[str, float]:
        """Fraction of total base load per source (sums to 1)."""
        total = self.total_base_eps()
        return {
            name: self.base_rate_eps(name) / total
            for name in self.source_names
        }

"""Workload models and the Table-3 benchmark queries."""

from .base import ShapedWorkload
from .queries import (
    BenchmarkQuery,
    Table3Row,
    all_queries,
    events_of_interest,
    topk_topics,
    ysb_advertising,
)
from .twitter import TwitterSpec, TwitterWorkload
from .ysb import YsbSpec, YsbWorkload

__all__ = [
    "BenchmarkQuery",
    "ShapedWorkload",
    "Table3Row",
    "TwitterSpec",
    "TwitterWorkload",
    "YsbSpec",
    "YsbWorkload",
    "all_queries",
    "events_of_interest",
    "topk_topics",
    "ysb_advertising",
]

"""Workload model base: per-source rates shaped by schedules.

A workload answers one question for the engine: how many raw events does
each source stage generate per second at time ``t``?  The answer combines

* a **base rate** per source (events/second at factor 1),
* a per-source **shape** (e.g. the Twitter diurnal cycle, Section 2.2),
* a global **factor schedule** installed by the dynamics driver (the
  Section 8.4 step changes, the Section 8.6 random walk).
"""

from __future__ import annotations

from ..engine.runtime import WorkloadModel
from ..errors import ConfigurationError
from ..sim.schedule import Schedule


class ShapedWorkload(WorkloadModel):
    """Base rates x shape(source, t) x global factor schedule."""

    def __init__(
        self,
        base_rates_eps: dict[str, float],
        *,
        factor_schedule: Schedule | None = None,
    ) -> None:
        if not base_rates_eps:
            raise ConfigurationError("workload needs at least one source")
        for name, rate in base_rates_eps.items():
            if rate < 0:
                raise ConfigurationError(
                    f"source {name!r}: base rate must be >= 0, got {rate}"
                )
        self._base_rates = dict(base_rates_eps)
        self._factor_schedule = factor_schedule or Schedule.constant(1.0)

    @property
    def source_names(self) -> list[str]:
        return sorted(self._base_rates)

    @property
    def factor_schedule(self) -> Schedule:
        return self._factor_schedule

    def set_factor_schedule(self, schedule: Schedule) -> None:
        """Install the dynamics driver's workload-factor schedule."""
        self._factor_schedule = schedule

    def base_rate_eps(self, source_stage: str) -> float:
        return self._base_rates.get(source_stage, 0.0)

    def shape(self, source_stage: str, t_s: float) -> float:
        """Per-source multiplicative shape; subclasses override (default 1)."""
        return 1.0

    def generation_eps(self, source_stage: str, t_s: float) -> float:
        base = self._base_rates.get(source_stage)
        if base is None:
            return 0.0
        return (
            base
            * self.shape(source_stage, t_s)
            * self._factor_schedule.factor(t_s)
        )

    def total_base_eps(self) -> float:
        return sum(self._base_rates.values())

"""The three location-based benchmark queries of Table 3 (Section 8.3).

==============  =========  ==========================  ====================
Application     State      Operators                   Dataset
==============  =========  ==========================  ====================
Advertising     <10 MB     filter, map, window, join   YSB, synthetic data
Campaign
Top-K Popular   ~100 MB    filter, map, union,         Twitter trace
Topics                     window, reduce              (scaled)
Events of       0 MB       filter, union, project      Twitter trace
Interest                                               (scaled)
==============  =========  ==========================  ====================

Each query is packaged as a :class:`BenchmarkQuery`: its logical-plan
variants (the primary plan plus the re-planner's alternatives, with shared
sub-plans sharing operator names), its workload model, and the Table-3
metadata the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.logical import LogicalPlan
from ..engine.operators import (
    OperatorSpec,
    filter_,
    join,
    map_,
    project,
    sink,
    source,
    top_k,
    union,
    window_aggregate,
)
from ..errors import ConfigurationError
from ..network.site import SiteKind
from ..network.topology import Topology
from ..network.traces import EC2_REGIONS
from ..planner.enumerate import (
    Branch,
    aggregation_grouping_plans,
    branch_from_ops,
)
from .base import ShapedWorkload
from .twitter import (
    TOPIC_EVENT_BYTES,
    TWEET_EVENT_BYTES,
    TWEET_FILTER_SELECTIVITY,
    TwitterSpec,
    TwitterWorkload,
)
from .ysb import (
    PROJECTED_EVENT_BYTES,
    RAW_EVENT_BYTES,
    VIEW_FILTER_SELECTIVITY,
    YsbSpec,
    YsbWorkload,
)

#: Region -> continent, used to build regional pre-aggregation groupings.
CONTINENT_OF_REGION: dict[str, str] = {
    "oregon": "americas",
    "ohio": "americas",
    "sao-paulo": "americas",
    "ireland": "europe",
    "frankfurt": "europe",
    "seoul": "asia",
    "singapore": "asia",
    "mumbai": "asia",
}


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3."""

    application: str
    state: str
    operators: tuple[str, ...]
    dataset: str


@dataclass(frozen=True)
class BenchmarkQuery:
    """A benchmark query: plan variants + workload + metadata."""

    name: str
    variants: tuple[LogicalPlan, ...]
    workload: ShapedWorkload
    description: str
    table3: Table3Row

    @property
    def primary(self) -> LogicalPlan:
        return self.variants[0]

    @property
    def stateful(self) -> bool:
        return any(
            op.stateful for op in self.primary.topological()
        )


def _edge_sites(topology: Topology) -> list[str]:
    sites = sorted(s.name for s in topology.sites_of_kind(SiteKind.EDGE))
    if not sites:
        raise ConfigurationError("topology has no edge sites")
    return sites


def _continent_groupings(
    branch_keys: list[str], home_region: dict[str, str]
) -> list[list[list[str]]]:
    """Candidate aggregation orderings over branch keys (Section 4.3).

    Four shapes give the re-planner meaningfully different WAN footprints:

    * **direct** - every branch feeds the final aggregation (no partials);
    * **continental** - one partial aggregation per continent;
    * **pairs** - partial aggregations over intra-continent pairs: more,
      smaller convergence points, so placement has more freedom when links
      are constrained;
    * **global** - a single pre-aggregation in front of the final operator.
    """
    direct = [[k] for k in branch_keys]
    by_continent: dict[str, list[str]] = {}
    for key in branch_keys:
        continent = CONTINENT_OF_REGION.get(home_region[key], "other")
        by_continent.setdefault(continent, []).append(key)

    continental: list[list[str]] = []
    pairs: list[list[str]] = []
    for continent in sorted(by_continent):
        members = by_continent[continent]
        if len(members) >= 2:
            continental.append(members)
        else:
            continental.extend([[m] for m in members])
        for i in range(0, len(members) - 1, 2):
            pairs.append(members[i : i + 2])
        if len(members) % 2 == 1:
            pairs.append([members[-1]])

    global_group = [list(branch_keys)]

    groupings: list[list[list[str]]] = [direct]
    for candidate in (continental, pairs, global_group):
        if candidate != direct and candidate not in groupings:
            groupings.append(candidate)
    return groupings


def _edge_home_regions(topology: Topology, edges: list[str]) -> dict[str, str]:
    """Home region per edge site under the paper_testbed convention
    (``edge-i`` homed at the i-th EC2 region)."""
    regions = list(EC2_REGIONS)
    homes: dict[str, str] = {}
    for name in edges:
        try:
            index = int(name.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            index = 0
        homes[name] = regions[index % len(regions)]
    return homes


# --------------------------------------------------------------------------- #
# 1. YSB Advertising Campaign (stateful: windowed join + count)
# --------------------------------------------------------------------------- #


def ysb_advertising(
    topology: Topology, spec: YsbSpec | None = None
) -> BenchmarkQuery:
    """Advertising Campaign: relevant ads per campaign every 10 seconds.

    Ad events stream from every edge site; a campaign-metadata stream lives
    at a data center.  The windowed join correlates ads with campaigns and a
    10-second windowed count aggregates per campaign.  There is no useful
    aggregation re-ordering for a two-input join, so the query has a single
    plan variant - the paper's YSB runs likewise adapt only physically.
    """
    spec = spec or YsbSpec()
    edges = _edge_sites(topology)
    dcs = sorted(s.name for s in topology.sites_of_kind(SiteKind.DATA_CENTER))
    if not dcs:
        raise ConfigurationError("topology has no data-center sites")
    campaign_site = dcs[0]

    operators: list[OperatorSpec] = []
    edges_list: list[tuple[str, str]] = []
    join_name = "join{ads+campaigns}"
    for site in edges:
        src = source(f"ads@{site}", site, event_bytes=RAW_EVENT_BYTES)
        flt = filter_(
            f"view-filter@{site}",
            selectivity=VIEW_FILTER_SELECTIVITY,
            event_bytes=PROJECTED_EVENT_BYTES,
            cost=0.4,
        )
        operators.extend([src, flt])
        edges_list.append((src.name, flt.name))
        edges_list.append((flt.name, join_name))
    campaigns = source(
        "campaigns@dc", campaign_site, event_bytes=120.0
    )
    campaign_map = map_(
        "campaign-map", event_bytes=100.0, cost=0.5
    )
    operators.extend([campaigns, campaign_map])
    edges_list.append((campaigns.name, campaign_map.name))
    edges_list.append((campaign_map.name, join_name))

    ad_join = join(
        join_name,
        selectivity=1.0,
        state_mb=6.0,
        event_bytes=100.0,
        cost=1.0,
        window_s=10.0,
    )
    win = window_aggregate(
        "win-campaign",
        window_s=10.0,
        selectivity=0.001,
        state_mb=3.0,
        keyed_by="campaign_id",
        event_bytes=64.0,
        cost=0.8,
    )
    out = sink("sink")
    operators.extend([ad_join, win, out])
    edges_list.append((join_name, win.name))
    edges_list.append((win.name, out.name))

    plan = LogicalPlan.from_edges("ysb-advertising#0", operators, edges_list)
    workload = YsbWorkload(
        [f"ads@{site}" for site in edges], "campaigns@dc", spec
    )
    return BenchmarkQuery(
        name="ysb-advertising",
        variants=(plan,),
        workload=workload,
        description=(
            "YSB Advertising Campaign: 10 s windowed ad-campaign join and "
            "per-campaign count over 8 edge ad streams."
        ),
        table3=Table3Row(
            application="Advertising Campaign",
            state="<10 MB",
            operators=("filter", "map", "window", "join"),
            dataset="YSB, synthetic data",
        ),
    )


# --------------------------------------------------------------------------- #
# 2. Top-K Popular Topics (stateful: ~100 MB windowed reduce + top-k)
# --------------------------------------------------------------------------- #


def topk_topics(
    topology: Topology,
    rng: np.random.Generator,
    spec: TwitterSpec | None = None,
    *,
    state_mb: float = 90.0,
) -> BenchmarkQuery:
    """Top-10 most popular topics per country over 30-second windows.

    Tweets stream from every edge site (Zipf spatial skew + diurnal cycle).
    Plan variants differ in aggregation ordering (Section 4.3): tweets
    either flow directly into the per-country windowed reduce, or
    pre-aggregate per continent first; the windowed operators' short state
    makes switching safe at window boundaries.
    """
    spec = spec or TwitterSpec()
    edges = _edge_sites(topology)
    homes = _edge_home_regions(topology, edges)

    branches: list[Branch] = []
    for site in edges:
        src = source(f"tweets@{site}", site, event_bytes=TWEET_EVENT_BYTES)
        flt = filter_(
            f"tweet-filter@{site}",
            selectivity=TWEET_FILTER_SELECTIVITY,
            event_bytes=TOPIC_EVENT_BYTES,
            cost=0.4,
        )
        topic_map = map_(
            f"topic-map@{site}", event_bytes=TOPIC_EVENT_BYTES, cost=0.25
        )
        branches.append(
            branch_from_ops(site, [src, flt, topic_map])
        )

    def partial_factory(name: str, members: frozenset[str]) -> OperatorSpec:
        return window_aggregate(
            name,
            window_s=30.0,
            selectivity=0.08,
            state_mb=4.0,
            keyed_by="(country, topic)",
            event_bytes=120.0,
            cost=1.0,
        )

    win_country = window_aggregate(
        "win-country",
        window_s=30.0,
        selectivity=0.02,
        state_mb=state_mb,
        keyed_by="(country, topic)",
        event_bytes=120.0,
        cost=0.9,
    )
    topk = top_k(
        "topk",
        k=10,
        window_s=30.0,
        state_mb=8.0,
        event_bytes=120.0,
        cost=0.5,
    )
    out = sink("sink")

    groupings = _continent_groupings([b.key for b in branches], homes)
    variants = aggregation_grouping_plans(
        "topk-topics",
        branches,
        groupings,
        partial_factory,
        [win_country, topk],
        out,
    )
    workload = TwitterWorkload(
        [f"tweets@{site}" for site in edges], rng, spec
    )
    return BenchmarkQuery(
        name="topk-topics",
        variants=tuple(variants),
        workload=workload,
        description=(
            "Top-K Popular Topic Detection: top-10 topics per country over "
            "30 s windows of a geo-tagged Twitter trace."
        ),
        table3=Table3Row(
            application="Top-K Topics",
            state="~100 MB",
            operators=("filter", "map", "union", "window", "reduce"),
            dataset="Twitter trace (scaled)",
        ),
    )


# --------------------------------------------------------------------------- #
# 3. Events of Interest (stateless)
# --------------------------------------------------------------------------- #


def events_of_interest(
    topology: Topology,
    rng: np.random.Generator,
    spec: TwitterSpec | None = None,
) -> BenchmarkQuery:
    """Attribute filtering of tweets; fully stateless (Table 3 state 0 MB).

    Variants differ in where streams converge: a single global union versus
    per-continent relay unions - the stateless analogue of aggregation
    re-ordering, freely switchable by the re-planner.
    """
    spec = spec or TwitterSpec()
    edges = _edge_sites(topology)
    homes = _edge_home_regions(topology, edges)

    branches: list[Branch] = []
    for site in edges:
        src = source(f"tweets@{site}", site, event_bytes=TWEET_EVENT_BYTES)
        flt = filter_(
            f"interest-filter@{site}", selectivity=0.35, event_bytes=100.0,
            cost=0.4,
        )
        proj = project(f"project@{site}", event_bytes=80.0)
        branches.append(branch_from_ops(site, [src, flt, proj]))

    def relay_factory(name: str, members: frozenset[str]) -> OperatorSpec:
        return union(name, event_bytes=80.0)

    union_all = union("union-all", event_bytes=80.0)
    out = sink("sink")

    groupings = _continent_groupings([b.key for b in branches], homes)
    variants = aggregation_grouping_plans(
        "events-of-interest",
        branches,
        groupings,
        relay_factory,
        [union_all],
        out,
    )
    workload = TwitterWorkload(
        [f"tweets@{site}" for site in edges], rng, spec
    )
    return BenchmarkQuery(
        name="events-of-interest",
        variants=tuple(variants),
        workload=workload,
        description=(
            "Events of Interest: stateless attribute filtering and "
            "projection of a geo-tagged Twitter trace."
        ),
        table3=Table3Row(
            application="Events of Interest",
            state="0 MB",
            operators=("filter", "union", "project"),
            dataset="Twitter trace (scaled)",
        ),
    )


def all_queries(
    topology: Topology, rng: np.random.Generator
) -> list[BenchmarkQuery]:
    """The full Table-3 inventory against one topology."""
    return [
        ysb_advertising(topology),
        topk_topics(topology, rng),
        events_of_interest(topology, rng),
    ]

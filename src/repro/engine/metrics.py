"""Runtime metric monitoring (Sections 3.1 and 3.2).

Each Task Manager's Local Metric Monitor gathers task-level metrics and
reports them to the Global Metric Monitor, which aggregates them per operator
over the past time interval:

    lambda_P = sum_i lambda_P[i]      (processing rate)
    lambda_O = sum_i lambda_O[i]      (output rate)
    sigma    = lambda_O / lambda_P    (selectivity)

In the fluid engine, task-level observations arrive as
:class:`~repro.engine.runtime.TickReport` objects; the
:class:`GlobalMetricMonitor` accumulates them until the controller collects a
:class:`MetricsWindow`, which resets the accumulation (one monitoring
interval, 40 s in the paper's setup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .runtime import TickReport


@dataclass(frozen=True)
class StageMetrics:
    """Aggregated execution metrics for one stage over a window.

    Rates are events/second averaged over the window.  ``backlog_growth``
    values compare the window's last tick against its first, which is what
    distinguishes a standing (already-drained) queue from a growing one.
    """

    stage: str
    lambda_p: float
    lambda_i: float
    lambda_o: float
    selectivity: float
    processed_by_site: dict[str, float]
    capacity_by_site: dict[str, float]
    input_backlog: float
    input_backlog_growth: float
    #: per site: input backlog at window end (imbalance/straggler signal)
    input_backlog_by_site: dict[str, float]
    #: per (src_site, dst_site): inbound WAN backlog at window end
    net_backlog: dict[tuple[str, str], float]
    #: per (src_site, dst_site): backlog growth over the window
    net_backlog_growth: dict[tuple[str, str], float]
    #: per (src_site, dst_site): events/s actually transferred inbound
    net_inflow: dict[tuple[str, str], float]

    @property
    def utilization(self) -> float:
        """Fraction of the stage's processing capacity in use."""
        capacity = sum(self.capacity_by_site.values())
        if capacity <= 0:
            return 0.0
        return self.lambda_p / capacity


@dataclass(frozen=True)
class MetricsWindow:
    """Everything the controller sees at the end of a monitoring interval."""

    t_start_s: float
    t_end_s: float
    offered_eps: float
    source_generation_eps: dict[str, float]
    stages: dict[str, StageMetrics]
    sink_source_equiv_eps: float
    mean_delay_s: float

    @property
    def duration_s(self) -> float:
        return self.t_end_s - self.t_start_s


def _backlog_by_stage(report: TickReport) -> dict[str, float]:
    """Total input backlog per stage in one report."""
    totals: dict[str, float] = {}
    for (stage, _), v in report.input_backlog.items():
        totals[stage] = totals.get(stage, 0.0) + v
    return totals


def _site_backlog_by_stage(report: TickReport) -> dict[str, dict[str, float]]:
    """Per-site input backlog grouped by stage in one report."""
    grouped: dict[str, dict[str, float]] = {}
    for (stage, site), v in report.input_backlog.items():
        grouped.setdefault(stage, {})[site] = v
    return grouped


def _net_backlog_by_stage(
    report: TickReport,
) -> dict[str, dict[tuple[str, str], float]]:
    """Inbound WAN backlog per (src_site, dst_site) grouped by dst stage."""
    grouped: dict[str, dict[tuple[str, str], float]] = {}
    for (_, dst, su, sd), v in report.net_backlog.items():
        d = grouped.setdefault(dst, {})
        link = (su, sd)
        d[link] = d.get(link, 0.0) + v
    return grouped


class GlobalMetricMonitor:
    """Accumulates tick reports into per-interval metric windows."""

    def __init__(self) -> None:
        self._reports: list[TickReport] = []

    def observe(self, report: TickReport) -> None:
        self._reports.append(report)

    @property
    def pending_ticks(self) -> int:
        return len(self._reports)

    def collect(
        self, sink_source_equiv: Callable[[float], float] | None = None
    ) -> MetricsWindow:
        """Aggregate and reset the current window.

        Args:
            sink_source_equiv: Optional callable converting sink emissions
                into source-equivalents (the engine provides one); identity
                when omitted.
        """
        reports = self._reports
        self._reports = []
        if not reports:
            return MetricsWindow(
                t_start_s=0.0,
                t_end_s=0.0,
                offered_eps=0.0,
                source_generation_eps={},
                stages={},
                sink_source_equiv_eps=0.0,
                mean_delay_s=float("nan"),
            )

        t_start = reports[0].t_s
        t_end = reports[-1].t_s
        # A window of n ticks spans n tick-lengths; infer the tick length
        # from the report spacing (a single report falls back to its own t).
        if len(reports) > 1:
            tick_len = (t_end - t_start) / (len(reports) - 1)
        else:
            tick_len = reports[0].t_s or 1.0
        span = max(tick_len * len(reports), 1e-9)

        # Single pass over the reports, grouping by stage as we go.  Per-key
        # accumulation order is unchanged (report order, then dict insertion
        # order within a report), and skipped absent-key terms are exact
        # no-ops on the float sums, so the window aggregates are bit-for-bit
        # the ones the per-stage rescan produced.
        offered = 0.0
        source_gen: dict[str, float] = {}
        processed_by: dict[str, float] = {}
        arrived_by: dict[str, float] = {}
        emitted_by: dict[str, float] = {}
        by_site_by: dict[str, dict[str, float]] = {}
        cap_site_by: dict[str, dict[str, float]] = {}
        net_in_by: dict[str, dict[tuple[str, str], float]] = {}
        sink_events = 0.0
        delay_weight = 0.0
        stage_names: set[str] = set()
        for r in reports:
            offered += r.offered
            sink_events += r.sink_events
            delay_weight += r.sink_delay_weighted_s
            for name, gen in r.offered_by_source.items():
                source_gen[name] = source_gen.get(name, 0.0) + gen
            for name, v in r.processed.items():
                processed_by[name] = processed_by.get(name, 0.0) + v
            for name, v in r.arrived.items():
                arrived_by[name] = arrived_by.get(name, 0.0) + v
            for name, v in r.emitted.items():
                emitted_by[name] = emitted_by.get(name, 0.0) + v
            for (stage, site), value in r.processed_by_site.items():
                d = by_site_by.setdefault(stage, {})
                d[site] = d.get(site, 0.0) + value
            for (stage, site), value in r.capacity_by_site.items():
                d = cap_site_by.setdefault(stage, {})
                d[site] = d.get(site, 0.0) + value
            for (_, dst, su, sd), v in r.net_sent.items():
                d = net_in_by.setdefault(dst, {})
                link = (su, sd)
                d[link] = d.get(link, 0.0) + v
            stage_names.update(name for name, _ in r.input_backlog)
            stage_names.update(key[1] for key in r.net_backlog)
        stage_names.update(processed_by)
        stage_names.update(arrived_by)
        stage_names.update(emitted_by)
        stage_names.update(net_in_by)
        source_gen_eps = {k: v / span for k, v in source_gen.items()}

        first, last = reports[0], reports[-1]
        backlog_first = _backlog_by_stage(first)
        backlog_last = _backlog_by_stage(last)
        site_backlog_last = _site_backlog_by_stage(last)
        net_first_by = _net_backlog_by_stage(first)
        net_last_by = _net_backlog_by_stage(last)

        stages: dict[str, StageMetrics] = {}
        for name in sorted(stage_names):
            processed = processed_by.get(name, 0.0)
            emitted = emitted_by.get(name, 0.0)
            by_site = by_site_by.get(name, {})
            cap_site = cap_site_by.get(name, {})
            input_backlog_last = backlog_last.get(name, 0.0)
            input_backlog_first = backlog_first.get(name, 0.0)
            net_last = net_last_by.get(name, {})
            net_first = net_first_by.get(name, {})
            net_in = net_in_by.get(name, {})
            growth = {
                link: net_last.get(link, 0.0) - net_first.get(link, 0.0)
                for link in set(net_last) | set(net_first)
            }
            lambda_p = processed / span
            stages[name] = StageMetrics(
                stage=name,
                lambda_p=lambda_p,
                lambda_i=arrived_by.get(name, 0.0) / span,
                lambda_o=emitted / span,
                selectivity=(emitted / processed) if processed > 0 else 0.0,
                processed_by_site={k: v / span for k, v in by_site.items()},
                capacity_by_site={k: v / span for k, v in cap_site.items()},
                input_backlog=input_backlog_last,
                input_backlog_growth=input_backlog_last - input_backlog_first,
                input_backlog_by_site=site_backlog_last.get(name, {}),
                net_backlog=net_last,
                net_backlog_growth=growth,
                net_inflow={k: v / span for k, v in net_in.items()},
            )

        if sink_source_equiv is not None:
            sink_equiv = sink_source_equiv(sink_events)
        else:
            sink_equiv = sink_events
        mean_delay = delay_weight / sink_events if sink_events > 0 else float("nan")

        return MetricsWindow(
            t_start_s=t_start,
            t_end_s=t_end,
            offered_eps=offered / span,
            source_generation_eps=source_gen_eps,
            stages=stages,
            sink_source_equiv_eps=sink_equiv / span,
            mean_delay_s=mean_delay,
        )

"""Runtime metric monitoring (Sections 3.1 and 3.2).

Each Task Manager's Local Metric Monitor gathers task-level metrics and
reports them to the Global Metric Monitor, which aggregates them per operator
over the past time interval:

    lambda_P = sum_i lambda_P[i]      (processing rate)
    lambda_O = sum_i lambda_O[i]      (output rate)
    sigma    = lambda_O / lambda_P    (selectivity)

In the fluid engine, task-level observations arrive as
:class:`~repro.engine.runtime.TickReport` objects; the
:class:`GlobalMetricMonitor` accumulates them until the controller collects a
:class:`MetricsWindow`, which resets the accumulation (one monitoring
interval, 40 s in the paper's setup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .runtime import TickReport


@dataclass(frozen=True)
class StageMetrics:
    """Aggregated execution metrics for one stage over a window.

    Rates are events/second averaged over the window.  ``backlog_growth``
    values compare the window's last tick against its first, which is what
    distinguishes a standing (already-drained) queue from a growing one.
    """

    stage: str
    lambda_p: float
    lambda_i: float
    lambda_o: float
    selectivity: float
    processed_by_site: dict[str, float]
    capacity_by_site: dict[str, float]
    input_backlog: float
    input_backlog_growth: float
    #: per site: input backlog at window end (imbalance/straggler signal)
    input_backlog_by_site: dict[str, float]
    #: per (src_site, dst_site): inbound WAN backlog at window end
    net_backlog: dict[tuple[str, str], float]
    #: per (src_site, dst_site): backlog growth over the window
    net_backlog_growth: dict[tuple[str, str], float]
    #: per (src_site, dst_site): events/s actually transferred inbound
    net_inflow: dict[tuple[str, str], float]

    @property
    def utilization(self) -> float:
        """Fraction of the stage's processing capacity in use."""
        capacity = sum(self.capacity_by_site.values())
        if capacity <= 0:
            return 0.0
        return self.lambda_p / capacity


@dataclass(frozen=True)
class MetricsWindow:
    """Everything the controller sees at the end of a monitoring interval."""

    t_start_s: float
    t_end_s: float
    offered_eps: float
    source_generation_eps: dict[str, float]
    stages: dict[str, StageMetrics]
    sink_source_equiv_eps: float
    mean_delay_s: float

    @property
    def duration_s(self) -> float:
        return self.t_end_s - self.t_start_s


class GlobalMetricMonitor:
    """Accumulates tick reports into per-interval metric windows."""

    def __init__(self) -> None:
        self._reports: list[TickReport] = []

    def observe(self, report: TickReport) -> None:
        self._reports.append(report)

    @property
    def pending_ticks(self) -> int:
        return len(self._reports)

    def collect(
        self, sink_source_equiv: Callable[[float], float] | None = None
    ) -> MetricsWindow:
        """Aggregate and reset the current window.

        Args:
            sink_source_equiv: Optional callable converting sink emissions
                into source-equivalents (the engine provides one); identity
                when omitted.
        """
        reports = self._reports
        self._reports = []
        if not reports:
            return MetricsWindow(
                t_start_s=0.0,
                t_end_s=0.0,
                offered_eps=0.0,
                source_generation_eps={},
                stages={},
                sink_source_equiv_eps=0.0,
                mean_delay_s=float("nan"),
            )

        t_start = reports[0].t_s
        t_end = reports[-1].t_s
        # A window of n ticks spans n tick-lengths; infer the tick length
        # from the report spacing (a single report falls back to its own t).
        if len(reports) > 1:
            tick_len = (t_end - t_start) / (len(reports) - 1)
        else:
            tick_len = reports[0].t_s or 1.0
        span = max(tick_len * len(reports), 1e-9)

        offered = sum(r.offered for r in reports)
        source_gen: dict[str, float] = {}
        for r in reports:
            for name, gen in r.offered_by_source.items():
                source_gen[name] = source_gen.get(name, 0.0) + gen
        source_gen_eps = {k: v / span for k, v in source_gen.items()}

        stage_names: set[str] = set()
        for r in reports:
            stage_names.update(r.processed)
            stage_names.update(r.arrived)
            stage_names.update(r.emitted)
            stage_names.update(name for name, _ in r.input_backlog)
            stage_names.update(key[1] for key in r.net_backlog)
            stage_names.update(key[1] for key in r.net_sent)

        stages: dict[str, StageMetrics] = {}
        first, last = reports[0], reports[-1]
        for name in sorted(stage_names):
            processed = sum(r.processed.get(name, 0.0) for r in reports)
            arrived = sum(r.arrived.get(name, 0.0) for r in reports)
            emitted = sum(r.emitted.get(name, 0.0) for r in reports)
            by_site: dict[str, float] = {}
            cap_site: dict[str, float] = {}
            for r in reports:
                for (stage, site), value in r.processed_by_site.items():
                    if stage == name:
                        by_site[site] = by_site.get(site, 0.0) + value
                for (stage, site), value in r.capacity_by_site.items():
                    if stage == name:
                        cap_site[site] = cap_site.get(site, 0.0) + value
            input_backlog_last = sum(
                v for (stage, _), v in last.input_backlog.items() if stage == name
            )
            backlog_by_site = {
                site: v
                for (stage, site), v in last.input_backlog.items()
                if stage == name
            }
            input_backlog_first = sum(
                v for (stage, _), v in first.input_backlog.items() if stage == name
            )
            net_last: dict[tuple[str, str], float] = {}
            net_first: dict[tuple[str, str], float] = {}
            net_in: dict[tuple[str, str], float] = {}
            for (src, dst, su, sd), v in last.net_backlog.items():
                if dst == name:
                    net_last[(su, sd)] = net_last.get((su, sd), 0.0) + v
            for (src, dst, su, sd), v in first.net_backlog.items():
                if dst == name:
                    net_first[(su, sd)] = net_first.get((su, sd), 0.0) + v
            for r in reports:
                for (src, dst, su, sd), v in r.net_sent.items():
                    if dst == name:
                        net_in[(su, sd)] = net_in.get((su, sd), 0.0) + v
            growth = {
                link: net_last.get(link, 0.0) - net_first.get(link, 0.0)
                for link in set(net_last) | set(net_first)
            }
            lambda_p = processed / span
            stages[name] = StageMetrics(
                stage=name,
                lambda_p=lambda_p,
                lambda_i=arrived / span,
                lambda_o=emitted / span,
                selectivity=(emitted / processed) if processed > 0 else 0.0,
                processed_by_site={k: v / span for k, v in by_site.items()},
                capacity_by_site={k: v / span for k, v in cap_site.items()},
                input_backlog=input_backlog_last,
                input_backlog_growth=input_backlog_last - input_backlog_first,
                input_backlog_by_site=backlog_by_site,
                net_backlog=net_last,
                net_backlog_growth=growth,
                net_inflow={k: v / span for k, v in net_in.items()},
            )

        sink_events = sum(r.sink_events for r in reports)
        if sink_source_equiv is not None:
            sink_equiv = sink_source_equiv(sink_events)
        else:
            sink_equiv = sink_events
        delay_weight = sum(r.sink_delay_weighted_s for r in reports)
        mean_delay = delay_weight / sink_events if sink_events > 0 else float("nan")

        return MetricsWindow(
            t_start_s=t_start,
            t_end_s=t_end,
            offered_eps=offered / span,
            source_generation_eps=source_gen_eps,
            stages=stages,
            sink_source_equiv_eps=sink_equiv / span,
            mean_delay_s=mean_delay,
        )

"""Stream-engine substrate: operators, plans, queues, state, runtime."""

from .backpressure import (
    TopologyCapacityModel,
    bottleneck_stages,
    steady_state_rates,
)
from .checkpoint import CheckpointCoordinator, CheckpointRecord
from .dense import DenseEngineRuntime, create_runtime
from .logical import LogicalPlan, can_replace_preserving_state
from .metrics import GlobalMetricMonitor, MetricsWindow, StageMetrics
from .operators import OperatorKind, OperatorSpec
from .physical import PhysicalPlan, Stage, Task
from .queues import FluidQueue, Parcel
from .runtime import EngineRuntime, TickReport, WorkloadModel
from .state import StatePartition, StateStore

__all__ = [
    "CheckpointCoordinator",
    "TopologyCapacityModel",
    "bottleneck_stages",
    "steady_state_rates",
    "CheckpointRecord",
    "DenseEngineRuntime",
    "EngineRuntime",
    "FluidQueue",
    "GlobalMetricMonitor",
    "LogicalPlan",
    "MetricsWindow",
    "OperatorKind",
    "OperatorSpec",
    "Parcel",
    "PhysicalPlan",
    "Stage",
    "StageMetrics",
    "StatePartition",
    "StateStore",
    "Task",
    "TickReport",
    "WorkloadModel",
    "can_replace_preserving_state",
    "create_runtime",
]

"""Physical plans: stages, tasks and operator chaining.

A query's physical plan consists of execution stages, each running as
parallel tasks (Section 2.1).  Like Flink, consecutive narrow stateless
operators are *chained* into a single stage so that record-at-a-time
transformations (filter, map, project) execute inside their upstream task
without crossing the network - this is also where logical filter-pushdown
pays off: a filter chained into its source stage reduces the rate leaving
the source site.

A stage is named after its *head* operator.  Because alternative logical
plans share operator names exactly where they share sub-plans, stage names
are stable across re-planning and the engine can carry queues and state over
for the common part (Section 4.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import PlanError
from .logical import LogicalPlan
from .operators import OperatorKind, OperatorSpec


@dataclass
class Task:
    """One execution instance of a stage, occupying one computing slot."""

    task_id: str
    stage_name: str
    site: str


@dataclass
class Stage:
    """A pipeline of chained operators executed by parallel tasks.

    Attributes:
        name: Equal to the head operator's name.
        operators: The chained operators, head first.
        tasks: Current execution instances.  ``len(tasks)`` is the stage
            parallelism ``p``.
        initial_parallelism: Parallelism at first deployment; the policy's
            ``p' > p_max`` check compares against this baseline.
    """

    name: str
    operators: list[OperatorSpec]
    tasks: list[Task] = field(default_factory=list)
    initial_parallelism: int = 0
    #: Monotonic mutation counter.  Every task-set change bumps it, so the
    #: engine can cache anything derived from the placement (sorted site
    #: lists, fan-out fractions, per-site task counts) and invalidate on
    #: version mismatch.  All task mutations must go through the methods
    #: below - never mutate ``tasks`` directly.
    version: int = 0
    _task_counter: itertools.count = field(
        default_factory=itertools.count, repr=False
    )

    # -------------------------- combined properties -------------------- #

    @property
    def head(self) -> OperatorSpec:
        return self.operators[0]

    @property
    def tail(self) -> OperatorSpec:
        return self.operators[-1]

    @property
    def is_source(self) -> bool:
        return self.head.is_source

    @property
    def is_sink(self) -> bool:
        return self.tail.is_sink

    @property
    def pinned_site(self) -> str | None:
        return self.head.pinned_site

    @property
    def selectivity(self) -> float:
        result = 1.0
        for op in self.operators:
            result *= op.selectivity
        return result

    @property
    def cost(self) -> float:
        """CPU work per *ingested* event across the chain.

        Later operators in the chain only see the events surviving earlier
        selectivities, so their cost is discounted accordingly.
        """
        total, surviving = 0.0, 1.0
        for op in self.operators:
            total += op.cost * surviving
            surviving *= op.selectivity
        return max(total, 1e-9)

    @property
    def output_event_bytes(self) -> float:
        return self.tail.event_bytes

    @property
    def stateful(self) -> bool:
        return any(op.stateful for op in self.operators)

    @property
    def state_mb(self) -> float:
        return sum(op.state_mb for op in self.operators)

    @property
    def splittable(self) -> bool:
        return all(op.splittable for op in self.operators)

    @property
    def window_s(self) -> float:
        return max((op.window_s for op in self.operators), default=0.0)

    @property
    def parallelism(self) -> int:
        return len(self.tasks)

    # -------------------------- task management ------------------------ #

    def placement(self) -> dict[str, int]:
        """Tasks per site (``p[s]``), sites with zero tasks omitted."""
        counts: dict[str, int] = {}
        for task in self.tasks:
            counts[task.site] = counts.get(task.site, 0) + 1
        return counts

    def sites(self) -> list[str]:
        return sorted(self.placement())

    def add_task(self, site: str) -> Task:
        task = Task(
            task_id=f"{self.name}/{next(self._task_counter)}",
            stage_name=self.name,
            site=site,
        )
        self.tasks.append(task)
        self.version += 1
        return task

    def remove_task_at(self, site: str) -> Task:
        for i, task in enumerate(self.tasks):
            if task.site == site:
                self.version += 1
                return self.tasks.pop(i)
        raise PlanError(f"stage {self.name!r} has no task at site {site!r}")

    def remove_task(self, task: Task) -> None:
        """Remove one specific task (failure evacuation)."""
        self.tasks.remove(task)
        self.version += 1

    def set_tasks(self, tasks: list[Task]) -> None:
        """Replace the whole task set (transaction rollback)."""
        self.tasks[:] = tasks
        self.version += 1

    def clear_tasks(self) -> None:
        """Drop every task (undeploy / abandoned-plan cleanup)."""
        self.tasks.clear()
        self.version += 1

    def state_mb_per_task(self) -> float:
        """Per-task state share under balanced partitioning (Section 7)."""
        if not self.tasks or not self.stateful:
            return 0.0
        return self.state_mb / len(self.tasks)


class PhysicalPlan:
    """Stages and their data-flow edges for one logical plan."""

    def __init__(self, logical: LogicalPlan, *, chaining: bool = True) -> None:
        self.logical = logical
        self.stages: dict[str, Stage] = {}
        self._member_of: dict[str, str] = {}
        self._build_stages(chaining)
        self.stage_edges: list[tuple[str, str]] = self._build_edges()
        self._up: dict[str, list[str]] = {name: [] for name in self.stages}
        self._down: dict[str, list[str]] = {name: [] for name in self.stages}
        for src, dst in self.stage_edges:
            self._down[src].append(dst)
            self._up[dst].append(src)
        self._topo = self._stage_topological_order()
        # The stage graph is immutable after construction (only task sets
        # change), so the derived stage lists are built exactly once.
        self._topo_stages = [self.stages[name] for name in self._topo]
        self._source_stages = [s for s in self._topo_stages if s.is_source]
        self._sink_stages = [s for s in self._topo_stages if s.is_sink]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build_stages(self, chaining: bool) -> None:
        logical = self.logical
        for op in logical.topological():
            if chaining and self._can_chain(op):
                upstream_op = logical.upstream(op.name)[0]
                stage = self.stages[self._member_of[upstream_op.name]]
                stage.operators.append(op)
                self._member_of[op.name] = stage.name
            else:
                stage = Stage(name=op.name, operators=[op])
                self.stages[op.name] = stage
                self._member_of[op.name] = op.name

    def _can_chain(self, op: OperatorSpec) -> bool:
        """Chain ``op`` into its upstream when the link is one-to-one and the
        operator is a narrow stateless transformation."""
        if not op.chainable:
            return False
        upstream = self.logical.upstream(op.name)
        if len(upstream) != 1:
            return False
        return len(self.logical.downstream(upstream[0].name)) == 1

    def _build_edges(self) -> list[tuple[str, str]]:
        edges: set[tuple[str, str]] = set()
        for src, dst in self.logical.edges:
            src_stage = self._member_of[src]
            dst_stage = self._member_of[dst]
            if src_stage != dst_stage:
                edges.add((src_stage, dst_stage))
        return sorted(edges)

    def _stage_topological_order(self) -> list[str]:
        in_degree = {name: len(self._up[name]) for name in self.stages}
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self._down[node]):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.stages):
            raise PlanError("stage graph contains a cycle")
        return order

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def stage(self, name: str) -> Stage:
        try:
            return self.stages[name]
        except KeyError:
            raise PlanError(f"unknown stage {name!r}") from None

    def stage_of_operator(self, op_name: str) -> Stage:
        try:
            return self.stages[self._member_of[op_name]]
        except KeyError:
            raise PlanError(f"unknown operator {op_name!r}") from None

    def topological_stages(self) -> list[Stage]:
        """Stages in topological order (cached; do not mutate)."""
        return self._topo_stages

    def upstream_stages(self, name: str) -> list[Stage]:
        return [self.stages[u] for u in self._up[name]]

    def downstream_stages(self, name: str) -> list[Stage]:
        return [self.stages[d] for d in self._down[name]]

    def source_stages(self) -> list[Stage]:
        """Source stages in topological order (cached; do not mutate)."""
        return self._source_stages

    def sink_stages(self) -> list[Stage]:
        """Sink stages in topological order (cached; do not mutate)."""
        return self._sink_stages

    def mutation_version(self) -> int:
        """Monotonic counter over every stage's task mutations.

        Stage versions only ever increase, so the sum strictly increases on
        any placement change anywhere in the plan - a cheap validity token
        for placement-derived caches.
        """
        return sum(s.version for s in self.stages.values())

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.topological_stages())

    def total_parallelism(self) -> int:
        return sum(s.parallelism for s in self.stages.values())

    def deployed(self) -> bool:
        return all(s.parallelism > 0 for s in self.stages.values())

    def expected_stage_rates(
        self, source_generation_eps: dict[str, float]
    ) -> dict[str, dict[str, float]]:
        """Expected input/output rate per stage from raw generation rates.

        Args:
            source_generation_eps: Raw events/s generated at each source
                stage (before any chained source-side filters), keyed by
                stage name.

        Returns:
            ``{stage: {"input": eps, "output": eps}}`` - the lambda-hat
            recursion of Section 3.3 lifted to stages; each stage's output is
            its input times the chained selectivity.
        """
        rates: dict[str, dict[str, float]] = {}
        for stage in self.topological_stages():
            if stage.is_source:
                gen = float(source_generation_eps.get(stage.name, 0.0))
                rates[stage.name] = {
                    "input": gen,
                    "output": gen * stage.selectivity,
                }
            else:
                inflow = sum(
                    rates[u.name]["output"]
                    for u in self.upstream_stages(stage.name)
                )
                rates[stage.name] = {
                    "input": inflow,
                    "output": inflow * stage.selectivity,
                }
        return rates

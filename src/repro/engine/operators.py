"""Stream operator specifications.

A logical plan is a DAG of :class:`OperatorSpec` vertices (Section 2.1).
Each spec captures the properties the WASP controller reasons about:

* **selectivity** ``sigma = lambda_O / lambda_P`` (Section 3.2) - the ratio of
  output to processed rate, fixed per operator in the fluid model (the paper
  likewise treats selectivity as a slowly-moving per-operator statistic);
* **cost** - relative CPU work per event, which divides a slot's nominal
  processing rate;
* **statefulness** and state size - what must be checkpointed locally and
  migrated over the WAN when tasks move (Section 5);
* **splittability** - "an operator may not be split without losing its
  semantic" (Section 6.2): such operators are never scaled, only re-planned;
* **output event size** - what converts event rates into link bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import PlanError


class OperatorKind(enum.Enum):
    """The operator vocabulary used by the Table-3 queries."""

    SOURCE = "source"
    FILTER = "filter"
    MAP = "map"
    PROJECT = "project"
    UNION = "union"
    WINDOW_AGGREGATE = "window_aggregate"
    JOIN = "join"
    REDUCE = "reduce"
    TOP_K = "top_k"
    SINK = "sink"


#: Kinds that keep per-key processing state that must be migrated on
#: re-deployment (Section 5: intermediate aggregation results, offsets, ...).
STATEFUL_KINDS = frozenset(
    {
        OperatorKind.WINDOW_AGGREGATE,
        OperatorKind.JOIN,
        OperatorKind.REDUCE,
        OperatorKind.TOP_K,
    }
)

#: Kinds that can always be chained into their upstream stage (narrow,
#: stateless, record-at-a-time transformations).
CHAINABLE_KINDS = frozenset(
    {OperatorKind.FILTER, OperatorKind.MAP, OperatorKind.PROJECT}
)


@dataclass(frozen=True)
class OperatorSpec:
    """One logical stream operator.

    Attributes:
        name: Unique name within a plan; doubles as the stage name, so plans
            that share a sub-plan (Section 4.3) share operator names for it.
        kind: Operator vocabulary entry.
        selectivity: Output events per processed event.  Aggregations
            compress heavily (e.g. a 30 s per-country top-10 emits a few
            hundred events regardless of input volume, giving a tiny ratio).
        cost: Relative CPU cost; a slot processes ``proc_rate_eps / cost``
            events per second for this operator.
        event_bytes: Size of each *output* event on the wire.
        stateful: Whether tasks keep migratable state.  Defaults from kind.
        state_mb: Total operator state across all tasks, in MB.  The paper
            controls this directly in Sections 8.7.1/8.7.2.
        splittable: False for operators whose semantics break under
            parallelism without a plan change (counters, sinks).
        window_s: Window length for windowed operators (informational).
        keyed_by: Partitioning key description (informational).
        pinned_site: For sources: the site where the stream originates.
    """

    name: str
    kind: OperatorKind
    selectivity: float = 1.0
    cost: float = 1.0
    event_bytes: float = 100.0
    stateful: bool | None = None
    state_mb: float = 0.0
    splittable: bool = True
    window_s: float = 0.0
    keyed_by: str = ""
    pinned_site: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanError("operator name must be non-empty")
        if self.selectivity < 0:
            raise PlanError(
                f"operator {self.name!r}: selectivity must be >= 0, "
                f"got {self.selectivity}"
            )
        if self.cost <= 0:
            raise PlanError(
                f"operator {self.name!r}: cost must be > 0, got {self.cost}"
            )
        if self.event_bytes <= 0:
            raise PlanError(
                f"operator {self.name!r}: event_bytes must be > 0, "
                f"got {self.event_bytes}"
            )
        if self.state_mb < 0:
            raise PlanError(
                f"operator {self.name!r}: state_mb must be >= 0, "
                f"got {self.state_mb}"
            )
        if self.window_s < 0:
            raise PlanError(
                f"operator {self.name!r}: window_s must be >= 0, "
                f"got {self.window_s}"
            )
        if self.stateful is None:
            object.__setattr__(self, "stateful", self.kind in STATEFUL_KINDS)
        if self.kind is OperatorKind.SOURCE and self.pinned_site is None:
            raise PlanError(
                f"source operator {self.name!r} must declare a pinned_site"
            )
        if self.kind is not OperatorKind.SOURCE and self.pinned_site is not None:
            raise PlanError(
                f"operator {self.name!r}: only sources may be pinned to a site"
            )
        if self.stateful and self.kind is OperatorKind.SOURCE:
            raise PlanError(f"source operator {self.name!r} cannot be stateful")

    @property
    def is_source(self) -> bool:
        return self.kind is OperatorKind.SOURCE

    @property
    def is_sink(self) -> bool:
        return self.kind is OperatorKind.SINK

    @property
    def chainable(self) -> bool:
        """Whether this operator may be fused into its upstream stage."""
        return self.kind in CHAINABLE_KINDS and not self.stateful

    def with_state_mb(self, state_mb: float) -> "OperatorSpec":
        """Copy with a different controlled state size (Section 8.7 sweeps)."""
        return replace(self, state_mb=state_mb)


# --------------------------------------------------------------------------- #
# Convenience constructors, mirroring a fluent stream-API surface.
# --------------------------------------------------------------------------- #


def source(name: str, site: str, *, rate_hint_eps: float = 0.0,
           event_bytes: float = 200.0, cost: float = 0.25) -> OperatorSpec:
    """A pinned stream source (e.g. one geo-distributed Kafka-like ingest).

    Ingestion is cheap by default (cost 0.25): a source task reads and
    forwards; the analytical work happens in downstream operators.  The
    experiments never make source ingestion the bottleneck - the paper's
    dynamics target WAN links and downstream operators, and sources are
    pinned to where the data originates, so no adaptation could move them.
    """
    del rate_hint_eps  # Rates come from the workload model, not the plan.
    return OperatorSpec(
        name, OperatorKind.SOURCE, event_bytes=event_bytes,
        pinned_site=site, cost=cost,
    )


def filter_(name: str, *, selectivity: float, event_bytes: float = 100.0,
            cost: float = 1.0) -> OperatorSpec:
    return OperatorSpec(
        name, OperatorKind.FILTER, selectivity=selectivity,
        event_bytes=event_bytes, cost=cost,
    )


def map_(name: str, *, event_bytes: float = 100.0, cost: float = 1.0,
         selectivity: float = 1.0) -> OperatorSpec:
    return OperatorSpec(
        name, OperatorKind.MAP, selectivity=selectivity,
        event_bytes=event_bytes, cost=cost,
    )


def project(name: str, *, event_bytes: float, cost: float = 0.5) -> OperatorSpec:
    return OperatorSpec(
        name, OperatorKind.PROJECT, event_bytes=event_bytes, cost=cost
    )


def union(name: str, *, event_bytes: float = 100.0) -> OperatorSpec:
    return OperatorSpec(
        name, OperatorKind.UNION, event_bytes=event_bytes, cost=0.25
    )


def window_aggregate(
    name: str,
    *,
    window_s: float,
    selectivity: float,
    state_mb: float,
    keyed_by: str = "",
    event_bytes: float = 100.0,
    cost: float = 2.0,
) -> OperatorSpec:
    return OperatorSpec(
        name, OperatorKind.WINDOW_AGGREGATE, selectivity=selectivity,
        cost=cost, event_bytes=event_bytes, state_mb=state_mb,
        window_s=window_s, keyed_by=keyed_by,
    )


def join(name: str, *, selectivity: float, state_mb: float,
         event_bytes: float = 150.0, cost: float = 2.0,
         window_s: float = 0.0) -> OperatorSpec:
    return OperatorSpec(
        name, OperatorKind.JOIN, selectivity=selectivity, cost=cost,
        event_bytes=event_bytes, state_mb=state_mb, window_s=window_s,
    )


def top_k(name: str, *, k: int, window_s: float, state_mb: float,
          event_bytes: float = 120.0, cost: float = 2.0,
          splittable: bool = True) -> OperatorSpec:
    # A global top-k is a counter-like operator: splitting it requires an
    # extra combiner, so callers model the final global instance with
    # splittable=False (Section 6.2).
    selectivity = max(1e-6, min(1.0, k / 1000.0))
    return OperatorSpec(
        name, OperatorKind.TOP_K, selectivity=selectivity, cost=cost,
        event_bytes=event_bytes, state_mb=state_mb, window_s=window_s,
        splittable=splittable,
    )


def sink(name: str, *, splittable: bool = False) -> OperatorSpec:
    return OperatorSpec(
        name, OperatorKind.SINK, selectivity=1.0, cost=0.25,
        event_bytes=100.0, splittable=splittable,
    )

"""Dense numpy backend for the fluid-flow engine.

:class:`DenseEngineRuntime` executes the same tick semantics as
:class:`~repro.engine.runtime.EngineRuntime` but keeps all queue state in
age-bucketed structure-of-arrays form and runs
generate -> process -> route -> transfer as fused array operations:

* Every queue (``gen``/``input`` per ``(stage, site)``, ``net`` per flow)
  becomes one row of two ``(rows, B)`` float64 arrays: ``cnt[r, b]`` is the
  event count whose age falls in bucket ``b`` (one tick wide) and
  ``mass[r, b]`` is the summed ``count * gen_time`` of those events.  The
  pair preserves each bucket's exact mean generation time, so throughput
  accounting is exact and delay metrics are exact up to intra-bucket
  mixing (bounded by one tick per hop).
* A compiled :class:`_DenseModel` (keyed on plan identity + mutation
  version, like the reference `_PlanCache`) precomputes integer row ids,
  routing fan-out scatter indices, per-flow link/latency tables and
  FCFS link-sharing passes, so the per-tick Python work is O(stages),
  not O(queues) or O(parcels).
* The dict-of-FluidQueue representation remains the interchange format:
  arrays are synced out lazily whenever an inspection API or the mutation
  API (snapshot/restore, migration, ``replace_plan``, replay injection)
  needs parcel-level state, and synced back in before the next tick.
  Adaptations are rare; ticks are hot.

Equivalence vs the reference backend: per-tick processed totals, backlogs
and capacity are equal up to float associativity (queue *count* evolution
does not depend on intra-queue ordering), sink delays agree within the
bucket-mixing bound, and SLO (``Degrade``) drops may diverge slightly
because the reference drops by scanning parcels in *push* order while the
dense kernel drops whole age buckets by mean generation time.  Within the
dense backend results are bit-exact for a fixed seed.
"""

from __future__ import annotations

import numpy as np

from ..config import WaspConfig
from ..errors import ConfigurationError, SimulationError, TopologyError
from ..network.topology import (
    LOCAL_BANDWIDTH_MBPS,
    Topology,
)
from .physical import PhysicalPlan
from .queues import FluidQueue
from .runtime import MBIT_BYTES, EngineRuntime, TickReport, WorkloadModel

#: Queue totals below this are treated as drained (mirrors FluidQueue).
_DRAIN_EPS = 1e-12


def _pop_rows(
    cnt: np.ndarray,
    mass: np.ndarray,
    rows: np.ndarray,
    caps: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """FIFO-pop up to ``caps[i]`` events from each row, oldest bucket first.

    Mutates ``cnt``/``mass`` in place and returns ``(take_cnt, take_mass,
    popped_totals, totals_before)``.  Fully-consumed buckets transfer their
    exact mass (``c/c == 1.0`` in IEEE arithmetic leaves a remainder of
    exactly 0); partially-consumed buckets split mass proportionally, i.e.
    at the bucket's mean generation time.
    """
    c = cnt[rows]
    m = mass[rows]
    rc = c[:, ::-1]
    cum = rc.cumsum(axis=1)
    prev = np.empty_like(cum)
    prev[:, 0] = 0.0
    prev[:, 1:] = cum[:, :-1]
    take = np.minimum(np.maximum(caps[:, None] - prev, 0.0), rc)[:, ::-1]
    frac = take / np.maximum(c, 1e-300)
    tm = m * frac
    new_c = c - take
    new_m = m - tm
    before = cum[:, -1]
    popped = np.minimum(caps, before)
    drained = before - popped < _DRAIN_EPS
    if drained.any():
        new_c[drained] = 0.0
        new_m[drained] = 0.0
    cnt[rows] = new_c
    mass[rows] = new_m
    return take, tm, popped, before


def _drop_older_rows(
    cnt: np.ndarray,
    mass: np.ndarray,
    rows: np.ndarray,
    cutoff: float,
) -> np.ndarray:
    """Drop whole buckets whose mean generation time precedes ``cutoff``.

    Returns per-row dropped totals.  (The reference scans parcels in push
    order and stops at the first fresh one; with tick-wide buckets the
    mean-gen-time test agrees except when parcels of mixed ages were
    interleaved by transfers, which is what the differential tolerances
    absorb.)
    """
    c = cnt[rows]
    m = mass[rows]
    mask = (c > 0.0) & (m < cutoff * c)
    dropped = np.where(mask, c, 0.0).sum(axis=1)
    if mask.any():
        cnt[rows] = np.where(mask, 0.0, c)
        mass[rows] = np.where(mask, 0.0, m)
    return dropped


class _FlowPass:
    """One FCFS round of link sharing: at most one flow per link."""

    __slots__ = (
        "flow_keys", "flow_rows", "link_ids", "lat_s", "eb", "inv_eb",
        "dst_flat", "dst_stages", "dst_groups",
    )


class _DenseStage:
    """Per-stage metadata within a depth group (reporting + generation)."""

    __slots__ = (
        "name", "is_source", "is_sink", "selectivity", "pinned_site",
        "gen_row", "s0", "s1", "requeue_mult",
    )


class _DepthGroup:
    """All stages at one topological depth, fused into a single batch.

    Longest-path depths guarantee no edge connects two stages of the same
    group, so executing a whole group (pop -> route -> transfer) preserves
    the reference's sub-tick pipelining; the pass construction preserves
    its per-link FCFS budget order across the group's stages.
    """

    __slots__ = (
        "stages", "rows", "row_keys", "site_ids", "n_tasks", "cost_row",
        "sel_col", "mult_col", "has_requeue",
        "loc_src", "loc_frac", "loc_flat", "loc_groups",
        "rem_src", "rem_frac", "rem_flat",
        "flow_rows_all", "flow_dst_all", "passes",
    )


class _DenseModel:
    """Structure-of-arrays compilation of one (plan, mutation version).

    The row universe covers every queue the reference backend could touch
    during ticks at this plan version: placement read rows, every existing
    dict key (stale queues still roll and report backlog), each potential
    inter-site flow of a deployed edge and each flow's destination input
    row.  Anything else (new keys from adaptations) invalidates the model
    via the mutation API before the next tick.
    """

    __slots__ = (
        "plan", "version", "B", "dt",
        "in_rows", "in_index", "in_persistent",
        "net_rows", "net_index", "net_persistent",
        "sites", "links", "link_base", "link_local",
        "groups", "sources", "n_in", "n_net",
    )

    def __init__(
        self,
        plan: PhysicalPlan,
        topology: Topology,
        gen_queue: dict,
        input_queue: dict,
        net_queue: dict,
        B: int,
        dt: float,
    ) -> None:
        self.plan = plan
        self.version = plan.mutation_version()
        self.B = B
        self.dt = dt

        in_index: dict[tuple[str, str, str], int] = {}
        in_rows: list[tuple[str, str, str]] = []
        in_persistent: list[bool] = []

        def in_row(tag: str, stage: str, site: str, persist: bool = False) -> int:
            key = (tag, stage, site)
            row = in_index.get(key)
            if row is None:
                row = len(in_rows)
                in_index[key] = row
                in_rows.append(key)
                in_persistent.append(persist)
            elif persist:
                in_persistent[row] = True
            return row

        topo_stages = plan.topological_stages()
        placements = {s.name: s.placement() for s in topo_stages}
        read_tag = {
            s.name: ("gen" if s.is_source else "input") for s in topo_stages
        }

        # 1. Read rows: one per placement site in each stage's read table
        #    (the reference creates these queues eagerly every tick), plus
        #    the generation row at each source's pinned site.
        for s in topo_stages:
            tag = read_tag[s.name]
            for site in sorted(placements[s.name]):
                in_row(tag, s.name, site, persist=True)
            if s.is_source and s.pinned_site is not None:
                in_row("gen", s.name, s.pinned_site)

        # 2. Existing dict keys (includes queues for undeployed sites or
        #    stages outside the plan: they only roll and report backlog).
        for stage, site in sorted(gen_queue):
            in_row("gen", stage, site, persist=True)
        for stage, site in sorted(input_queue):
            in_row("input", stage, site, persist=True)

        # 3. Net rows: existing flows plus every potential flow a deployed
        #    edge can create by routing this plan version.
        net_index: dict[tuple[str, str, str, str], int] = {}
        net_rows: list[tuple[str, str, str, str]] = []
        net_persistent: list[bool] = []

        def net_row(key: tuple[str, str, str, str], persist: bool = False) -> int:
            row = net_index.get(key)
            if row is None:
                row = len(net_rows)
                net_index[key] = row
                net_rows.append(key)
                net_persistent.append(persist)
            elif persist:
                net_persistent[row] = True
            return row

        for key in sorted(net_queue):
            net_row(key, persist=True)
        downstream = {
            s.name: plan.downstream_stages(s.name) for s in topo_stages
        }
        for s in topo_stages:
            src_sites = sorted(placements[s.name])
            for down in downstream[s.name]:
                dplace = placements[down.name]
                if sum(dplace.values()) <= 0:
                    continue
                for src_site in src_sites:
                    for dst_site in sorted(dplace):
                        if dst_site != src_site:
                            net_row((s.name, down.name, src_site, dst_site))

        # 4. Flow destinations always land in the input table.
        for _src_st, dst_st, _su, sd in net_rows:
            in_row("input", dst_st, sd)

        self.in_rows = in_rows
        self.in_index = in_index
        self.in_persistent = in_persistent
        self.net_rows = net_rows
        self.net_index = net_index
        self.net_persistent = net_persistent
        self.n_in = len(in_rows)
        self.n_net = len(net_rows)

        site_names = sorted(topology.site_names)
        site_id = {name: i for i, name in enumerate(site_names)}
        self.sites = [topology.site(name) for name in site_names]

        links: list[tuple[str, str]] = []
        link_index: dict[tuple[str, str], int] = {}
        link_base: list[float] = []
        link_local: list[bool] = []

        def link_id(su: str, sd: str) -> int:
            key = (su, sd)
            li = link_index.get(key)
            if li is None:
                li = len(links)
                link_index[key] = li
                links.append(key)
                if su == sd:
                    link_base.append(LOCAL_BANDWIDTH_MBPS)
                    link_local.append(True)
                else:
                    base = topology._base_bandwidth.get(key)
                    if base is None:
                        raise TopologyError(
                            f"no link defined from {su!r} to {sd!r}"
                        )
                    link_base.append(base)
                    link_local.append(False)
            return li

        flows_by_src: dict[str, list[tuple[str, str, str, str]]] = {}
        for key in net_rows:
            flows_by_src.setdefault(key[0], []).append(key)
        for keys in flows_by_src.values():
            keys.sort()

        bucket_idx = np.arange(B)

        # Depth grouping (longest path from a source): every stage at one
        # depth executes as one fused pop/route/transfer batch.
        depth = {s.name: 0 for s in topo_stages}
        for s in topo_stages:
            for down in downstream[s.name]:
                if depth[down.name] < depth[s.name] + 1:
                    depth[down.name] = depth[s.name] + 1
        by_depth: dict[int, list] = {}
        for s in topo_stages:
            by_depth.setdefault(depth[s.name], []).append(s)

        self.groups = []
        self.sources = []
        for d in sorted(by_depth):
            g = _DepthGroup()
            g.stages = []
            rows_l: list[int] = []
            row_keys: list[tuple[str, str]] = []
            site_ids_l: list[int] = []
            ntasks_l: list[float] = []
            cost_l: list[float] = []
            sel_l: list[float] = []
            mult_l: list[float] = []
            loc: list[tuple[int, int, float]] = []
            loc_groups: list[tuple[str, int, int]] = []
            rem: list[tuple[int, int, float]] = []
            flows_group: list[tuple[tuple[str, str, str, str], float]] = []
            for s in by_depth[d]:
                st = _DenseStage()
                st.name = s.name
                st.is_source = s.is_source
                st.is_sink = s.is_sink
                st.selectivity = s.selectivity
                st.pinned_site = s.pinned_site
                tag = read_tag[s.name]
                sites_sorted = sorted(placements[s.name])
                st.s0 = len(rows_l)
                for site in sites_sorted:
                    rows_l.append(in_index[(tag, s.name, site)])
                    row_keys.append((s.name, site))
                    site_ids_l.append(site_id[site])
                    ntasks_l.append(float(placements[s.name][site]))
                    cost_l.append(s.cost)
                    sel_l.append(s.selectivity)
                st.s1 = len(rows_l)
                st.gen_row = (
                    in_index[("gen", s.name, s.pinned_site)]
                    if s.is_source and s.pinned_site is not None
                    else None
                )
                requeue_mult = 0
                for down in downstream[s.name]:
                    dplace = placements[down.name]
                    total = sum(dplace.values())
                    if total <= 0:
                        requeue_mult += 1
                        continue
                    start = len(loc)
                    for pos, src_site in enumerate(sites_sorted):
                        for dst_site in sorted(dplace):
                            frac = dplace[dst_site] / total
                            if dst_site == src_site:
                                loc.append((
                                    st.s0 + pos,
                                    in_index[("input", down.name, dst_site)],
                                    frac,
                                ))
                            else:
                                rem.append((
                                    st.s0 + pos,
                                    net_index[
                                        (s.name, down.name, src_site, dst_site)
                                    ],
                                    frac,
                                ))
                    if len(loc) > start:
                        loc_groups.append((down.name, start, len(loc)))
                st.requeue_mult = requeue_mult
                mult_l.extend([float(requeue_mult)] * (st.s1 - st.s0))
                for key in flows_by_src.get(s.name, []):
                    flows_group.append((key, s.output_event_bytes))
                g.stages.append(st)
                if st.is_source:
                    self.sources.append(st)

            g.rows = np.array(rows_l, dtype=np.intp)
            g.row_keys = row_keys
            g.site_ids = np.array(site_ids_l, dtype=np.intp)
            g.n_tasks = np.array(ntasks_l)
            g.cost_row = np.array(cost_l)
            g.sel_col = np.array(sel_l)[:, None]
            mult_arr = np.array(mult_l)
            g.has_requeue = bool((mult_arr > 0.0).any())
            g.mult_col = mult_arr[:, None]
            if loc:
                g.loc_src = np.array([p for p, _, _ in loc], dtype=np.intp)
                g.loc_frac = np.array([f for _, _, f in loc])[:, None]
                dst = np.array([r for _, r, _ in loc], dtype=np.intp)
                g.loc_flat = (dst[:, None] * B + bucket_idx).ravel()
                g.loc_groups = loc_groups
            else:
                g.loc_src = None
                g.loc_frac = None
                g.loc_flat = None
                g.loc_groups = []
            if rem:
                g.rem_src = np.array([p for p, _, _ in rem], dtype=np.intp)
                g.rem_frac = np.array([f for _, _, f in rem])[:, None]
                dst = np.array([r for _, r, _ in rem], dtype=np.intp)
                g.rem_flat = (dst[:, None] * B + bucket_idx).ravel()
            else:
                g.rem_src = None
                g.rem_frac = None
                g.rem_flat = None

            # FCFS passes over the group's flows in stage-major, key-sorted
            # order - exactly the order in which the reference backend
            # consumes shared link budgets.
            per_link_pos: dict[int, int] = {}
            grouped: list[
                list[tuple[tuple[str, str, str, str], int, float]]
            ] = []
            for key, eb in flows_group:
                li = link_id(key[2], key[3])
                pos = per_link_pos.get(li, 0)
                per_link_pos[li] = pos + 1
                if pos == len(grouped):
                    grouped.append([])
                grouped[pos].append((key, li, eb))
            g.flow_rows_all = np.array(
                [net_index[k] for k, _ in flows_group], dtype=np.intp
            )
            g.flow_dst_all = [k[1] for k, _ in flows_group]
            g.passes = []
            for entries in grouped:
                ps = _FlowPass()
                ps.flow_keys = [k for k, _, _ in entries]
                ps.flow_rows = np.array(
                    [net_index[k] for k, _, _ in entries], dtype=np.intp
                )
                ps.link_ids = np.array(
                    [li for _, li, _ in entries], dtype=np.intp
                )
                lat = np.array([
                    topology.latency_ms(k[2], k[3]) / 1000.0
                    for k, _, _ in entries
                ])
                ps.lat_s = lat[:, None]
                eb_arr = np.array([e for _, _, e in entries])
                ps.eb = eb_arr
                ps.inv_eb = 1.0 / eb_arr
                dst_rows = np.array(
                    [in_index[("input", k[1], k[3])] for k, _, _ in entries],
                    dtype=np.intp,
                )
                shift = np.floor(lat / dt + 0.5).astype(np.intp)[:, None]
                shifted = np.minimum(bucket_idx[None, :] + shift, B - 1)
                ps.dst_flat = (dst_rows[:, None] * B + shifted).ravel()
                ps.dst_stages = [k[1] for k, _, _ in entries]
                # Contiguous per-destination-stage slices for arrived
                # accounting (destinations group within the sorted order).
                pgroups: list[tuple[str, int, int]] = []
                for j, dst_stage in enumerate(ps.dst_stages):
                    if pgroups and pgroups[-1][0] == dst_stage:
                        pgroups[-1] = (dst_stage, pgroups[-1][1], j + 1)
                    else:
                        pgroups.append((dst_stage, j, j + 1))
                ps.dst_groups = pgroups
                g.passes.append(ps)

            self.groups.append(g)
        self.links = links
        self.link_base = np.array(link_base) if links else np.empty(0)
        self.link_local = link_local


class DenseEngineRuntime(EngineRuntime):
    """Engine runtime executing ticks on the dense SoA representation.

    Drop-in replacement for :class:`EngineRuntime`: the mutation and
    inspection APIs operate on the dict-of-FluidQueue state (synced out on
    demand), while :meth:`tick` runs entirely on arrays.
    """

    def __init__(
        self,
        topology: Topology,
        plan: PhysicalPlan,
        workload: WorkloadModel,
        config: WaspConfig | None = None,
        *,
        degrade_slo_s: float | None = None,
    ) -> None:
        super().__init__(
            topology, plan, workload, config, degrade_slo_s=degrade_slo_s
        )
        self._B = int(self._config.dense_age_buckets)
        self._model: _DenseModel | None = None
        self._in_cnt: np.ndarray | None = None
        self._in_mass: np.ndarray | None = None
        self._net_cnt: np.ndarray | None = None
        self._net_mass: np.ndarray | None = None
        self._in_cnt_sc: np.ndarray | None = None
        self._in_mass_sc: np.ndarray | None = None
        self._net_cnt_sc: np.ndarray | None = None
        self._net_mass_sc: np.ndarray | None = None
        #: True while the arrays hold the authoritative queue state.
        self._arrays_live = False
        #: True while the dict queues mirror the arrays (or are themselves
        #: authoritative).
        self._dicts_fresh = True
        #: Cached per-tick link budget base ``base * factor * bytes``; keyed
        #: on (model identity, topology factors version).
        self._lb_cache: tuple[_DenseModel, int, np.ndarray] | None = None

    # ----------------------------- sync ------------------------------- #

    def _ensure_model(self) -> _DenseModel:
        plan = self._plan
        model = self._model
        if (
            model is None
            or model.plan is not plan
            or model.version != plan.mutation_version()
        ):
            if self._arrays_live and not self._dicts_fresh:
                self._sync_out()
            model = _DenseModel(
                plan,
                self._topology,
                self._gen_queue,
                self._input_queue,
                self._net_queue,
                self._B,
                self._config.tick_s,
            )
            self._model = model
            self._sync_in(model)
        elif not self._arrays_live:
            self._sync_in(model)
        return model

    def _sync_in(self, model: _DenseModel) -> None:
        """Load the dict queues into fresh arrays (dicts stay valid)."""
        B = model.B
        dt = model.dt
        now = self._now_s
        self._in_cnt = np.zeros((model.n_in, B))
        self._in_mass = np.zeros((model.n_in, B))
        self._net_cnt = np.zeros((model.n_net, B))
        self._net_mass = np.zeros((model.n_net, B))
        self._in_cnt_sc = np.empty_like(self._in_cnt)
        self._in_mass_sc = np.empty_like(self._in_mass)
        self._net_cnt_sc = np.empty_like(self._net_cnt)
        self._net_mass_sc = np.empty_like(self._net_mass)
        for i, (tag, stage, site) in enumerate(model.in_rows):
            table = self._gen_queue if tag == "gen" else self._input_queue
            queue = table.get((stage, site))
            if queue is None or not queue:
                continue
            crow = self._in_cnt[i]
            mrow = self._in_mass[i]
            for p in queue.parcels():
                b = int((now - p.gen_time_s) / dt)
                if b < 0:
                    b = 0
                elif b >= B:
                    b = B - 1
                crow[b] += p.count
                mrow[b] += p.count * p.gen_time_s
        for i, key in enumerate(model.net_rows):
            queue = self._net_queue.get(key)
            if queue is None or not queue:
                continue
            crow = self._net_cnt[i]
            mrow = self._net_mass[i]
            for p in queue.parcels():
                b = int((now - p.gen_time_s) / dt)
                if b < 0:
                    b = 0
                elif b >= B:
                    b = B - 1
                crow[b] += p.count
                mrow[b] += p.count * p.gen_time_s
        self._arrays_live = True
        self._dicts_fresh = True

    def _sync_out(self) -> None:
        """Materialize the arrays back into dict queues (arrays stay valid).

        Rows are materialized when non-empty or *persistent* (placement
        read rows and keys that already existed at compile time), which
        keeps the dict key set deterministic within the dense backend.
        Parcels are emitted oldest bucket first at each bucket's mean
        generation time.
        """
        model = self._model
        assert model is not None
        B = model.B
        new_gen: dict[tuple[str, str], FluidQueue] = {}
        new_inp: dict[tuple[str, str], FluidQueue] = {}
        totals = self._in_cnt.sum(axis=1).tolist()
        persistent = model.in_persistent
        for i, (tag, stage, site) in enumerate(model.in_rows):
            total = totals[i]
            if total <= 0.0 and not persistent[i]:
                continue
            queue = FluidQueue()
            if total > 0.0:
                crow = self._in_cnt[i].tolist()
                mrow = self._in_mass[i].tolist()
                for b in range(B - 1, -1, -1):
                    cb = crow[b]
                    if cb > 0.0:
                        queue.push(cb, mrow[b] / cb)
            if tag == "gen":
                new_gen[(stage, site)] = queue
            else:
                new_inp[(stage, site)] = queue
        new_net: dict[tuple[str, str, str, str], FluidQueue] = {}
        totals = self._net_cnt.sum(axis=1).tolist()
        persistent = model.net_persistent
        for i, key in enumerate(model.net_rows):
            total = totals[i]
            if total <= 0.0 and not persistent[i]:
                continue
            queue = FluidQueue()
            if total > 0.0:
                crow = self._net_cnt[i].tolist()
                mrow = self._net_mass[i].tolist()
                for b in range(B - 1, -1, -1):
                    cb = crow[b]
                    if cb > 0.0:
                        queue.push(cb, mrow[b] / cb)
            new_net[key] = queue
        self._gen_queue = new_gen
        self._input_queue = new_inp
        self._net_queue = new_net
        self._rebuild_net_index()
        self._dicts_fresh = True

    def _ensure_dicts(self) -> None:
        if self._arrays_live and not self._dicts_fresh:
            self._sync_out()

    def _invalidate(self) -> None:
        """Hand authority back to the dicts before a queue mutation."""
        self._ensure_dicts()
        self._arrays_live = False
        self._dicts_fresh = True
        self._model = None

    def _roll(self) -> None:
        """Age every bucket by one tick (the oldest bucket accumulates)."""
        B = self._B
        for attr, scr in (
            ("_in_cnt", "_in_cnt_sc"),
            ("_in_mass", "_in_mass_sc"),
            ("_net_cnt", "_net_cnt_sc"),
            ("_net_mass", "_net_mass_sc"),
        ):
            cur = getattr(self, attr)
            nxt = getattr(self, scr)
            nxt[:, 0] = 0.0
            nxt[:, 1 : B - 1] = cur[:, 0 : B - 2]
            nxt[:, B - 1] = cur[:, B - 1] + cur[:, B - 2]
            setattr(self, attr, nxt)
            setattr(self, scr, cur)

    # ------------------------- inspection API -------------------------- #

    def input_backlog(self, stage_name: str, site: str | None = None) -> float:
        self._ensure_dicts()
        return super().input_backlog(stage_name, site)

    def net_backlog_for(self, dst_stage: str) -> dict[tuple[str, str], float]:
        self._ensure_dicts()
        return super().net_backlog_for(dst_stage)

    def total_backlog(self) -> float:
        self._ensure_dicts()
        return super().total_backlog()

    def iter_queues(self):
        self._ensure_dicts()
        yield from super().iter_queues()

    def mutation_snapshot(self):
        self._ensure_dicts()
        return super().mutation_snapshot()

    # -------------------------- mutation API --------------------------- #

    def move_task_queue(self, stage_name, from_site, to_site):
        self._invalidate()
        super().move_task_queue(stage_name, from_site, to_site)

    def redirect_flows(self, stage_name, from_site, to_site):
        self._invalidate()
        super().redirect_flows(stage_name, from_site, to_site)

    def relay_queue(self, stage_name, from_site, to_site):
        self._invalidate()
        super().relay_queue(stage_name, from_site, to_site)

    def rehome_to_placement(self, stage_name, bandwidth_rank=None):
        self._invalidate()
        super().rehome_to_placement(stage_name, bandwidth_rank)

    def inject_replay(self, stage_name, site, events, gen_time_s):
        self._invalidate()
        super().inject_replay(stage_name, site, events, gen_time_s)

    def restore_mutation_snapshot(self, snapshot):
        # The restore overwrites the dict state wholesale; the current
        # array contents are irrelevant and must not be synced out first.
        self._arrays_live = False
        self._dicts_fresh = True
        self._model = None
        super().restore_mutation_snapshot(snapshot)

    def replace_plan(self, new_plan):
        self._invalidate()
        super().replace_plan(new_plan)

    # ------------------------------ tick ------------------------------- #

    def tick(
        self, link_budget: dict[tuple[str, str], float] | None = None
    ) -> TickReport:
        dt = self._config.tick_s
        now = self._now_s + dt
        report = TickReport(t_s=now)
        if link_budget is None:
            link_budget = {}

        model = self._ensure_model()
        B = model.B
        self._roll()
        in_cnt = self._in_cnt
        in_mass = self._in_mass
        net_cnt = self._net_cnt
        net_mass = self._net_mass
        in_cnt_f = in_cnt.reshape(-1)
        in_mass_f = in_mass.reshape(-1)
        net_cnt_f = net_cnt.reshape(-1)
        net_mass_f = net_mass.reshape(-1)
        in_size = in_cnt_f.shape[0]
        net_size = net_cnt_f.shape[0]

        # Per-tick environment reads: site health/rates and link budgets.
        site_rate = np.fromiter(
            (
                0.0 if s.failed else s.effective_proc_rate_eps
                for s in model.sites
            ),
            dtype=np.float64,
            count=len(model.sites),
        )
        n_links = len(model.links)
        if n_links:
            fver = self._topology._factors_version
            cache = self._lb_cache
            if cache is None or cache[0] is not model or cache[1] != fver:
                factors = self._topology._factors
                gfac = self._topology._global_factor
                fac = np.fromiter(
                    (
                        1.0 if local else factors.get(link, gfac)
                        for link, local in zip(model.links, model.link_local)
                    ),
                    dtype=np.float64,
                    count=n_links,
                )
                lb_base = model.link_base * fac * (MBIT_BYTES * dt)
                self._lb_cache = (model, fver, lb_base)
            else:
                lb_base = cache[2]
            lb = lb_base.copy()
            touched = np.zeros(n_links, dtype=bool)
            if link_budget:
                for i, link in enumerate(model.links):
                    existing = link_budget.get(link)
                    if existing is not None:
                        lb[i] = existing
        else:
            lb = None
            touched = None

        # 1. External generation (mean age dt/2 -> bucket 0).
        mean_gen = now - dt * 0.5
        offered = 0.0
        offered_by_source = report.offered_by_source
        for st in model.sources:
            if st.pinned_site is None:
                raise SimulationError(
                    f"source stage {st.name!r} has no pinned site"
                )
            gen = self._workload.generation_eps(st.name, now) * dt
            if gen > 0.0:
                flat = st.gen_row * B
                in_cnt_f[flat] += gen
                in_mass_f[flat] += gen * mean_gen
            offered += gen
            offered_by_source[st.name] = gen
        report.offered = offered

        # 2. Stage execution + transfers in topological order (sub-tick
        # pipelining, like the reference).
        slo = self._degrade_slo_s
        cutoff = (now - slo) if slo is not None else None
        prev_now = self._now_s
        suspended_until = self._suspended_until
        cap_by_site = report.capacity_by_site
        proc_by_site = report.processed_by_site
        arrived = report.arrived
        net_sent = report.net_sent

        for g in model.groups:
            rows = g.rows
            if rows.size:
                if cutoff is not None:
                    dropped = _drop_older_rows(in_cnt, in_mass, rows, cutoff)
                    if dropped.any():
                        dlist = dropped.tolist()
                        for st in g.stages:
                            # Built-in sum is left-to-right: the reference's
                            # per-site accumulation order.
                            dv = sum(dlist[st.s0:st.s1])
                            if dv > 0.0:
                                report.dropped_source_equiv += (
                                    self._to_source_equiv(st.name, dv)
                                )
                                report.dropped_raw_input[st.name] = (
                                    report.dropped_raw_input.get(st.name, 0.0)
                                    + dv
                                )
                caps = g.n_tasks * site_rate[g.site_ids] / g.cost_row * dt
                if suspended_until:
                    for st in g.stages:
                        if prev_now < suspended_until.get(st.name, 0.0):
                            caps[st.s0:st.s1] = 0.0
                take_c, take_m, popped, _ = _pop_rows(
                    in_cnt, in_mass, rows, caps
                )
                cap_by_site.update(zip(g.row_keys, caps.tolist()))
                plist = popped.tolist()
                any_routed = False
                for st in g.stages:
                    stage_processed = 0.0
                    for key, proc in zip(
                        g.row_keys[st.s0:st.s1], plist[st.s0:st.s1]
                    ):
                        if proc > 0.0:
                            proc_by_site[key] = proc
                            stage_processed += proc
                    if stage_processed <= 0.0:
                        continue
                    report.processed[st.name] = stage_processed
                    sel = st.selectivity
                    if st.is_sink:
                        tc = float(take_c[st.s0:st.s1].sum())
                        tm = float(take_m[st.s0:st.s1].sum())
                        report.sink_events += sel * tc
                        report.sink_delay_weighted_s += sel * (now * tc - tm)
                    else:
                        report.emitted[st.name] = sel * stage_processed
                        any_routed = True
                        if st.requeue_mult and sel != 0.0:
                            report.requeued[st.name] = (
                                report.requeued.get(st.name, 0.0)
                                + st.requeue_mult * sel * stage_processed
                            )
                if any_routed:
                    # Fan-out for the whole group at once: rows belonging
                    # to sinks or sel == 0 stages contribute exact zeros.
                    out_c = take_c * g.sel_col
                    out_m = take_m * g.sel_col
                    if g.has_requeue:
                        in_cnt[rows] += out_c * g.mult_col
                        in_mass[rows] += out_m * g.mult_col
                    if g.loc_src is not None:
                        contrib = out_c[g.loc_src] * g.loc_frac
                        in_cnt_f += np.bincount(
                            g.loc_flat,
                            weights=contrib.ravel(),
                            minlength=in_size,
                        )
                        in_mass_f += np.bincount(
                            g.loc_flat,
                            weights=(out_m[g.loc_src] * g.loc_frac).ravel(),
                            minlength=in_size,
                        )
                        for dname, s0, s1 in g.loc_groups:
                            moved = float(contrib[s0:s1].sum())
                            if moved > 0.0:
                                arrived[dname] = (
                                    arrived.get(dname, 0.0) + moved
                                )
                    if g.rem_src is not None:
                        net_cnt_f += np.bincount(
                            g.rem_flat,
                            weights=(out_c[g.rem_src] * g.rem_frac).ravel(),
                            minlength=net_size,
                        )
                        net_mass_f += np.bincount(
                            g.rem_flat,
                            weights=(out_m[g.rem_src] * g.rem_frac).ravel(),
                            minlength=net_size,
                        )

            # --- transfers of this group's outgoing flows --------------- #
            if not g.passes:
                continue
            frows = g.flow_rows_all
            if cutoff is not None and frows.size:
                fdropped = _drop_older_rows(net_cnt, net_mass, frows, cutoff)
                if fdropped.any():
                    for dst_stage, dv in zip(
                        g.flow_dst_all, fdropped.tolist()
                    ):
                        if dv > 0.0:
                            report.dropped_source_equiv += (
                                self._to_source_equiv(dst_stage, dv)
                            )
                            report.dropped_raw_net[dst_stage] = (
                                report.dropped_raw_net.get(dst_stage, 0.0)
                                + dv
                            )
            for ps in g.passes:
                caps = np.maximum(lb[ps.link_ids] * ps.inv_eb, 0.0)
                take_c, take_m, moved, before = _pop_rows(
                    net_cnt, net_mass, ps.flow_rows, caps
                )
                nonempty = before > 0.0
                if not nonempty.any():
                    continue
                touched[ps.link_ids[nonempty]] = True
                lb[ps.link_ids] -= moved * ps.eb
                # Aging by link latency: the destination mass is
                # sum(c * (gen - latency)); the bucket shift in dst_flat
                # is the rounded equivalent for ordering purposes.
                take_m -= ps.lat_s * take_c
                in_cnt_f += np.bincount(
                    ps.dst_flat, weights=take_c.ravel(), minlength=in_size
                )
                in_mass_f += np.bincount(
                    ps.dst_flat, weights=take_m.ravel(), minlength=in_size
                )
                # Each flow key appears in exactly one pass, so a plain
                # assignment per key accumulates correctly across the tick.
                mv_list = moved.tolist()
                if (moved > 0.0).all():
                    net_sent.update(zip(ps.flow_keys, mv_list))
                else:
                    net_sent.update(
                        (key, mv)
                        for key, mv in zip(ps.flow_keys, mv_list)
                        if mv > 0.0
                    )
                for dname, s0, s1 in ps.dst_groups:
                    # Built-in sum is left-to-right, preserving the
                    # reference's per-flow accumulation order.
                    mvd = sum(mv_list[s0:s1])
                    if mvd > 0.0:
                        arrived[dname] = arrived.get(dname, 0.0) + mvd

        # 3. End-of-tick backlogs.
        in_tot = in_cnt.sum(axis=1)
        nz = np.nonzero(in_tot > 0.0)[0]
        if nz.size:
            input_backlog = report.input_backlog
            vals = in_tot[nz].tolist()
            for i, v in zip(nz.tolist(), vals):
                _tag, stage, site = model.in_rows[i]
                key = (stage, site)
                input_backlog[key] = input_backlog.get(key, 0.0) + v
        net_tot = net_cnt.sum(axis=1)
        nz = np.nonzero(net_tot > 0.0)[0]
        if nz.size:
            net_backlog = report.net_backlog
            vals = net_tot[nz].tolist()
            for i, v in zip(nz.tolist(), vals):
                net_backlog[model.net_rows[i]] = v

        # Write back consumed link budgets (shared-contention contract).
        if touched is not None and touched.any():
            lb_list = lb.tolist()
            for i in np.nonzero(touched)[0].tolist():
                link_budget[model.links[i]] = lb_list[i]

        self._now_s = now
        self.last_report = report
        self._arrays_live = True
        self._dicts_fresh = False
        return report


def create_runtime(
    topology: Topology,
    plan: PhysicalPlan,
    workload: WorkloadModel,
    config: WaspConfig | None = None,
    *,
    degrade_slo_s: float | None = None,
    backend: str | None = None,
) -> EngineRuntime:
    """Build an engine runtime for the configured backend.

    ``backend`` overrides ``config.engine_backend`` when given.
    """
    cfg = config or WaspConfig.paper_defaults()
    name = backend or cfg.engine_backend
    if name == "dense":
        return DenseEngineRuntime(
            topology, plan, workload, cfg, degrade_slo_s=degrade_slo_s
        )
    if name == "reference":
        return EngineRuntime(
            topology, plan, workload, cfg, degrade_slo_s=degrade_slo_s
        )
    raise ConfigurationError(
        f"unknown engine backend {name!r} (expected 'reference' or 'dense')"
    )

"""Localized checkpointing (Section 5).

Conventional engines checkpoint task state to a *rendezvous* store (HDFS),
which in a wide-area deployment means shipping every snapshot over the WAN.
WASP instead checkpoints each task's state **locally** (or to nearby
storage); only when a task is migrated to a different site does the
Checkpoint Coordinator initiate a state transfer, and the task resumes only
after the transfer completes.

The coordinator here tracks, per stage and site, the size and age of the
latest local snapshot, and answers the two questions the controller asks:

* how much data must cross the WAN to move a task from site A to site B
  (``migration_mb``), and
* how much progress is lost if state is abandoned instead (``staleness``) -
  the "No Migrate" baseline of Section 8.7.1 pays this in accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import CheckpointError
from .state import StateStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.events import EventBus


@dataclass(frozen=True)
class CheckpointRecord:
    """Latest completed local snapshot for one (stage, site) pair."""

    stage_name: str
    site: str
    size_mb: float
    taken_at_s: float


class CheckpointCoordinator:
    """Takes periodic local snapshots of every stateful stage's partitions."""

    def __init__(
        self,
        store: StateStore,
        interval_s: float = 30.0,
        *,
        obs: "EventBus | None" = None,
    ) -> None:
        if interval_s <= 0:
            raise CheckpointError(f"interval_s must be > 0, got {interval_s}")
        self._store = store
        self._interval_s = float(interval_s)
        self._records: dict[tuple[str, str], CheckpointRecord] = {}
        self._last_checkpoint_s = float("-inf")
        #: Optional event bus (repro.obs); checkpoint rounds are announced
        #: only while a sink is attached.
        self.obs = obs

    @property
    def interval_s(self) -> float:
        return self._interval_s

    @property
    def last_checkpoint_s(self) -> float:
        return self._last_checkpoint_s

    def checkpoint_all(
        self, now_s: float, *, skip_sites: frozenset[str] | set[str] = frozenset()
    ) -> list[CheckpointRecord]:
        """Snapshot every partition locally; returns the records written.

        ``skip_sites`` (typically the currently-failed sites) keep their
        previous snapshot: a failed site cannot take a checkpoint, and its
        stale record is exactly what recovery will restore from.
        """
        written: list[CheckpointRecord] = []
        for stage_name in self._store.stage_names():
            site_mb: dict[str, float] = {}
            for part in self._store.partitions(stage_name):
                site_mb[part.site] = site_mb.get(part.site, 0.0) + part.size_mb
            for site, mb in site_mb.items():
                if site in skip_sites:
                    continue
                record = CheckpointRecord(stage_name, site, mb, now_s)
                self._records[(stage_name, site)] = record
                written.append(record)
        self._last_checkpoint_s = now_s
        if self.obs:
            from ..obs.events import Checkpoint

            self.obs.emit(
                Checkpoint(
                    now_s,
                    records=len(written),
                    total_mb=sum(r.size_mb for r in written),
                    skipped_sites=sorted(skip_sites),
                )
            )
        return written

    def maybe_checkpoint(
        self, now_s: float, *, skip_sites: frozenset[str] | set[str] = frozenset()
    ) -> list[CheckpointRecord]:
        """Checkpoint if a full interval has elapsed since the last one."""
        if now_s - self._last_checkpoint_s + 1e-9 >= self._interval_s:
            return self.checkpoint_all(now_s, skip_sites=skip_sites)
        return []

    def record(self, stage_name: str, site: str) -> CheckpointRecord | None:
        return self._records.get((stage_name, site))

    def migration_mb(self, stage_name: str, from_site: str) -> float:
        """MB that must cross the WAN to move the partition at ``from_site``.

        Uses the live partition size (the checkpoint is brought up to date
        before a migration) rather than the possibly-stale snapshot.
        """
        return self._store.mb_at_site(stage_name, from_site)

    def staleness_s(self, stage_name: str, site: str, now_s: float) -> float:
        """Age of the newest local snapshot (infinite if none exists)."""
        record = self._records.get((stage_name, site))
        if record is None:
            return float("inf")
        return now_s - record.taken_at_s

    def forget_site(self, stage_name: str, site: str) -> None:
        """Drop records for a partition that moved away or was discarded."""
        self._records.pop((stage_name, site), None)

    def forget_all_at_site(self, site: str) -> list[str]:
        """Drop every stage's snapshot at ``site`` (checkpoint-loss fault).

        Returns the stages that lost a record; their recovery falls back to
        replaying from t=0 (staleness becomes infinite).
        """
        lost = [
            stage for (stage, s) in list(self._records) if s == site
        ]
        for stage in lost:
            self._records.pop((stage, site), None)
        return sorted(lost)

    def snapshot_records(self) -> dict[tuple[str, str], CheckpointRecord]:
        """Copy of the record table (records are frozen, shallow is exact)."""
        return dict(self._records)

    def restore_records(
        self, snapshot: dict[tuple[str, str], CheckpointRecord]
    ) -> None:
        """Restore a :meth:`snapshot_records` (adaptation rollback)."""
        self._records = dict(snapshot)

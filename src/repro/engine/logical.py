"""Logical query plans.

A logical plan is a directed acyclic graph whose vertices are stream
operators and whose edges are data flows (Section 2.1).  The plan knows
nothing about parallelism or placement - that is the physical plan's job
(:mod:`repro.engine.physical`).

Plans carry *signatures* for their sub-plans so the re-planner can detect
common sub-plans between alternative plans (Section 4.3): a new plan may only
replace a running one if every stateful operator's sub-plan also occurs in
the new plan, because only then can the new instances restore the old state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import CycleError, PlanError
from .operators import OperatorSpec


@dataclass
class LogicalPlan:
    """An immutable-after-validation DAG of operators.

    Build with :class:`LogicalPlanBuilder` or :meth:`from_edges`; plans
    validate on construction and expose topological traversal, reachability
    and sub-plan signatures.
    """

    name: str
    operators: dict[str, OperatorSpec]
    edges: list[tuple[str, str]]
    _upstream: dict[str, list[str]] = field(default_factory=dict, repr=False)
    _downstream: dict[str, list[str]] = field(default_factory=dict, repr=False)
    _topo_order: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._validate_edges()
        self._upstream = {name: [] for name in self.operators}
        self._downstream = {name: [] for name in self.operators}
        for src, dst in self.edges:
            self._downstream[src].append(dst)
            self._upstream[dst].append(src)
        self._topo_order = self._topological_order()
        self._validate_roles()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        name: str,
        operators: Iterable[OperatorSpec],
        edges: Iterable[tuple[str, str]],
    ) -> "LogicalPlan":
        op_map: dict[str, OperatorSpec] = {}
        for op in operators:
            if op.name in op_map:
                raise PlanError(f"duplicate operator name: {op.name!r}")
            op_map[op.name] = op
        return cls(name=name, operators=op_map, edges=list(edges))

    def _validate_edges(self) -> None:
        seen: set[tuple[str, str]] = set()
        for src, dst in self.edges:
            if src not in self.operators:
                raise PlanError(f"edge references unknown operator {src!r}")
            if dst not in self.operators:
                raise PlanError(f"edge references unknown operator {dst!r}")
            if src == dst:
                raise PlanError(f"self-loop on operator {src!r}")
            if (src, dst) in seen:
                raise PlanError(f"duplicate edge {src!r} -> {dst!r}")
            seen.add((src, dst))

    def _topological_order(self) -> list[str]:
        in_degree = {name: len(self._upstream[name]) for name in self.operators}
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self._downstream[node]):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.operators):
            raise CycleError(f"plan {self.name!r} contains a cycle")
        return order

    def _validate_roles(self) -> None:
        for name, op in self.operators.items():
            ups, downs = self._upstream[name], self._downstream[name]
            if op.is_source and ups:
                raise PlanError(f"source {name!r} must not have inputs")
            if not op.is_source and not ups:
                raise PlanError(f"non-source {name!r} has no inputs")
            if op.is_sink and downs:
                raise PlanError(f"sink {name!r} must not have outputs")
            if not op.is_sink and not downs:
                raise PlanError(f"non-sink {name!r} has no outputs")
        if not any(op.is_source for op in self.operators.values()):
            raise PlanError(f"plan {self.name!r} has no sources")
        if not any(op.is_sink for op in self.operators.values()):
            raise PlanError(f"plan {self.name!r} has no sinks")

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #

    def topological(self) -> list[OperatorSpec]:
        return [self.operators[name] for name in self._topo_order]

    def upstream(self, name: str) -> list[OperatorSpec]:
        return [self.operators[u] for u in self._upstream[self._check(name)]]

    def downstream(self, name: str) -> list[OperatorSpec]:
        return [self.operators[d] for d in self._downstream[self._check(name)]]

    def sources(self) -> list[OperatorSpec]:
        return [op for op in self.topological() if op.is_source]

    def sinks(self) -> list[OperatorSpec]:
        return [op for op in self.topological() if op.is_sink]

    def stateful_operators(self) -> list[OperatorSpec]:
        return [op for op in self.topological() if op.stateful]

    def __contains__(self, name: str) -> bool:
        return name in self.operators

    def __iter__(self) -> Iterator[OperatorSpec]:
        return iter(self.topological())

    def _check(self, name: str) -> str:
        if name not in self.operators:
            raise PlanError(f"unknown operator {name!r} in plan {self.name!r}")
        return name

    # ------------------------------------------------------------------ #
    # Rate propagation and selectivity
    # ------------------------------------------------------------------ #

    def propagate_rates(self, source_rates: dict[str, float]) -> dict[str, float]:
        """Expected *output* rate of every operator given source output rates.

        This is the lambda-hat recursion of Section 3.3 applied to the plan
        structure: an operator's expected input is the sum of its upstreams'
        expected outputs, and its expected output is ``sigma`` times that.
        """
        rates: dict[str, float] = {}
        for op in self.topological():
            if op.is_source:
                rates[op.name] = float(source_rates.get(op.name, 0.0))
            else:
                inflow = sum(rates[u.name] for u in self.upstream(op.name))
                rates[op.name] = inflow * op.selectivity
        return rates

    def plan_selectivity(
        self, source_weights: dict[str, float] | None = None
    ) -> float:
        """Sink-output events per source event.

        Used to convert sink arrivals back into source-equivalents for the
        processing-ratio metric (Section 8.3).  When sources carry very
        different rates (YSB's ad streams vs its campaign trickle), pass
        ``source_weights`` (relative rates) so the conversion reflects the
        actual stream mix; unit weights are assumed otherwise.
        """
        weights = {
            op.name: (
                source_weights.get(op.name, 0.0)
                if source_weights is not None
                else 1.0
            )
            for op in self.sources()
        }
        total_weight = sum(weights.values())
        if total_weight <= 0:
            weights = {op.name: 1.0 for op in self.sources()}
            total_weight = float(len(weights))
        rates = self.propagate_rates(weights)
        total_sink = sum(rates[s.name] for s in self.sinks())
        return total_sink / total_weight

    # ------------------------------------------------------------------ #
    # Sub-plan signatures (Section 4.3 safety)
    # ------------------------------------------------------------------ #

    def subplan_signature(self, name: str) -> str:
        """A structural hash of the sub-plan rooted (downstream-wards) at
        ``name``: the operator itself plus everything upstream of it.

        Two operators in different plans with equal signatures compute the
        same function of the same sources, so state is transferable between
        them.  Pinned source sites participate in the signature because state
        semantics depend on which streams feed the operator.
        """
        self._check(name)
        memo: dict[str, str] = {}

        def sig(op_name: str) -> str:
            if op_name in memo:
                return memo[op_name]
            op = self.operators[op_name]
            upstream_sigs = sorted(sig(u.name) for u in self.upstream(op_name))
            payload = "|".join(
                [
                    op.kind.value,
                    f"{op.selectivity:.6g}",
                    f"{op.window_s:.6g}",
                    op.keyed_by,
                    op.pinned_site or "",
                    *upstream_sigs,
                ]
            )
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            memo[op_name] = digest
            return digest

        return sig(name)

    def stateful_signatures(self) -> dict[str, str]:
        """Signatures of all stateful operators, keyed by operator name."""
        return {
            op.name: self.subplan_signature(op.name)
            for op in self.stateful_operators()
        }


def can_replace_preserving_state(
    current: LogicalPlan,
    candidate: LogicalPlan,
    *,
    allow_window_boundary: bool = True,
) -> bool:
    """Section 4.3: is switching from ``current`` to ``candidate`` safe?

    A switch preserves results when every stateful sub-plan of the running
    plan also occurs in the candidate (the new instances can then fully
    recover the maintained state) and, symmetrically, the candidate
    introduces no stateful operator that would have to start from empty
    state mid-stream.

    The paper's relaxation: an operator that maintains "a short and finite
    state" bounded by a tumbling window can be reconfigured at the end of the
    window interval when its state is re-initialized anyway.  With
    ``allow_window_boundary`` (the default), windowed stateful operators are
    therefore exempt from the common-sub-plan requirement; the scheduler pays
    for the exemption by deferring the switch to the next window boundary.
    """

    def binding_signatures(plan: LogicalPlan) -> set[str]:
        sigs = set()
        for op in plan.stateful_operators():
            if allow_window_boundary and op.window_s > 0:
                continue
            sigs.add(plan.subplan_signature(op.name))
        return sigs

    return binding_signatures(current) == binding_signatures(candidate)

"""Operator state tracking.

Stateful operators (windowed aggregations, joins, top-k) maintain per-task
processing state: intermediate aggregation results, source offsets, hash
tables (Section 5).  The reproduction tracks state as sized partitions
located at sites; balanced event partitioning (Section 7) keeps partitions
equal-sized, so scaling an operator from ``p`` to ``p'`` tasks shrinks the
per-task partition to ``|state| / p'`` - the property state partitioning
exploits to cut migration time (Sections 6.2 and 8.7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StateError


@dataclass
class StatePartition:
    """One task's slice of an operator's state, resident at a site."""

    stage_name: str
    site: str
    size_mb: float

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise StateError(
                f"state partition for {self.stage_name!r} at {self.site!r}: "
                f"size must be >= 0, got {self.size_mb}"
            )


class StateStore:
    """Locations and sizes of every stage's state partitions.

    The store intentionally mirrors *deployment*, not content: one partition
    per task, co-located with the task (WASP stores every state locally,
    Section 5).  Re-balancing after scaling redistributes sizes evenly.
    """

    def __init__(self) -> None:
        self._partitions: dict[str, list[StatePartition]] = {}

    def initialize_stage(
        self, stage_name: str, total_mb: float, task_sites: list[str]
    ) -> None:
        """(Re-)create balanced partitions for a stage's current tasks."""
        if total_mb < 0:
            raise StateError(f"total_mb must be >= 0, got {total_mb}")
        if not task_sites:
            self._partitions[stage_name] = []
            return
        share = total_mb / len(task_sites)
        self._partitions[stage_name] = [
            StatePartition(stage_name, site, share) for site in task_sites
        ]

    def partitions(self, stage_name: str) -> list[StatePartition]:
        return list(self._partitions.get(stage_name, []))

    def total_mb(self, stage_name: str) -> float:
        return sum(p.size_mb for p in self._partitions.get(stage_name, []))

    def sites(self, stage_name: str) -> list[str]:
        return [p.site for p in self._partitions.get(stage_name, [])]

    def mb_at_site(self, stage_name: str, site: str) -> float:
        return sum(
            p.size_mb
            for p in self._partitions.get(stage_name, [])
            if p.site == site
        )

    def set_total_mb(self, stage_name: str, total_mb: float) -> None:
        """Grow/shrink a stage's state in place, keeping the partitioning."""
        parts = self._partitions.get(stage_name)
        if not parts:
            raise StateError(f"stage {stage_name!r} has no state partitions")
        share = total_mb / len(parts)
        for part in parts:
            part.size_mb = share

    def move_partition(
        self, stage_name: str, from_site: str, to_site: str
    ) -> StatePartition:
        """Relocate one partition (task migration, Section 5)."""
        parts = self._partitions.get(stage_name, [])
        for part in parts:
            if part.site == from_site:
                part.site = to_site
                return part
        raise StateError(
            f"stage {stage_name!r} has no state partition at {from_site!r}"
        )

    def rebalance(self, stage_name: str, task_sites: list[str]) -> None:
        """Repartition the stage's state evenly over the given task sites.

        Used after scale-out/scale-down: the total is preserved, the
        partition count follows the new task count.
        """
        total = self.total_mb(stage_name)
        self.initialize_stage(stage_name, total, task_sites)

    def drop_stage(self, stage_name: str) -> None:
        """Discard all state for a stage (stage removed by re-planning)."""
        self._partitions.pop(stage_name, None)

    def stage_names(self) -> list[str]:
        return sorted(self._partitions)

    def snapshot(self) -> dict[str, list[StatePartition]]:
        """Deep copy of every partition, for adaptation rollback."""
        return {
            name: [
                StatePartition(p.stage_name, p.site, p.size_mb)
                for p in parts
            ]
            for name, parts in self._partitions.items()
        }

    def restore(self, snapshot: dict[str, list[StatePartition]]) -> None:
        """Restore a :meth:`snapshot` exactly (sizes and locations)."""
        self._partitions = {
            name: [
                StatePartition(p.stage_name, p.site, p.size_mb)
                for p in parts
            ]
            for name, parts in snapshot.items()
        }

"""Backpressure analysis: observed vs actual rates (Section 3.3).

Modern engines rely on backpressure: a bottleneck operator triggers
control-rate messages that throttle its upstreams, so every rate observed
downstream of (or at) the bottleneck reflects the *throttled* stream.  The
paper's point is that sizing adaptations from those observations is wrong -
"the system should rely on the actual workload instead of the observed
information".

This module makes the distinction analytic.  Given a physical plan, source
generation rates, per-stage processing capacities and per-link bandwidth
capacities, :func:`steady_state_rates` computes the throttled fixed point:
the rates every stage would *observe* under credit-based backpressure once
queues stop growing.  Contrasting it with the plan's unthrottled
lambda-hat expectation identifies which stages lie about the workload -
and the test suite uses it to verify that the fluid engine's long-run
behaviour and the WorkloadEstimator's corrections agree with the theory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.physical import PhysicalPlan, Stage
from ..engine.runtime import MBIT_BYTES
from ..errors import SimulationError


@dataclass(frozen=True)
class StageRates:
    """Observed steady-state rates of one stage under backpressure."""

    stage: str
    input_eps: float
    processed_eps: float
    output_eps: float
    #: Fraction of the unthrottled expectation actually flowing (1 = no
    #: backpressure anywhere upstream of or at this stage).
    throughput_ratio: float


class CapacityModel:
    """Protocol: what the analysis needs to know about resources."""

    def stage_capacity_eps(self, stage: Stage) -> float:  # pragma: no cover
        raise NotImplementedError

    def link_bandwidth_mbps(self, src: str, dst: str) -> float:  # pragma: no cover
        raise NotImplementedError


class TopologyCapacityModel(CapacityModel):
    """Reads capacities from a topology (effective rates, so stragglers
    and failures are reflected)."""

    def __init__(self, topology) -> None:
        self._topology = topology

    def stage_capacity_eps(self, stage: Stage) -> float:
        total = 0.0
        for task in stage.tasks:
            site = self._topology.site(task.site)
            if site.failed:
                continue
            total += site.effective_proc_rate_eps / stage.cost
        return total

    def link_bandwidth_mbps(self, src: str, dst: str) -> float:
        return self._topology.bandwidth_mbps(src, dst)


def _link_limited_flow(
    up: Stage,
    down: Stage,
    offered_by_site: dict[str, float],
    capacities: CapacityModel,
) -> float:
    """Events/s of ``up``'s output that the WAN admits towards ``down``.

    Balanced partitioning splits each upstream site's output across the
    downstream tasks; every inter-site flow is clipped at its link capacity
    and local flows pass freely.
    """
    placement = down.placement()
    total_tasks = sum(placement.values())
    if total_tasks == 0:
        return 0.0
    event_bytes = up.output_event_bytes
    admitted = 0.0
    for src_site, offered in offered_by_site.items():
        for dst_site, count in placement.items():
            share = offered * count / total_tasks
            if src_site == dst_site:
                admitted += share
                continue
            cap_eps = (
                capacities.link_bandwidth_mbps(src_site, dst_site)
                * MBIT_BYTES
                / event_bytes
            )
            admitted += min(share, cap_eps)
    return admitted


def steady_state_rates(
    plan: PhysicalPlan,
    source_generation_eps: dict[str, float],
    capacities: CapacityModel,
) -> dict[str, StageRates]:
    """The backpressure fixed point: throttled rates per stage.

    Propagates topologically: each stage's observed input is its upstreams'
    admitted output (clipped by link capacities), its processing rate is
    clipped by compute capacity, and its output is the processed rate times
    the chained selectivity.  This is exactly what the metric monitor would
    report after queues reach their bounds - the "lie" that Section 3.3's
    lambda-hat recursion corrects.
    """
    expected = plan.expected_stage_rates(dict(source_generation_eps))
    observed: dict[str, StageRates] = {}
    out_by_site: dict[str, dict[str, float]] = {}

    for stage in plan.topological_stages():
        if stage.is_source:
            gen = float(source_generation_eps.get(stage.name, 0.0))
            capacity = capacities.stage_capacity_eps(stage)
            processed = min(gen, capacity)
            output = processed * stage.selectivity
            site = stage.pinned_site
            if site is None:
                raise SimulationError(
                    f"source stage {stage.name!r} not pinned"
                )
            out_by_site[stage.name] = {site: output}
            exp_out = max(expected[stage.name]["output"], 1e-12)
            observed[stage.name] = StageRates(
                stage=stage.name,
                input_eps=gen,
                processed_eps=processed,
                output_eps=output,
                throughput_ratio=min(1.0, output / exp_out),
            )
            continue

        admitted = 0.0
        for up in plan.upstream_stages(stage.name):
            admitted += _link_limited_flow(
                up, stage, out_by_site.get(up.name, {}), capacities
            )
        capacity = capacities.stage_capacity_eps(stage)
        processed = min(admitted, capacity)
        output = processed * stage.selectivity

        placement = stage.placement()
        total_tasks = sum(placement.values())
        out_by_site[stage.name] = (
            {
                site: output * count / total_tasks
                for site, count in placement.items()
            }
            if total_tasks
            else {}
        )
        exp_out = max(expected[stage.name]["output"], 1e-12)
        observed[stage.name] = StageRates(
            stage=stage.name,
            input_eps=admitted,
            processed_eps=processed,
            output_eps=output,
            throughput_ratio=min(1.0, output / exp_out),
        )
    return observed


def bottleneck_stages(
    plan: PhysicalPlan,
    source_generation_eps: dict[str, float],
    capacities: CapacityModel,
    *,
    tolerance: float = 0.999,
) -> list[str]:
    """Stages where throughput is first lost (the backpressure origins).

    A stage is an origin when its own throughput ratio drops below its
    upstreams' minimum - the loss happened *here* (compute or inbound
    links), not inherited from above.
    """
    observed = steady_state_rates(plan, source_generation_eps, capacities)
    origins: list[str] = []
    for stage in plan.topological_stages():
        rates = observed[stage.name]
        upstream_ratio = min(
            (
                observed[u.name].throughput_ratio
                for u in plan.upstream_stages(stage.name)
            ),
            default=1.0,
        )
        if rates.throughput_ratio < upstream_ratio * tolerance:
            origins.append(stage.name)
    return origins

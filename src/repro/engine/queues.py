"""Fluid FIFO queues with exact age accounting.

The engine models event streams as fluid: per tick, fractional "parcels" of
events move between queues.  Each parcel remembers the (average) generation
time of the events it aggregates, so end-to-end delay is simply
``now - gen_time`` when a parcel reaches a sink - no per-event objects are
needed, yet FIFO ordering and ages are preserved exactly at parcel
granularity.

Crossing a WAN link with latency ``l`` makes a parcel *older* by ``l``
(``gen_time -= l``), which folds propagation delay into the same accounting.

Because the engine executes these operations for every (stage, site) and
every WAN flow on every tick, the queue exposes *fused, in-place* variants
of its hot paths alongside the simple list-based ones:

* :meth:`FluidQueue.pop_into` dequeues into a caller-reused buffer instead
  of building a fresh list;
* :meth:`FluidQueue.push_scaled` / :meth:`FluidQueue.push_aged` merge the
  ``scale_parcels``/``age_parcels`` + ``push_parcels`` pairs into single
  passes with no intermediate parcel lists;
* :meth:`FluidQueue.drop_oldest` discards head events without
  materializing the dropped parcels.

All fused variants perform bit-for-bit the same floating-point operations
in the same order as their compositional equivalents, so fixed seeds
produce identical simulations either way.

Snapshots are copy-on-write: :meth:`FluidQueue.clone_cow` shares the
parcel storage between the original and the clone, and the first mutation
on either side materializes a private copy.  An adaptation attempt that
touches three queues pays for three copies, not for every queue in the
runtime.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(slots=True)
class Parcel:
    """A fluid bucket of ``count`` events with a common generation time."""

    count: float
    gen_time_s: float


class FluidQueue:
    """FIFO queue of parcels supporting fractional pop/drop.

    Parcels pushed with (nearly) the same generation time are merged, so the
    queue length stays bounded by the number of distinct ticks events have
    been waiting.
    """

    _MERGE_EPS = 1e-6

    __slots__ = ("_parcels", "_count", "_shared")

    def __init__(self) -> None:
        self._parcels: deque[Parcel] = deque()
        self._count = 0.0
        #: True while ``_parcels`` (and the Parcel objects inside) may be
        #: shared with a copy-on-write clone; mutators materialize first.
        self._shared = False

    @property
    def count(self) -> float:
        """Total events queued."""
        return self._count

    def __bool__(self) -> bool:
        return bool(self._count > 1e-12)

    def __len__(self) -> int:
        return len(self._parcels)

    def _materialize(self) -> None:
        """Detach from any copy-on-write sharers before mutating."""
        self._parcels = deque(
            Parcel(p.count, p.gen_time_s) for p in self._parcels
        )
        self._shared = False

    def _drain_reset(self) -> None:
        """Normalize a (numerically) drained queue to the canonical empty
        state, exactly like the pre-COW implementation did on every pop."""
        if self._count < 1e-12:
            self._count = 0.0
            if self._shared:
                if self._parcels:
                    self._parcels = deque()
                    self._shared = False
            else:
                self._parcels.clear()

    def push(self, count: float, gen_time_s: float) -> None:
        """Enqueue ``count`` events generated (on average) at ``gen_time_s``."""
        count = float(count)
        if count < 0:
            raise SimulationError(f"cannot push negative count {count}")
        if count == 0:
            return
        if self._shared:
            self._materialize()
        parcels = self._parcels
        if (
            parcels
            and abs(parcels[-1].gen_time_s - gen_time_s) < self._MERGE_EPS
        ):
            parcels[-1].count += count
        else:
            parcels.append(Parcel(count, gen_time_s))
        self._count += count

    def push_parcels(self, parcels: list[Parcel]) -> None:
        for parcel in parcels:
            self.push(parcel.count, parcel.gen_time_s)

    def push_scaled(self, parcels: list[Parcel], factor: float) -> float:
        """Push ``parcels`` scaled by ``factor``; returns the scaled total.

        Fuses ``push_parcels(scale_parcels(parcels, factor))`` (plus the
        ``parcels_total`` of the scaled list) into one pass with no
        intermediate list.
        """
        if factor < 0:
            raise SimulationError(
                f"scale factor must be >= 0, got {factor}"
            )
        if factor == 0 or not parcels:
            return 0.0
        if self._shared:
            self._materialize()
        queue = self._parcels
        eps = self._MERGE_EPS
        total = 0.0
        for p in parcels:
            scaled = p.count * factor
            total += scaled
            if scaled == 0.0:
                continue
            if queue and abs(queue[-1].gen_time_s - p.gen_time_s) < eps:
                queue[-1].count += scaled
            else:
                queue.append(Parcel(scaled, p.gen_time_s))
            self._count += scaled
        return total

    def push_aged(self, parcels: list[Parcel], extra_age_s: float) -> None:
        """Push ``parcels`` aged by ``extra_age_s`` (WAN latency crossing).

        Fuses ``push_parcels(age_parcels(parcels, extra_age_s))`` into one
        pass with no intermediate list.
        """
        if extra_age_s < 0:
            raise SimulationError(
                f"extra_age_s must be >= 0, got {extra_age_s}"
            )
        if not parcels:
            return
        if self._shared:
            self._materialize()
        queue = self._parcels
        eps = self._MERGE_EPS
        for p in parcels:
            count = p.count
            if count == 0.0:
                continue
            gen = p.gen_time_s - extra_age_s
            if queue and abs(queue[-1].gen_time_s - gen) < eps:
                queue[-1].count += count
            else:
                queue.append(Parcel(count, gen))
            self._count += count

    def clone(self) -> "FluidQueue":
        """Exact independent copy (parcel order, counts and ages)."""
        copy = FluidQueue()
        copy._parcels = deque(
            Parcel(p.count, p.gen_time_s) for p in self._parcels
        )
        copy._count = self._count
        return copy

    def clone_cow(self) -> "FluidQueue":
        """Copy-on-write clone: O(1) now, pays the copy on first mutation.

        Both the clone and the original keep working exactly like
        independent queues; the parcel storage is shared only until either
        side mutates.  Used by the transactional adaptation executor so a
        snapshot of the whole runtime only copies the queues an adaptation
        attempt actually touches.
        """
        copy = FluidQueue.__new__(FluidQueue)
        copy._parcels = self._parcels
        copy._count = self._count
        copy._shared = True
        self._shared = True
        return copy

    def pop(self, count: float) -> list[Parcel]:
        """Dequeue up to ``count`` events FIFO; returns the parcels removed."""
        popped: list[Parcel] = []
        self.pop_into(count, popped)
        return popped

    def pop_into(self, count: float, out: list[Parcel]) -> float:
        """Dequeue up to ``count`` events FIFO, appending into ``out``.

        Returns the total events dequeued.  ``out`` is a caller-owned
        buffer (typically reused across calls) and receives the removed
        parcels in FIFO order; whole head parcels are transferred without
        copying.
        """
        if count < 0:
            raise SimulationError(f"cannot pop negative count {count}")
        remaining = min(count, self._count)
        if remaining > 1e-12 and self._shared:
            self._materialize()
        parcels = self._parcels
        popped_total = 0.0
        while remaining > 1e-12 and parcels:
            head = parcels[0]
            head_count = head.count
            if head_count <= remaining + 1e-12:
                out.append(head)
                remaining -= head_count
                self._count -= head_count
                popped_total += head_count
                parcels.popleft()
            else:
                out.append(Parcel(remaining, head.gen_time_s))
                head.count = head_count - remaining
                self._count -= remaining
                popped_total += remaining
                remaining = 0.0
        self._drain_reset()
        return popped_total

    def drop_oldest(self, count: float) -> float:
        """Discard up to ``count`` events from the head; returns dropped.

        Non-allocating: the dropped parcels are never materialized.
        """
        if count < 0:
            raise SimulationError(f"cannot pop negative count {count}")
        before = self._count
        remaining = min(count, self._count)
        if remaining > 1e-12 and self._shared:
            self._materialize()
        parcels = self._parcels
        while remaining > 1e-12 and parcels:
            head = parcels[0]
            head_count = head.count
            if head_count <= remaining + 1e-12:
                remaining -= head_count
                self._count -= head_count
                parcels.popleft()
            else:
                head.count = head_count - remaining
                self._count -= remaining
                remaining = 0.0
        self._drain_reset()
        return before - self._count

    def drop_older_than(self, cutoff_gen_time_s: float) -> float:
        """Discard every event generated before ``cutoff_gen_time_s``.

        This is the Degrade baseline's move: events whose age already exceeds
        the SLO are dropped rather than processed late (Section 8.4).
        FIFO order means stale parcels are all at the head.
        """
        parcels = self._parcels
        if not parcels or parcels[0].gen_time_s >= cutoff_gen_time_s:
            return 0.0
        if self._shared:
            self._materialize()
            parcels = self._parcels
        dropped = 0.0
        while parcels and parcels[0].gen_time_s < cutoff_gen_time_s:
            head_count = parcels[0].count
            dropped += head_count
            self._count -= head_count
            parcels.popleft()
        if self._count < 1e-12:
            self._count = 0.0
            parcels.clear()
        return dropped

    def clear(self) -> float:
        """Empty the queue; returns the number of events discarded."""
        dropped = self._count
        if self._shared:
            # No copy needed: discard the shared storage reference wholesale.
            self._parcels = deque()
            self._shared = False
        else:
            self._parcels.clear()
        self._count = 0.0
        return dropped

    def oldest_gen_time_s(self) -> float | None:
        return self._parcels[0].gen_time_s if self._parcels else None

    def parcels(self) -> list[Parcel]:
        """Read-only copy of the queued parcels, oldest first.

        For inspection (invariant checkers, tests); never aliases the
        internal storage, so callers cannot perturb COW sharing.
        """
        return [Parcel(p.count, p.gen_time_s) for p in self._parcels]

    def mean_age_s(self, now_s: float) -> float:
        """Average age of queued events (0 for an empty queue)."""
        if self._count <= 0:
            return 0.0
        total_age = sum(
            p.count * (now_s - p.gen_time_s) for p in self._parcels
        )
        return total_age / self._count


def parcels_total(parcels: list[Parcel]) -> float:
    return sum(p.count for p in parcels)


def parcels_mean_gen_time(parcels: list[Parcel]) -> float:
    """Event-weighted mean generation time; raises on empty input."""
    total = parcels_total(parcels)
    if total <= 0:
        raise SimulationError("no parcels to average")
    return sum(p.count * p.gen_time_s for p in parcels) / total


def scale_parcels(parcels: list[Parcel], factor: float) -> list[Parcel]:
    """Multiply parcel counts by ``factor`` (selectivity, fan-out shares)."""
    if factor < 0:
        raise SimulationError(f"scale factor must be >= 0, got {factor}")
    if factor == 0:
        return []
    return [Parcel(p.count * factor, p.gen_time_s) for p in parcels]


def age_parcels(parcels: list[Parcel], extra_age_s: float) -> list[Parcel]:
    """Make parcels older by ``extra_age_s`` (WAN latency crossing)."""
    if extra_age_s < 0:
        raise SimulationError(f"extra_age_s must be >= 0, got {extra_age_s}")
    return [Parcel(p.count, p.gen_time_s - extra_age_s) for p in parcels]

"""Fluid FIFO queues with exact age accounting.

The engine models event streams as fluid: per tick, fractional "parcels" of
events move between queues.  Each parcel remembers the (average) generation
time of the events it aggregates, so end-to-end delay is simply
``now - gen_time`` when a parcel reaches a sink - no per-event objects are
needed, yet FIFO ordering and ages are preserved exactly at parcel
granularity.

Crossing a WAN link with latency ``l`` makes a parcel *older* by ``l``
(``gen_time -= l``), which folds propagation delay into the same accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import SimulationError


@dataclass
class Parcel:
    """A fluid bucket of ``count`` events with a common generation time."""

    count: float
    gen_time_s: float


class FluidQueue:
    """FIFO queue of parcels supporting fractional pop/drop.

    Parcels pushed with (nearly) the same generation time are merged, so the
    queue length stays bounded by the number of distinct ticks events have
    been waiting.
    """

    _MERGE_EPS = 1e-6

    def __init__(self) -> None:
        self._parcels: deque[Parcel] = deque()
        self._count = 0.0

    @property
    def count(self) -> float:
        """Total events queued."""
        return self._count

    def __bool__(self) -> bool:
        return bool(self._count > 1e-12)

    def __len__(self) -> int:
        return len(self._parcels)

    def push(self, count: float, gen_time_s: float) -> None:
        """Enqueue ``count`` events generated (on average) at ``gen_time_s``."""
        count = float(count)
        if count < 0:
            raise SimulationError(f"cannot push negative count {count}")
        if count == 0:
            return
        if (
            self._parcels
            and abs(self._parcels[-1].gen_time_s - gen_time_s) < self._MERGE_EPS
        ):
            self._parcels[-1].count += count
        else:
            self._parcels.append(Parcel(count, gen_time_s))
        self._count += count

    def push_parcels(self, parcels: list[Parcel]) -> None:
        for parcel in parcels:
            self.push(parcel.count, parcel.gen_time_s)

    def clone(self) -> "FluidQueue":
        """Exact copy (parcel order, counts and ages); used by the
        transactional adaptation executor to snapshot queue tables."""
        copy = FluidQueue()
        copy._parcels = deque(
            Parcel(p.count, p.gen_time_s) for p in self._parcels
        )
        copy._count = self._count
        return copy

    def pop(self, count: float) -> list[Parcel]:
        """Dequeue up to ``count`` events FIFO; returns the parcels removed."""
        if count < 0:
            raise SimulationError(f"cannot pop negative count {count}")
        popped: list[Parcel] = []
        remaining = min(count, self._count)
        while remaining > 1e-12 and self._parcels:
            head = self._parcels[0]
            if head.count <= remaining + 1e-12:
                popped.append(Parcel(head.count, head.gen_time_s))
                remaining -= head.count
                self._count -= head.count
                self._parcels.popleft()
            else:
                popped.append(Parcel(remaining, head.gen_time_s))
                head.count -= remaining
                self._count -= remaining
                remaining = 0.0
        if self._count < 1e-12:
            self._count = 0.0
            self._parcels.clear()
        return popped

    def drop_oldest(self, count: float) -> float:
        """Discard up to ``count`` events from the head; returns dropped."""
        before = self._count
        self.pop(count)
        return before - self._count

    def drop_older_than(self, cutoff_gen_time_s: float) -> float:
        """Discard every event generated before ``cutoff_gen_time_s``.

        This is the Degrade baseline's move: events whose age already exceeds
        the SLO are dropped rather than processed late (Section 8.4).
        FIFO order means stale parcels are all at the head.
        """
        dropped = 0.0
        while self._parcels and self._parcels[0].gen_time_s < cutoff_gen_time_s:
            dropped += self._parcels[0].count
            self._count -= self._parcels[0].count
            self._parcels.popleft()
        if self._count < 1e-12:
            self._count = 0.0
            self._parcels.clear()
        return dropped

    def clear(self) -> float:
        """Empty the queue; returns the number of events discarded."""
        dropped = self._count
        self._parcels.clear()
        self._count = 0.0
        return dropped

    def oldest_gen_time_s(self) -> float | None:
        return self._parcels[0].gen_time_s if self._parcels else None

    def mean_age_s(self, now_s: float) -> float:
        """Average age of queued events (0 for an empty queue)."""
        if self._count <= 0:
            return 0.0
        total_age = sum(
            p.count * (now_s - p.gen_time_s) for p in self._parcels
        )
        return total_age / self._count


def parcels_total(parcels: list[Parcel]) -> float:
    return sum(p.count for p in parcels)


def parcels_mean_gen_time(parcels: list[Parcel]) -> float:
    """Event-weighted mean generation time; raises on empty input."""
    total = parcels_total(parcels)
    if total <= 0:
        raise SimulationError("no parcels to average")
    return sum(p.count * p.gen_time_s for p in parcels) / total


def scale_parcels(parcels: list[Parcel], factor: float) -> list[Parcel]:
    """Multiply parcel counts by ``factor`` (selectivity, fan-out shares)."""
    if factor < 0:
        raise SimulationError(f"scale factor must be >= 0, got {factor}")
    if factor == 0:
        return []
    return [Parcel(p.count * factor, p.gen_time_s) for p in parcels]


def age_parcels(parcels: list[Parcel], extra_age_s: float) -> list[Parcel]:
    """Make parcels older by ``extra_age_s`` (WAN latency crossing)."""
    if extra_age_s < 0:
        raise SimulationError(f"extra_age_s must be >= 0, got {extra_age_s}")
    return [Parcel(p.count, p.gen_time_s - extra_age_s) for p in parcels]

"""Fluid-flow execution engine (the Flink stand-in).

The engine advances in fixed ticks.  Event streams are fluid: parcels of
events (with exact generation-time accounting, :mod:`repro.engine.queues`)
flow from pinned sources through stages to sinks, constrained by

* **compute capacity** - tasks at a site process
  ``n_tasks * proc_rate / stage.cost`` events per second; excess input
  accumulates in the stage's per-site input queue (computational
  backpressure, Section 3.3);
* **WAN bandwidth** - inter-site flows share each directed link's byte
  budget per tick; excess output accumulates in sender-side network queues
  (network backpressure), and transferred parcels age by the link latency.

Everything the paper's evaluation measures falls out of this model: event
delay is ``now - gen_time`` at the sink, the processing ratio is sink
throughput converted back to source-equivalents, and bottlenecks manifest
exactly as the paper describes them - ``lambda_P < lambda_I`` when compute
bound, ``lambda_I < sum lambda_O[upstream]`` when network bound.

Adaptations interact with the engine through a small mutation API: stages
can be suspended (state-migration transitions halt execution), task queues
move between sites, and a running plan can be replaced by a re-planned one
that carries over queues and state for common sub-plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..config import WaspConfig
from ..errors import SimulationError
from ..network.topology import Topology
from .physical import PhysicalPlan, Stage
from .queues import (
    FluidQueue,
    Parcel,
    age_parcels,
    parcels_total,
    scale_parcels,
)

#: Conversion: megabits to bytes.
MBIT_BYTES = 1_000_000 / 8


def mbps_to_eps(bandwidth_mbps: float, event_bytes: float) -> float:
    """Events/second a link sustains at the given event size."""
    return bandwidth_mbps * MBIT_BYTES / event_bytes


@dataclass
class FlowKey:
    """Identifies one inter-site flow of a stage edge."""

    src_stage: str
    dst_stage: str
    src_site: str
    dst_site: str

    def as_tuple(self) -> tuple[str, str, str, str]:
        return (self.src_stage, self.dst_stage, self.src_site, self.dst_site)


@dataclass
class RuntimeSnapshot:
    """Deep copy of the engine's mutable execution state (rollback unit).

    The snapshot keeps its own clones of every queue so restoring twice (or
    restoring after further mutation) is always exact.
    """

    plan: PhysicalPlan
    gen_queue: dict[tuple[str, str], FluidQueue]
    input_queue: dict[tuple[str, str], FluidQueue]
    net_queue: dict[tuple[str, str, str, str], FluidQueue]
    suspended_until: dict[str, float]


@dataclass
class TickReport:
    """Raw per-tick observations, consumed by the metric monitor."""

    t_s: float
    offered: float = 0.0
    #: raw events generated per source stage this tick
    offered_by_source: dict[str, float] = field(default_factory=dict)
    sink_events: float = 0.0
    sink_delay_weighted_s: float = 0.0
    dropped_source_equiv: float = 0.0
    #: events arriving at each stage's input queues this tick
    arrived: dict[str, float] = field(default_factory=dict)
    #: events processed by each stage this tick
    processed: dict[str, float] = field(default_factory=dict)
    #: events emitted by each stage this tick
    emitted: dict[str, float] = field(default_factory=dict)
    #: per (stage, site): events processed
    processed_by_site: dict[tuple[str, str], float] = field(default_factory=dict)
    #: per (stage, site): processing capacity available this tick
    capacity_by_site: dict[tuple[str, str], float] = field(default_factory=dict)
    #: per (stage, site): input backlog at end of tick
    input_backlog: dict[tuple[str, str], float] = field(default_factory=dict)
    #: per flow: events transferred this tick
    net_sent: dict[tuple[str, str, str, str], float] = field(default_factory=dict)
    #: per flow: network backlog at end of tick
    net_backlog: dict[tuple[str, str, str, str], float] = field(default_factory=dict)

    def mean_sink_delay_s(self) -> float:
        if self.sink_events <= 0:
            return float("nan")
        return self.sink_delay_weighted_s / self.sink_events


class EngineRuntime:
    """Executes one physical plan on a topology, one tick at a time."""

    def __init__(
        self,
        topology: Topology,
        plan: PhysicalPlan,
        workload: "WorkloadModel",
        config: WaspConfig | None = None,
        *,
        degrade_slo_s: float | None = None,
    ) -> None:
        self._topology = topology
        self._plan = plan
        self._workload = workload
        self._config = config or WaspConfig.paper_defaults()
        self._degrade_slo_s = degrade_slo_s
        self._now_s = 0.0

        # Queues.  gen: external arrivals at source sites awaiting the source
        # task; input: per (stage, site) processing queues; net: sender-side
        # per-flow WAN queues.
        self._gen_queue: dict[tuple[str, str], FluidQueue] = {}
        self._input_queue: dict[tuple[str, str], FluidQueue] = {}
        self._net_queue: dict[tuple[str, str, str, str], FluidQueue] = {}

        self._suspended_until: dict[str, float] = {}
        self._stage_equiv_factor: dict[str, float] = {}
        self._plan_selectivity = 1.0
        self._n_sources = max(1, len(plan.source_stages()))
        self._refresh_plan_constants()

        self.last_report = TickReport(t_s=0.0)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def now_s(self) -> float:
        return self._now_s

    @property
    def plan(self) -> PhysicalPlan:
        return self._plan

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def workload(self) -> "WorkloadModel":
        return self._workload

    @property
    def degrade_slo_s(self) -> float | None:
        return self._degrade_slo_s

    def _refresh_plan_constants(self) -> None:
        """Recompute selectivity conversion tables after a plan change."""
        logical = self._plan.logical
        weights = None
        base_rates = getattr(self._workload, "base_rate_eps", None)
        if callable(base_rates):
            weights = {
                op.name: base_rates(op.name) for op in logical.sources()
            }
        self._plan_selectivity = max(
            logical.plan_selectivity(weights), 1e-12
        )
        # Conversion factors from stage-input events to source-equivalents,
        # weighted by the workload's base rate mix so they agree with the
        # sink conversion (a heavy ad stream and a campaign trickle must
        # not be treated alike).  Falls back to unit weights when the
        # workload exposes no base rates.
        if weights and sum(weights.values()) > 0:
            reference = dict(weights)
        else:
            reference = {s.name: 1.0 for s in self._plan.source_stages()}
        total_reference = max(sum(reference.values()), 1e-12)
        rates = self._plan.expected_stage_rates(reference)
        self._stage_equiv_factor = {
            name: total_reference / max(vals["input"], 1e-12)
            for name, vals in rates.items()
        }
        self._n_sources = max(1, len(self._plan.source_stages()))

    # ------------------------------------------------------------------ #
    # Queue helpers
    # ------------------------------------------------------------------ #

    def _queue(
        self, table: dict, key: tuple
    ) -> FluidQueue:
        queue = table.get(key)
        if queue is None:
            queue = FluidQueue()
            table[key] = queue
        return queue

    def input_backlog(self, stage_name: str, site: str | None = None) -> float:
        """Events queued at a stage's input (optionally one site only)."""
        total = 0.0
        for (name, s), queue in self._input_queue.items():
            if name == stage_name and (site is None or s == site):
                total += queue.count
        if self._plan.stages.get(stage_name, None) is not None:
            stage = self._plan.stages[stage_name]
            if stage.is_source:
                for (name, s), queue in self._gen_queue.items():
                    if name == stage_name and (site is None or s == site):
                        total += queue.count
        return total

    def net_backlog_for(self, dst_stage: str) -> dict[tuple[str, str], float]:
        """Per (src_site, dst_site) WAN backlog feeding ``dst_stage``."""
        result: dict[tuple[str, str], float] = {}
        for (src, dst, su, sd), queue in self._net_queue.items():
            if dst == dst_stage and queue.count > 0:
                result[(su, sd)] = result.get((su, sd), 0.0) + queue.count
        return result

    def total_backlog(self) -> float:
        return (
            sum(q.count for q in self._gen_queue.values())
            + sum(q.count for q in self._input_queue.values())
            + sum(q.count for q in self._net_queue.values())
        )

    # ------------------------------------------------------------------ #
    # Mutation API (used by the scheduler / reconfiguration manager)
    # ------------------------------------------------------------------ #

    def suspend_stage(self, stage_name: str, until_s: float) -> None:
        """Halt a stage's processing until ``until_s`` (state transition)."""
        current = self._suspended_until.get(stage_name, 0.0)
        self._suspended_until[stage_name] = max(current, until_s)

    def suspended_until(self, stage_name: str) -> float:
        return self._suspended_until.get(stage_name, 0.0)

    def is_suspended(self, stage_name: str) -> bool:
        return self._now_s < self._suspended_until.get(stage_name, 0.0)

    def move_task_queue(
        self, stage_name: str, from_site: str, to_site: str
    ) -> None:
        """Re-home queued input when a task migrates between sites.

        The queued events travel with the state transfer; the engine moves
        them instantaneously and relies on the transition suspension to
        account for the time cost.
        """
        src = self._input_queue.get((stage_name, from_site))
        if src is None or not src:
            return
        dst = self._queue(self._input_queue, (stage_name, to_site))
        dst.push_parcels(src.pop(src.count))

    def redirect_flows(self, stage_name: str, from_site: str, to_site: str) -> None:
        """Repoint in-flight WAN queues targeting a migrated task."""
        for key in list(self._net_queue):
            src_stage, dst_stage, su, sd = key
            if dst_stage != stage_name or sd != from_site:
                continue
            queue = self._net_queue.pop(key)
            if not queue:
                continue
            target = self._queue(
                self._net_queue, (src_stage, dst_stage, su, to_site)
            )
            target.push_parcels(queue.pop(queue.count))

    def relay_queue(self, stage_name: str, from_site: str, to_site: str) -> None:
        """Send a terminated task's queued input to a surviving task over the
        WAN (scale-down: "relayed data streams", Section 4.2)."""
        src = self._input_queue.get((stage_name, from_site))
        if src is None or not src:
            return
        relay = self._queue(
            self._net_queue, (stage_name, stage_name, from_site, to_site)
        )
        relay.push_parcels(src.pop(src.count))

    def rehome_to_placement(
        self,
        stage_name: str,
        bandwidth_rank: "Callable[[str, str], float] | None" = None,
    ) -> None:
        """Move queues destined for sites where the stage has no tasks.

        After a re-plan or failure the stage's placement may no longer cover
        every site holding queued input or expecting in-flight traffic; this
        sweep re-homes those onto the stage's live sites (the one ranked
        best by ``bandwidth_rank`` when provided, the lexicographically
        first otherwise).
        """
        stage = self._plan.stages.get(stage_name)
        if stage is None:
            return
        live = set(stage.placement())
        if not live:
            return

        def target_for(orphan_site: str) -> str:
            if bandwidth_rank is None:
                return sorted(live)[0]
            return max(
                sorted(live), key=lambda s: bandwidth_rank(orphan_site, s)
            )

        for (name, site) in list(self._input_queue):
            if name != stage_name or site in live:
                continue
            queue = self._input_queue.pop((name, site))
            if queue:
                # Queued input at a vacated site relays over the WAN to a
                # live task (Section 4.2's "relayed data streams"); the
                # relay flow pays for the link like any other traffic.
                relay = self._queue(
                    self._net_queue,
                    (stage_name, stage_name, site, target_for(site)),
                )
                relay.push_parcels(queue.pop(queue.count))
        for key in list(self._net_queue):
            src_stage, dst_stage, su, sd = key
            if dst_stage != stage_name or sd in live:
                continue
            queue = self._net_queue.pop(key)
            if queue:
                target = self._queue(
                    self._net_queue, (src_stage, dst_stage, su, target_for(sd))
                )
                target.push_parcels(queue.pop(queue.count))

    def inject_replay(
        self, stage_name: str, site: str, events: float, gen_time_s: float
    ) -> None:
        """Queue events for re-processing after a failure recovery.

        Work processed since the last local checkpoint is lost with the
        failure and must be replayed from the upstream logs (Section 5's
        checkpoint/restore semantics): it re-enters the stage's input queue
        carrying its original generation time, so the recovery's delay cost
        is measured honestly.
        """
        if events <= 0:
            return
        table = (
            self._gen_queue
            if self._plan.stages.get(stage_name) is not None
            and self._plan.stages[stage_name].is_source
            else self._input_queue
        )
        self._queue(table, (stage_name, site)).push(events, gen_time_s)

    def mutation_snapshot(self) -> "RuntimeSnapshot":
        """Capture everything the mutation API can change.

        The transactional adaptation executor calls this before applying an
        action; :meth:`restore_mutation_snapshot` puts the engine back
        exactly (queues, suspensions, plan reference) if the action has to
        be rolled back mid-flight.
        """
        return RuntimeSnapshot(
            plan=self._plan,
            gen_queue={k: q.clone() for k, q in self._gen_queue.items()},
            input_queue={k: q.clone() for k, q in self._input_queue.items()},
            net_queue={k: q.clone() for k, q in self._net_queue.items()},
            suspended_until=dict(self._suspended_until),
        )

    def restore_mutation_snapshot(self, snapshot: "RuntimeSnapshot") -> None:
        """Restore a :meth:`mutation_snapshot` (adaptation rollback)."""
        plan_changed = snapshot.plan is not self._plan
        self._plan = snapshot.plan
        self._gen_queue = {k: q.clone() for k, q in snapshot.gen_queue.items()}
        self._input_queue = {
            k: q.clone() for k, q in snapshot.input_queue.items()
        }
        self._net_queue = {k: q.clone() for k, q in snapshot.net_queue.items()}
        self._suspended_until = dict(snapshot.suspended_until)
        if plan_changed:
            self._refresh_plan_constants()

    def replace_plan(self, new_plan: PhysicalPlan) -> None:
        """Swap in a re-planned physical plan (Section 4.3).

        Stages present in both plans (common sub-plans - same head operator
        name) keep their input queues.  In-flight network queues are re-bound
        to the new downstream of their source stage where possible and
        dropped otherwise (the re-planner only removes stateless stages, so
        no state is lost; the events are re-read from upstream queues in the
        stateless case and re-counted as queued work).
        """
        old_plan = self._plan
        surviving = set(new_plan.stages) & set(old_plan.stages)

        # Input queues: keep for surviving stages, fold removed stages'
        # queues back into the new consumer of their upstream output.
        new_downstream_of: dict[str, list[str]] = {
            name: [s.name for s in new_plan.downstream_stages(name)]
            for name in new_plan.stages
        }
        for (stage_name, site) in list(self._input_queue):
            if stage_name in surviving:
                continue
            queue = self._input_queue.pop((stage_name, site))
            if not queue:
                continue
            # Feed the orphaned events to the first surviving upstream's new
            # downstream, at the same site (they will be routed from there).
            upstream = [
                u.name
                for u in old_plan.upstream_stages(stage_name)
                if u.name in surviving
            ]
            heirs = new_downstream_of.get(upstream[0], []) if upstream else []
            if heirs:
                heir = heirs[0]
                self._queue(self._input_queue, (heir, site)).push_parcels(
                    queue.pop(queue.count)
                )

        for key in list(self._net_queue):
            src_stage, dst_stage, su, sd = key
            if src_stage in surviving and dst_stage in surviving:
                # Edge may no longer exist; re-bind to the new downstream.
                if dst_stage in new_downstream_of.get(src_stage, []):
                    continue
            queue = self._net_queue.pop(key)
            if not queue:
                continue
            if src_stage in surviving:
                heirs = new_downstream_of.get(src_stage, [])
                if heirs:
                    target = self._queue(
                        self._net_queue, (src_stage, heirs[0], su, sd)
                    )
                    target.push_parcels(queue.pop(queue.count))

        self._plan = new_plan
        self._refresh_plan_constants()

    # ------------------------------------------------------------------ #
    # Tick
    # ------------------------------------------------------------------ #

    def tick(
        self, link_budget: dict[tuple[str, str], float] | None = None
    ) -> TickReport:
        """Advance the engine by one tick; returns the tick's observations.

        Args:
            link_budget: Per-tick directed-link byte budgets.  Pass a dict
                shared across several runtimes to make co-located queries
                contend for the same WAN links (Section 3.2's "bandwidth
                contention with other executions"); by default each tick
                gets a private budget.
        """
        dt = self._config.tick_s
        now = self._now_s + dt
        report = TickReport(t_s=now)

        if link_budget is None:
            link_budget = {}

        # 1. External generation.
        for stage in self._plan.source_stages():
            site = stage.pinned_site
            if site is None:
                raise SimulationError(
                    f"source stage {stage.name!r} has no pinned site"
                )
            rate = self._workload.generation_eps(stage.name, now)
            gen = rate * dt
            if gen > 0:
                # Events generated uniformly across the tick: mean age dt/2.
                self._queue(self._gen_queue, (stage.name, site)).push(
                    gen, now - dt / 2
                )
            report.offered += gen
            report.offered_by_source[stage.name] = gen

        # 2. Stage execution in topological order, transferring each stage's
        # outgoing flows immediately so downstream stages can consume them
        # within the same tick (sub-tick pipelining).
        for stage in self._plan.topological_stages():
            self._run_stage(stage, now, dt, report)
            self._transfer_stage_flows(stage, now, dt, link_budget, report)

        # Relay flows (scale-down) originate from stages to themselves and
        # were handled inside _transfer_stage_flows via the same net queues.

        # 3. Record end-of-tick backlogs.
        for (stage_name, site), queue in self._input_queue.items():
            if queue.count > 0:
                report.input_backlog[(stage_name, site)] = queue.count
        for (stage_name, site), queue in self._gen_queue.items():
            if queue.count > 0:
                key = (stage_name, site)
                report.input_backlog[key] = (
                    report.input_backlog.get(key, 0.0) + queue.count
                )
        for key, queue in self._net_queue.items():
            if queue.count > 0:
                report.net_backlog[key] = queue.count

        self._now_s = now
        self.last_report = report
        return report

    # -------------------------- stage execution ------------------------ #

    def _stage_capacity_eps(self, stage: Stage, site: str) -> float:
        """Events/s the stage's tasks at ``site`` can process right now."""
        if self.is_suspended(stage.name):
            return 0.0
        site_obj = self._topology.site(site)
        if site_obj.failed:
            return 0.0
        n_tasks = sum(1 for t in stage.tasks if t.site == site)
        return n_tasks * site_obj.effective_proc_rate_eps / stage.cost

    def _run_stage(
        self, stage: Stage, now: float, dt: float, report: TickReport
    ) -> None:
        table = self._gen_queue if stage.is_source else self._input_queue
        placement = stage.placement()
        for site in sorted(placement):
            queue = self._queue(table, (stage.name, site))
            if self._degrade_slo_s is not None:
                dropped = queue.drop_older_than(now - self._degrade_slo_s)
                if dropped > 0:
                    report.dropped_source_equiv += self._to_source_equiv(
                        stage.name, dropped
                    )
            capacity = self._stage_capacity_eps(stage, site) * dt
            arrived_here = queue.count  # includes prior backlog
            parcels = queue.pop(capacity)
            processed = parcels_total(parcels)
            del arrived_here
            if processed <= 0:
                report.capacity_by_site[(stage.name, site)] = capacity
                continue
            report.processed[stage.name] = (
                report.processed.get(stage.name, 0.0) + processed
            )
            report.processed_by_site[(stage.name, site)] = processed
            report.capacity_by_site[(stage.name, site)] = capacity

            out_parcels = scale_parcels(parcels, stage.selectivity)
            emitted = parcels_total(out_parcels)
            if stage.is_sink:
                report.sink_events += emitted
                report.sink_delay_weighted_s += sum(
                    p.count * (now - p.gen_time_s) for p in out_parcels
                )
                continue
            report.emitted[stage.name] = (
                report.emitted.get(stage.name, 0.0) + emitted
            )
            self._route_output(stage, site, out_parcels, report)

    def _route_output(
        self,
        stage: Stage,
        src_site: str,
        out_parcels: list[Parcel],
        report: TickReport,
    ) -> None:
        """Partition a stage's per-site output across downstream tasks.

        Balanced event partitioning (Section 7): each downstream stage
        receives the full stream, split across its tasks in proportion to
        tasks per site.
        """
        for down in self._plan.downstream_stages(stage.name):
            placement = down.placement()
            total_tasks = sum(placement.values())
            if total_tasks == 0:
                # Downstream not deployed (transient during adaptation):
                # keep the events at the sender by re-queueing them into the
                # queue this stage reads from, to be re-emitted next tick.
                table = self._gen_queue if stage.is_source else self._input_queue
                self._queue(table, (stage.name, src_site)) \
                    .push_parcels(out_parcels)
                continue
            for dst_site in sorted(placement):
                fraction = placement[dst_site] / total_tasks
                share = scale_parcels(out_parcels, fraction)
                if not share:
                    continue
                if dst_site == src_site:
                    self._queue(
                        self._input_queue, (down.name, dst_site)
                    ).push_parcels(share)
                    report.arrived[down.name] = (
                        report.arrived.get(down.name, 0.0)
                        + parcels_total(share)
                    )
                else:
                    self._queue(
                        self._net_queue,
                        (stage.name, down.name, src_site, dst_site),
                    ).push_parcels(share)

    def _transfer_stage_flows(
        self,
        stage: Stage,
        now: float,
        dt: float,
        link_budget: dict[tuple[str, str], float],
        report: TickReport,
    ) -> None:
        """Move this stage's outgoing WAN queues within link budgets."""
        event_bytes = stage.output_event_bytes
        flow_keys = [
            key for key in self._net_queue if key[0] == stage.name
        ]
        # Deterministic order; FCFS link sharing across flows.
        for key in sorted(flow_keys):
            _, dst_stage, src_site, dst_site = key
            queue = self._net_queue[key]
            if not queue:
                continue
            if self._degrade_slo_s is not None:
                dropped = queue.drop_older_than(now - self._degrade_slo_s)
                if dropped > 0:
                    report.dropped_source_equiv += self._to_source_equiv(
                        dst_stage, dropped
                    )
                if not queue:
                    continue
            link = (src_site, dst_site)
            if link not in link_budget:
                link_budget[link] = (
                    self._topology.bandwidth_mbps(src_site, dst_site)
                    * MBIT_BYTES
                    * dt
                )
            budget_events = link_budget[link] / event_bytes
            if budget_events <= 0:
                continue
            parcels = queue.pop(budget_events)
            moved = parcels_total(parcels)
            if moved <= 0:
                continue
            link_budget[link] -= moved * event_bytes
            latency_s = self._topology.latency_ms(src_site, dst_site) / 1000.0
            delivered = age_parcels(parcels, latency_s)
            self._queue(self._input_queue, (dst_stage, dst_site)) \
                .push_parcels(delivered)
            report.net_sent[key] = report.net_sent.get(key, 0.0) + moved
            report.arrived[dst_stage] = (
                report.arrived.get(dst_stage, 0.0) + moved
            )

    # -------------------------- conversions ---------------------------- #

    def _to_source_equiv(self, stage_name: str, events: float) -> float:
        """Convert events observed at a stage input into source events."""
        return events * self._stage_equiv_factor.get(stage_name, 1.0)

    def to_source_equivalents(self, stage_name: str, events: float) -> float:
        """Public conversion: stage-input events -> source events."""
        return self._to_source_equiv(stage_name, events)

    def sink_source_equiv(self, sink_events: float) -> float:
        """Convert sink emissions into source-equivalents (Section 8.3)."""
        return sink_events / self._plan_selectivity


class WorkloadModel:
    """Minimal interface the engine requires of a workload.

    Concrete workloads live in :mod:`repro.workloads`; this base class exists
    so the engine module does not import them (no circular dependency) and so
    tests can plug in trivial constant-rate workloads.
    """

    def generation_eps(self, source_stage: str, t_s: float) -> float:
        """Raw events/second generated at the given source stage."""
        raise NotImplementedError

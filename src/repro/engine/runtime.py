"""Fluid-flow execution engine (the Flink stand-in).

The engine advances in fixed ticks.  Event streams are fluid: parcels of
events (with exact generation-time accounting, :mod:`repro.engine.queues`)
flow from pinned sources through stages to sinks, constrained by

* **compute capacity** - tasks at a site process
  ``n_tasks * proc_rate / stage.cost`` events per second; excess input
  accumulates in the stage's per-site input queue (computational
  backpressure, Section 3.3);
* **WAN bandwidth** - inter-site flows share each directed link's byte
  budget per tick; excess output accumulates in sender-side network queues
  (network backpressure), and transferred parcels age by the link latency.

Everything the paper's evaluation measures falls out of this model: event
delay is ``now - gen_time`` at the sink, the processing ratio is sink
throughput converted back to source-equivalents, and bottlenecks manifest
exactly as the paper describes them - ``lambda_P < lambda_I`` when compute
bound, ``lambda_I < sum lambda_O[upstream]`` when network bound.

Adaptations interact with the engine through a small mutation API: stages
can be suspended (state-migration transitions halt execution), task queues
move between sites, and a running plan can be replaced by a re-planned one
that carries over queues and state for common sub-plans.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Callable

from ..config import WaspConfig
from ..errors import SimulationError
from ..network.topology import Topology
from .physical import PhysicalPlan, Stage
from .queues import FluidQueue, Parcel

#: Conversion: megabits to bytes.
MBIT_BYTES = 1_000_000 / 8


def mbps_to_eps(bandwidth_mbps: float, event_bytes: float) -> float:
    """Events/second a link sustains at the given event size."""
    return bandwidth_mbps * MBIT_BYTES / event_bytes


@dataclass
class FlowKey:
    """Identifies one inter-site flow of a stage edge."""

    src_stage: str
    dst_stage: str
    src_site: str
    dst_site: str

    def as_tuple(self) -> tuple[str, str, str, str]:
        return (self.src_stage, self.dst_stage, self.src_site, self.dst_site)


@dataclass
class RuntimeSnapshot:
    """Copy-on-write capture of the engine's mutable state (rollback unit).

    The snapshot holds :meth:`FluidQueue.clone_cow` clones: each queue's
    parcel storage is shared with the live runtime until either side
    mutates it, so snapshotting is O(queues) instead of O(parcels) and an
    adaptation attempt only pays deep copies for the queues it actually
    touches.  Restoring hands out fresh COW clones too, so restoring twice
    (or restoring after further mutation) is always exact.
    """

    plan: PhysicalPlan
    gen_queue: dict[tuple[str, str], FluidQueue]
    input_queue: dict[tuple[str, str], FluidQueue]
    net_queue: dict[tuple[str, str, str, str], FluidQueue]
    suspended_until: dict[str, float]


@dataclass
class TickReport:
    """Raw per-tick observations, consumed by the metric monitor."""

    t_s: float
    offered: float = 0.0
    #: raw events generated per source stage this tick
    offered_by_source: dict[str, float] = field(default_factory=dict)
    sink_events: float = 0.0
    sink_delay_weighted_s: float = 0.0
    dropped_source_equiv: float = 0.0
    #: events arriving at each stage's input queues this tick
    arrived: dict[str, float] = field(default_factory=dict)
    #: events processed by each stage this tick
    processed: dict[str, float] = field(default_factory=dict)
    #: events emitted by each stage this tick
    emitted: dict[str, float] = field(default_factory=dict)
    #: per (stage, site): events processed
    processed_by_site: dict[tuple[str, str], float] = field(default_factory=dict)
    #: per (stage, site): processing capacity available this tick
    capacity_by_site: dict[tuple[str, str], float] = field(default_factory=dict)
    #: per (stage, site): input backlog at end of tick
    input_backlog: dict[tuple[str, str], float] = field(default_factory=dict)
    #: per flow: events transferred this tick
    net_sent: dict[tuple[str, str, str, str], float] = field(default_factory=dict)
    #: per flow: network backlog at end of tick
    net_backlog: dict[tuple[str, str, str, str], float] = field(default_factory=dict)
    #: per stage: events re-queued at the sender because a downstream stage
    #: was transiently undeployed (they re-enter the sender's own queue)
    requeued: dict[str, float] = field(default_factory=dict)
    #: per stage: raw events dropped from its input/gen queues (SLO cutoff)
    dropped_raw_input: dict[str, float] = field(default_factory=dict)
    #: per destination stage: raw events dropped from in-flight net queues
    dropped_raw_net: dict[str, float] = field(default_factory=dict)

    def mean_sink_delay_s(self) -> float:
        if self.sink_events <= 0:
            return float("nan")
        return self.sink_delay_weighted_s / self.sink_events


class _DownstreamExec:
    """Precomputed fan-out of one stage edge (balanced partitioning)."""

    __slots__ = ("name", "deployed", "shares")

    def __init__(self, down: Stage) -> None:
        placement = down.placement()
        total_tasks = sum(placement.values())
        self.name = down.name
        self.deployed = total_tasks > 0
        #: (dst_site, task fraction, input-queue key) in sorted site order.
        self.shares = [
            (site, placement[site] / total_tasks, (down.name, site))
            for site in sorted(placement)
        ]


class _StageExec:
    """Per-stage execution record precomputed from the physical plan.

    Everything here is derived from the plan structure and the current
    placement: chained selectivity/cost, sorted per-site task rows (with
    the site objects and queue keys pre-resolved) and downstream fan-out
    fractions.  Site *state* (failures, slowdowns) is read live from the
    cached :class:`~repro.network.site.Site` objects, which are stable for
    the lifetime of the topology.
    """

    __slots__ = (
        "stage", "name", "is_source", "is_sink", "selectivity", "cost",
        "output_event_bytes", "pinned_site", "gen_key", "site_rows",
        "downstream",
    )

    def __init__(self, stage: Stage, topology: Topology) -> None:
        self.stage = stage
        self.name = stage.name
        self.is_source = stage.is_source
        self.is_sink = stage.is_sink
        self.selectivity = stage.selectivity
        self.cost = stage.cost
        self.output_event_bytes = stage.output_event_bytes
        self.pinned_site = stage.pinned_site
        self.gen_key = (stage.name, stage.pinned_site)
        placement = stage.placement()
        #: (site, Site object, n_tasks, queue key) in sorted site order.
        self.site_rows = [
            (site, topology.site(site), placement[site], (stage.name, site))
            for site in sorted(placement)
        ]
        self.downstream: list[_DownstreamExec] = []


class _PlanCache:
    """Execution records for one (plan, mutation version) combination.

    The cache is valid while the runtime executes the *same plan object*
    at the *same mutation version*; any task mutation anywhere (reassign,
    rescale, failure evacuation, transaction rollback) bumps a stage's
    monotonic version counter and invalidates it.  The plan reference is
    held strongly so an ``is`` check can never be confused by object-id
    reuse.
    """

    __slots__ = ("plan", "version", "topo", "sources")

    def __init__(
        self, plan: PhysicalPlan, version: int, topology: Topology
    ) -> None:
        self.plan = plan
        self.version = version
        self.topo = [
            _StageExec(stage, topology)
            for stage in plan.topological_stages()
        ]
        for ex in self.topo:
            ex.downstream = [
                _DownstreamExec(down)
                for down in plan.downstream_stages(ex.name)
            ]
        self.sources = [ex for ex in self.topo if ex.is_source]


class EngineRuntime:
    """Executes one physical plan on a topology, one tick at a time."""

    def __init__(
        self,
        topology: Topology,
        plan: PhysicalPlan,
        workload: "WorkloadModel",
        config: WaspConfig | None = None,
        *,
        degrade_slo_s: float | None = None,
    ) -> None:
        self._topology = topology
        self._plan = plan
        self._workload = workload
        self._config = config or WaspConfig.paper_defaults()
        self._degrade_slo_s = degrade_slo_s
        self._now_s = 0.0

        # Queues.  gen: external arrivals at source sites awaiting the source
        # task; input: per (stage, site) processing queues; net: sender-side
        # per-flow WAN queues.
        self._gen_queue: dict[tuple[str, str], FluidQueue] = {}
        self._input_queue: dict[tuple[str, str], FluidQueue] = {}
        self._net_queue: dict[tuple[str, str, str, str], FluidQueue] = {}
        #: Per src-stage sorted lists of ``_net_queue`` keys, so the per-tick
        #: transfer pass never scans (and re-sorts) the whole flow table.
        self._net_index: dict[str, list[tuple[str, str, str, str]]] = {}
        #: Version-checked execution records (see :class:`_PlanCache`).
        self._exec_cache: _PlanCache | None = None
        #: Reused parcel buffer for the tick loop's pop/push cycles.
        self._pop_buf: list[Parcel] = []

        self._suspended_until: dict[str, float] = {}
        self._stage_equiv_factor: dict[str, float] = {}
        self._plan_selectivity = 1.0
        self._n_sources = max(1, len(plan.source_stages()))
        self._refresh_plan_constants()

        self.last_report = TickReport(t_s=0.0)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def now_s(self) -> float:
        return self._now_s

    @property
    def plan(self) -> PhysicalPlan:
        return self._plan

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def workload(self) -> "WorkloadModel":
        return self._workload

    @property
    def degrade_slo_s(self) -> float | None:
        return self._degrade_slo_s

    def _refresh_plan_constants(self) -> None:
        """Recompute selectivity conversion tables after a plan change."""
        logical = self._plan.logical
        weights = None
        base_rates = getattr(self._workload, "base_rate_eps", None)
        if callable(base_rates):
            weights = {
                op.name: base_rates(op.name) for op in logical.sources()
            }
        self._plan_selectivity = max(
            logical.plan_selectivity(weights), 1e-12
        )
        # Conversion factors from stage-input events to source-equivalents,
        # weighted by the workload's base rate mix so they agree with the
        # sink conversion (a heavy ad stream and a campaign trickle must
        # not be treated alike).  Falls back to unit weights when the
        # workload exposes no base rates.
        if weights and sum(weights.values()) > 0:
            reference = dict(weights)
        else:
            reference = {s.name: 1.0 for s in self._plan.source_stages()}
        total_reference = max(sum(reference.values()), 1e-12)
        rates = self._plan.expected_stage_rates(reference)
        self._stage_equiv_factor = {
            name: total_reference / max(vals["input"], 1e-12)
            for name, vals in rates.items()
        }
        self._n_sources = max(1, len(self._plan.source_stages()))

    # ------------------------------------------------------------------ #
    # Queue helpers
    # ------------------------------------------------------------------ #

    def _queue(
        self, table: dict, key: tuple
    ) -> FluidQueue:
        queue = table.get(key)
        if queue is None:
            queue = FluidQueue()
            table[key] = queue
        return queue

    def _net_q(self, key: tuple[str, str, str, str]) -> FluidQueue:
        """Get-or-create a WAN flow queue, keeping the per-stage index."""
        queue = self._net_queue.get(key)
        if queue is None:
            queue = FluidQueue()
            self._net_queue[key] = queue
            insort(self._net_index.setdefault(key[0], []), key)
        return queue

    def _rebuild_net_index(self) -> None:
        """Recompute the per-stage flow index after wholesale changes
        (snapshot restore, flow redirection, plan replacement)."""
        index: dict[str, list[tuple[str, str, str, str]]] = {}
        for key in self._net_queue:
            index.setdefault(key[0], []).append(key)
        for keys in index.values():
            keys.sort()
        self._net_index = index

    def _plan_cache(self) -> _PlanCache:
        """Return valid execution records, rebuilding on plan mutation."""
        plan = self._plan
        version = plan.mutation_version()
        cache = self._exec_cache
        if (
            cache is None
            or cache.plan is not plan
            or cache.version != version
        ):
            cache = _PlanCache(plan, version, self._topology)
            self._exec_cache = cache
        return cache

    def input_backlog(self, stage_name: str, site: str | None = None) -> float:
        """Events queued at a stage's input (optionally one site only)."""
        total = 0.0
        for (name, s), queue in self._input_queue.items():
            if name == stage_name and (site is None or s == site):
                total += queue.count
        if self._plan.stages.get(stage_name, None) is not None:
            stage = self._plan.stages[stage_name]
            if stage.is_source:
                for (name, s), queue in self._gen_queue.items():
                    if name == stage_name and (site is None or s == site):
                        total += queue.count
        return total

    def net_backlog_for(self, dst_stage: str) -> dict[tuple[str, str], float]:
        """Per (src_site, dst_site) WAN backlog feeding ``dst_stage``."""
        result: dict[tuple[str, str], float] = {}
        for (src, dst, su, sd), queue in self._net_queue.items():
            if dst == dst_stage and queue.count > 0:
                result[(su, sd)] = result.get((su, sd), 0.0) + queue.count
        return result

    def total_backlog(self) -> float:
        return (
            sum(q.count for q in self._gen_queue.values())
            + sum(q.count for q in self._input_queue.values())
            + sum(q.count for q in self._net_queue.values())
        )

    def iter_queues(self):
        """Yield ``(table, key, queue)`` for every live queue.

        ``table`` is ``"gen"``/``"input"`` (key ``(stage, site)``) or
        ``"net"`` (key ``(src_stage, dst_stage, src_site, dst_site)``).
        Read-only inspection surface for invariant checkers and tests; the
        yielded queues must not be mutated.
        """
        for key in sorted(self._gen_queue):
            yield "gen", key, self._gen_queue[key]
        for key in sorted(self._input_queue):
            yield "input", key, self._input_queue[key]
        for key in sorted(self._net_queue):
            yield "net", key, self._net_queue[key]

    # ------------------------------------------------------------------ #
    # Mutation API (used by the scheduler / reconfiguration manager)
    # ------------------------------------------------------------------ #

    def suspend_stage(self, stage_name: str, until_s: float) -> None:
        """Halt a stage's processing until ``until_s`` (state transition)."""
        current = self._suspended_until.get(stage_name, 0.0)
        self._suspended_until[stage_name] = max(current, until_s)

    def suspended_until(self, stage_name: str) -> float:
        return self._suspended_until.get(stage_name, 0.0)

    def is_suspended(self, stage_name: str) -> bool:
        return self._now_s < self._suspended_until.get(stage_name, 0.0)

    def move_task_queue(
        self, stage_name: str, from_site: str, to_site: str
    ) -> None:
        """Re-home queued input when a task migrates between sites.

        The queued events travel with the state transfer; the engine moves
        them instantaneously and relies on the transition suspension to
        account for the time cost.
        """
        src = self._input_queue.get((stage_name, from_site))
        if src is None or not src:
            return
        dst = self._queue(self._input_queue, (stage_name, to_site))
        dst.push_parcels(src.pop(src.count))

    def redirect_flows(self, stage_name: str, from_site: str, to_site: str) -> None:
        """Repoint in-flight WAN queues targeting a migrated task."""
        changed = False
        for key in list(self._net_queue):
            src_stage, dst_stage, su, sd = key
            if dst_stage != stage_name or sd != from_site:
                continue
            queue = self._net_queue.pop(key)
            changed = True
            if not queue:
                continue
            target = self._net_q((src_stage, dst_stage, su, to_site))
            target.push_parcels(queue.pop(queue.count))
        if changed:
            self._rebuild_net_index()

    def relay_queue(self, stage_name: str, from_site: str, to_site: str) -> None:
        """Send a terminated task's queued input to a surviving task over the
        WAN (scale-down: "relayed data streams", Section 4.2)."""
        src = self._input_queue.get((stage_name, from_site))
        if src is None or not src:
            return
        relay = self._net_q((stage_name, stage_name, from_site, to_site))
        relay.push_parcels(src.pop(src.count))

    def rehome_to_placement(
        self,
        stage_name: str,
        bandwidth_rank: "Callable[[str, str], float] | None" = None,
    ) -> None:
        """Move queues destined for sites where the stage has no tasks.

        After a re-plan or failure the stage's placement may no longer cover
        every site holding queued input or expecting in-flight traffic; this
        sweep re-homes those onto the stage's live sites (the one ranked
        best by ``bandwidth_rank`` when provided, the lexicographically
        first otherwise).
        """
        stage = self._plan.stages.get(stage_name)
        if stage is None:
            return
        live = set(stage.placement())
        if not live:
            return

        def target_for(orphan_site: str) -> str:
            if bandwidth_rank is None:
                return sorted(live)[0]
            return max(
                sorted(live), key=lambda s: bandwidth_rank(orphan_site, s)
            )

        for (name, site) in list(self._input_queue):
            if name != stage_name or site in live:
                continue
            queue = self._input_queue.pop((name, site))
            if queue:
                # Queued input at a vacated site relays over the WAN to a
                # live task (Section 4.2's "relayed data streams"); the
                # relay flow pays for the link like any other traffic.
                relay = self._net_q(
                    (stage_name, stage_name, site, target_for(site))
                )
                relay.push_parcels(queue.pop(queue.count))
        changed = False
        for key in list(self._net_queue):
            src_stage, dst_stage, su, sd = key
            if dst_stage != stage_name or sd in live:
                continue
            queue = self._net_queue.pop(key)
            changed = True
            if queue:
                target = self._net_q(
                    (src_stage, dst_stage, su, target_for(sd))
                )
                target.push_parcels(queue.pop(queue.count))
        if changed:
            self._rebuild_net_index()

    def inject_replay(
        self, stage_name: str, site: str, events: float, gen_time_s: float
    ) -> None:
        """Queue events for re-processing after a failure recovery.

        Work processed since the last local checkpoint is lost with the
        failure and must be replayed from the upstream logs (Section 5's
        checkpoint/restore semantics): it re-enters the stage's input queue
        carrying its original generation time, so the recovery's delay cost
        is measured honestly.
        """
        if events <= 0:
            return
        table = (
            self._gen_queue
            if self._plan.stages.get(stage_name) is not None
            and self._plan.stages[stage_name].is_source
            else self._input_queue
        )
        self._queue(table, (stage_name, site)).push(events, gen_time_s)

    def mutation_snapshot(self) -> "RuntimeSnapshot":
        """Capture everything the mutation API can change.

        The transactional adaptation executor calls this before applying an
        action; :meth:`restore_mutation_snapshot` puts the engine back
        exactly (queues, suspensions, plan reference) if the action has to
        be rolled back mid-flight.  Queues are captured copy-on-write: only
        the ones the adaptation attempt actually mutates are ever deep
        copied.
        """
        return RuntimeSnapshot(
            plan=self._plan,
            gen_queue={k: q.clone_cow() for k, q in self._gen_queue.items()},
            input_queue={
                k: q.clone_cow() for k, q in self._input_queue.items()
            },
            net_queue={k: q.clone_cow() for k, q in self._net_queue.items()},
            suspended_until=dict(self._suspended_until),
        )

    def restore_mutation_snapshot(self, snapshot: "RuntimeSnapshot") -> None:
        """Restore a :meth:`mutation_snapshot` (adaptation rollback)."""
        plan_changed = snapshot.plan is not self._plan
        self._plan = snapshot.plan
        self._gen_queue = {
            k: q.clone_cow() for k, q in snapshot.gen_queue.items()
        }
        self._input_queue = {
            k: q.clone_cow() for k, q in snapshot.input_queue.items()
        }
        self._net_queue = {
            k: q.clone_cow() for k, q in snapshot.net_queue.items()
        }
        self._suspended_until = dict(snapshot.suspended_until)
        self._rebuild_net_index()
        if plan_changed:
            self._refresh_plan_constants()

    def replace_plan(self, new_plan: PhysicalPlan) -> None:
        """Swap in a re-planned physical plan (Section 4.3).

        Stages present in both plans (common sub-plans - same head operator
        name) keep their input queues.  In-flight network queues are re-bound
        to the new downstream of their source stage where possible and
        dropped otherwise (the re-planner only removes stateless stages, so
        no state is lost; the events are re-read from upstream queues in the
        stateless case and re-counted as queued work).
        """
        old_plan = self._plan
        surviving = set(new_plan.stages) & set(old_plan.stages)

        # Input queues: keep for surviving stages, fold removed stages'
        # queues back into the new consumer of their upstream output.
        new_downstream_of: dict[str, list[str]] = {
            name: [s.name for s in new_plan.downstream_stages(name)]
            for name in new_plan.stages
        }
        for (stage_name, site) in list(self._input_queue):
            if stage_name in surviving:
                continue
            queue = self._input_queue.pop((stage_name, site))
            if not queue:
                continue
            # Feed the orphaned events to the first surviving upstream's new
            # downstream, at the same site (they will be routed from there).
            upstream = [
                u.name
                for u in old_plan.upstream_stages(stage_name)
                if u.name in surviving
            ]
            heirs = new_downstream_of.get(upstream[0], []) if upstream else []
            if heirs:
                heir = heirs[0]
                self._queue(self._input_queue, (heir, site)).push_parcels(
                    queue.pop(queue.count)
                )

        for key in list(self._net_queue):
            src_stage, dst_stage, su, sd = key
            if src_stage in surviving and dst_stage in surviving:
                # Edge may no longer exist; re-bind to the new downstream.
                if dst_stage in new_downstream_of.get(src_stage, []):
                    continue
            queue = self._net_queue.pop(key)
            if not queue:
                continue
            if src_stage in surviving:
                heirs = new_downstream_of.get(src_stage, [])
                if heirs:
                    target = self._net_q((src_stage, heirs[0], su, sd))
                    target.push_parcels(queue.pop(queue.count))

        self._plan = new_plan
        self._rebuild_net_index()
        self._refresh_plan_constants()

    # ------------------------------------------------------------------ #
    # Tick
    # ------------------------------------------------------------------ #

    def tick(
        self, link_budget: dict[tuple[str, str], float] | None = None
    ) -> TickReport:
        """Advance the engine by one tick; returns the tick's observations.

        Args:
            link_budget: Per-tick directed-link byte budgets.  Pass a dict
                shared across several runtimes to make co-located queries
                contend for the same WAN links (Section 3.2's "bandwidth
                contention with other executions"); by default each tick
                gets a private budget.
        """
        dt = self._config.tick_s
        now = self._now_s + dt
        report = TickReport(t_s=now)

        if link_budget is None:
            link_budget = {}

        cache = self._plan_cache()
        gen_queue = self._gen_queue

        # 1. External generation.
        offered = 0.0
        offered_by_source = report.offered_by_source
        # Events generated uniformly across the tick: mean age dt/2.
        mean_gen_time = now - dt / 2
        for src in cache.sources:
            if src.pinned_site is None:
                raise SimulationError(
                    f"source stage {src.name!r} has no pinned site"
                )
            rate = self._workload.generation_eps(src.name, now)
            gen = rate * dt
            if gen > 0:
                queue = gen_queue.get(src.gen_key)
                if queue is None:
                    queue = FluidQueue()
                    gen_queue[src.gen_key] = queue
                queue.push(gen, mean_gen_time)
            offered += gen
            offered_by_source[src.name] = gen
        report.offered = offered

        # 2. Stage execution in topological order, transferring each stage's
        # outgoing flows immediately so downstream stages can consume them
        # within the same tick (sub-tick pipelining).
        for ex in cache.topo:
            self._run_stage(ex, now, dt, report)
            self._transfer_stage_flows(ex, now, dt, link_budget, report)

        # Relay flows (scale-down) originate from stages to themselves and
        # were handled inside _transfer_stage_flows via the same net queues.

        # 3. Record end-of-tick backlogs.
        for (stage_name, site), queue in self._input_queue.items():
            if queue.count > 0:
                report.input_backlog[(stage_name, site)] = queue.count
        for (stage_name, site), queue in self._gen_queue.items():
            if queue.count > 0:
                key = (stage_name, site)
                report.input_backlog[key] = (
                    report.input_backlog.get(key, 0.0) + queue.count
                )
        for key, queue in self._net_queue.items():
            if queue.count > 0:
                report.net_backlog[key] = queue.count

        self._now_s = now
        self.last_report = report
        return report

    # -------------------------- stage execution ------------------------ #

    def _run_stage(
        self, ex: _StageExec, now: float, dt: float, report: TickReport
    ) -> None:
        table = self._gen_queue if ex.is_source else self._input_queue
        name = ex.name
        cost = ex.cost
        sel = ex.selectivity
        slo = self._degrade_slo_s
        cutoff = (now - slo) if slo is not None else None
        suspended = self._now_s < self._suspended_until.get(name, 0.0)
        buf = self._pop_buf
        capacity_by_site = report.capacity_by_site
        processed_by_site = report.processed_by_site
        stage_processed = 0.0
        stage_emitted = 0.0
        had_output = False
        for site, site_obj, n_tasks, site_key in ex.site_rows:
            queue = table.get(site_key)
            if queue is None:
                queue = FluidQueue()
                table[site_key] = queue
            if cutoff is not None:
                dropped = queue.drop_older_than(cutoff)
                if dropped > 0:
                    report.dropped_source_equiv += self._to_source_equiv(
                        name, dropped
                    )
                    report.dropped_raw_input[name] = (
                        report.dropped_raw_input.get(name, 0.0) + dropped
                    )
            if suspended or site_obj.failed:
                capacity = 0.0
            else:
                capacity = (
                    n_tasks * site_obj.effective_proc_rate_eps / cost * dt
                )
            buf.clear()
            processed = queue.pop_into(capacity, buf)
            if processed <= 0:
                capacity_by_site[site_key] = capacity
                continue
            stage_processed += processed
            processed_by_site[site_key] = processed
            capacity_by_site[site_key] = capacity

            if ex.is_sink:
                emitted = 0.0
                delay = 0.0
                for p in buf:
                    c = p.count * sel
                    emitted += c
                    delay += c * (now - p.gen_time_s)
                report.sink_events += emitted
                report.sink_delay_weighted_s += delay
                continue
            # Apply the chained selectivity in place: the popped parcels
            # are exclusively ours, and downstream pushes copy the values.
            had_output = True
            emitted = 0.0
            for p in buf:
                c = p.count * sel
                p.count = c
                emitted += c
            stage_emitted += emitted
            if sel != 0.0:
                self._route_output(ex, site, buf, report)
        if stage_processed > 0.0:
            report.processed[name] = stage_processed
        if had_output:
            report.emitted[name] = stage_emitted

    def _route_output(
        self,
        ex: _StageExec,
        src_site: str,
        out_parcels: list[Parcel],
        report: TickReport,
    ) -> None:
        """Partition a stage's per-site output across downstream tasks.

        Balanced event partitioning (Section 7): each downstream stage
        receives the full stream, split across its tasks in proportion to
        tasks per site.
        """
        name = ex.name
        input_queue = self._input_queue
        arrived = report.arrived
        for down in ex.downstream:
            if not down.deployed:
                # Downstream not deployed (transient during adaptation):
                # keep the events at the sender by re-queueing them into the
                # queue this stage reads from, to be re-emitted next tick.
                table = self._gen_queue if ex.is_source else self._input_queue
                self._queue(table, (name, src_site)) \
                    .push_parcels(out_parcels)
                report.requeued[name] = report.requeued.get(name, 0.0) + sum(
                    p.count for p in out_parcels
                )
                continue
            for dst_site, fraction, in_key in down.shares:
                if dst_site == src_site:
                    queue = input_queue.get(in_key)
                    if queue is None:
                        queue = FluidQueue()
                        input_queue[in_key] = queue
                    moved = queue.push_scaled(out_parcels, fraction)
                    arrived[down.name] = (
                        arrived.get(down.name, 0.0) + moved
                    )
                else:
                    self._net_q(
                        (name, down.name, src_site, dst_site)
                    ).push_scaled(out_parcels, fraction)

    def _transfer_stage_flows(
        self,
        ex: _StageExec,
        now: float,
        dt: float,
        link_budget: dict[tuple[str, str], float],
        report: TickReport,
    ) -> None:
        """Move this stage's outgoing WAN queues within link budgets."""
        flow_keys = self._net_index.get(ex.name)
        if not flow_keys:
            return
        event_bytes = ex.output_event_bytes
        slo = self._degrade_slo_s
        cutoff = (now - slo) if slo is not None else None
        net_queue = self._net_queue
        input_queue = self._input_queue
        topology = self._topology
        arrived = report.arrived
        net_sent = report.net_sent
        buf = self._pop_buf
        # Deterministic order (the index is kept sorted); FCFS link sharing
        # across flows.
        for key in flow_keys:
            queue = net_queue[key]
            if not queue:
                continue
            _, dst_stage, src_site, dst_site = key
            if cutoff is not None:
                dropped = queue.drop_older_than(cutoff)
                if dropped > 0:
                    report.dropped_source_equiv += self._to_source_equiv(
                        dst_stage, dropped
                    )
                    report.dropped_raw_net[dst_stage] = (
                        report.dropped_raw_net.get(dst_stage, 0.0) + dropped
                    )
                if not queue:
                    continue
            link = (src_site, dst_site)
            budget = link_budget.get(link)
            if budget is None:
                budget = (
                    topology.bandwidth_mbps(src_site, dst_site)
                    * MBIT_BYTES
                    * dt
                )
                link_budget[link] = budget
            budget_events = budget / event_bytes
            if budget_events <= 0:
                continue
            buf.clear()
            moved = queue.pop_into(budget_events, buf)
            if moved <= 0:
                continue
            link_budget[link] = budget - moved * event_bytes
            latency_s = topology.latency_ms(src_site, dst_site) / 1000.0
            dst_q = input_queue.get((dst_stage, dst_site))
            if dst_q is None:
                dst_q = FluidQueue()
                input_queue[(dst_stage, dst_site)] = dst_q
            dst_q.push_aged(buf, latency_s)
            net_sent[key] = net_sent.get(key, 0.0) + moved
            arrived[dst_stage] = arrived.get(dst_stage, 0.0) + moved

    # -------------------------- conversions ---------------------------- #

    def _to_source_equiv(self, stage_name: str, events: float) -> float:
        """Convert events observed at a stage input into source events."""
        return events * self._stage_equiv_factor.get(stage_name, 1.0)

    def to_source_equivalents(self, stage_name: str, events: float) -> float:
        """Public conversion: stage-input events -> source events."""
        return self._to_source_equiv(stage_name, events)

    def sink_source_equiv(self, sink_events: float) -> float:
        """Convert sink emissions into source-equivalents (Section 8.3)."""
        return sink_events / self._plan_selectivity


class WorkloadModel:
    """Minimal interface the engine requires of a workload.

    Concrete workloads live in :mod:`repro.workloads`; this base class exists
    so the engine module does not import them (no circular dependency) and so
    tests can plug in trivial constant-rate workloads.
    """

    def generation_eps(self, source_stage: str, t_s: float) -> float:
        """Raw events/second generated at the given source stage."""
        raise NotImplementedError

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` - deploy a Table-3 query under a named dynamics scenario and one
  or more controller variants; prints the per-variant summary and the
  adaptation log.
* ``figures`` - regenerate one of the paper's figures/tables as text.
* ``trace`` - render the adaptation timeline of a JSONL trace produced by
  ``--trace-out`` (or validate it with ``--validate-only``).
* ``fuzz`` - run a seeded scenario-fuzzing campaign under runtime
  invariant checking (``repro.fuzz``), or replay a pinned repro artifact.
* ``list`` - enumerate the available queries, variants, dynamics, figures.

Examples::

    python -m repro run --query topk-topics --variant WASP \
        --dynamics bottleneck --duration 900
    python -m repro run --query ysb-advertising \
        --variant "No Adapt" --variant WASP --dynamics live
    python -m repro run --dynamics technique --trace-out run.jsonl
    python -m repro trace run.jsonl
    python -m repro figures fig13
    python -m repro fuzz --seeds 25 --jobs 2 --out fuzz-report.json
    python -m repro fuzz --replay tests/fuzz/fixtures/conservation.json
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .baselines.variants import ALL_NAMED, VariantSpec
from .errors import WaspError
from .experiments import figures as fig
from .experiments.harness import ExperimentRun
from .experiments.scenarios import (
    FIG13_STATE_MB,
    FIG14_STATE_SIZES_MB,
    MIGRATION_RUN_DURATION_S,
    MIGRATION_TRIGGER_AT_S,
    bottleneck_dynamics,
    build_migration_run,
    fig8_scenario,
    fig10_scenario,
    fig11_scenario,
    force_partitioned_adaptation,
    force_reassignment,
    live_dynamics,
    make_query_by_name,
    migration_variants,
    quiet_dynamics,
    technique_dynamics,
)
from .network.bandwidth import oregon_ohio_trace
from .network.traces import paper_testbed
from .sim.rng import RngRegistry
from .workloads.queries import all_queries

QUERIES = ("ysb-advertising", "topk-topics", "events-of-interest")
DYNAMICS = {
    "quiet": quiet_dynamics,
    "bottleneck": bottleneck_dynamics,
    "technique": technique_dynamics,
    "live": live_dynamics,
}
FIGURES = (
    "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "table2", "table3",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="WASP (Middleware '20) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a query under dynamics")
    run_p.add_argument("--query", choices=QUERIES, default="topk-topics")
    run_p.add_argument(
        "--variant",
        action="append",
        default=None,
        help=f"controller variant (repeatable); one of {sorted(ALL_NAMED)}",
    )
    run_p.add_argument("--dynamics", choices=sorted(DYNAMICS),
                       default="bottleneck")
    run_p.add_argument("--duration", type=float, default=900.0)
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument(
        "--backend",
        choices=("reference", "dense"),
        default="reference",
        help="engine backend: per-parcel reference loops or the "
        "numpy structure-of-arrays kernel",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="profile each variant with cProfile and print the hot spots",
    )
    run_p.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="with --profile: also dump the raw pstats file for offline "
        "analysis (per-variant suffix when several variants run)",
    )
    run_p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a JSONL adaptation trace (per-variant suffix when "
        "several variants run)",
    )
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write Prometheus textfile metrics at end of run",
    )

    fig_p = sub.add_parser("figures", help="regenerate a paper figure/table")
    fig_p.add_argument("which", choices=FIGURES)
    fig_p.add_argument("--seed", type=int, default=42)
    fig_p.add_argument(
        "--backend",
        choices=("reference", "dense"),
        default="reference",
        help="engine backend for figures that run variants (fig8-fig12)",
    )
    fig_p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write per-variant JSONL traces for figures that run variants",
    )

    trace_p = sub.add_parser(
        "trace", help="render the adaptation timeline of a JSONL trace"
    )
    trace_p.add_argument("path", help="trace file written by --trace-out")
    trace_p.add_argument(
        "--validate-only",
        action="store_true",
        help="schema-check every record and report the count; no timeline",
    )

    fuzz_p = sub.add_parser(
        "fuzz", help="run a seeded invariant-checking fuzz campaign"
    )
    fuzz_p.add_argument(
        "--seeds", type=int, default=25,
        help="number of generated scenarios (seeds base..base+N-1)",
    )
    fuzz_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (shared-nothing seed shards)",
    )
    fuzz_p.add_argument("--base-seed", type=int, default=0)
    fuzz_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the merged campaign report as JSON",
    )
    fuzz_p.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="shrink failing scenarios and write one replayable repro "
        "artifact per violated invariant class",
    )
    fuzz_p.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a repro artifact instead of running a campaign",
    )
    fuzz_p.add_argument(
        "--backend",
        choices=("reference", "dense"),
        default=None,
        help="force every scenario onto one engine backend (default: "
        "each scenario's own configuration)",
    )

    sub.add_parser("list", help="list queries, variants, dynamics, figures")
    return parser


def _resolve_variants(names: list[str] | None) -> list[VariantSpec]:
    if not names:
        return [ALL_NAMED["WASP"]]
    specs = []
    for name in names:
        if name not in ALL_NAMED:
            raise WaspError(
                f"unknown variant {name!r}; choose from {sorted(ALL_NAMED)}"
            )
        specs.append(ALL_NAMED[name])
    return specs


def _profiled_run(
    run: ExperimentRun, duration: float, dynamics, profile_out: str | None = None
):
    """Run under cProfile; print wall time, tick rate and top hot spots."""
    import cProfile
    import io
    import pstats
    import time

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    recorder = run.run(duration, dynamics)
    profiler.disable()
    wall = time.perf_counter() - t0
    ticks = duration / run.config.tick_s
    print(
        f"  profile: {wall:.3f}s wall, "
        f"{ticks / wall if wall > 0 else float('inf'):.0f} ticks/s"
    )
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    if profile_out:
        stats.dump_stats(profile_out)
        print(f"  pstats -> {profile_out}")
    stats.sort_stats("cumulative").print_stats(15)
    # Skip pstats' preamble; indent the table under the variant header.
    lines = out.getvalue().splitlines()
    start = next(
        (i for i, line in enumerate(lines) if "ncalls" in line), 0
    )
    for line in lines[start:]:
        if line.strip():
            print(f"  {line}")
    return recorder


def _variant_path(path: str, variant_name: str, multi: bool) -> str:
    """Suffix ``path`` with the variant name when several variants run."""
    if not multi:
        return path
    slug = variant_name.lower().replace(" ", "-").replace("/", "-")
    root, dot, ext = path.rpartition(".")
    if dot:
        return f"{root}.{slug}.{ext}"
    return f"{path}.{slug}"


def cmd_run(args: argparse.Namespace) -> int:
    from .config import WaspConfig

    variants = _resolve_variants(args.variant)
    multi = len(variants) > 1
    config = WaspConfig.paper_defaults().with_overrides(
        engine_backend=args.backend
    )
    print(
        f"query={args.query} dynamics={args.dynamics} "
        f"duration={args.duration:.0f}s seed={args.seed} "
        f"backend={args.backend}"
    )
    for variant in variants:
        rngs = RngRegistry(args.seed)
        topology = paper_testbed(rngs.stream("topology"))
        query = make_query_by_name(args.query)(topology, rngs)
        run = ExperimentRun(topology, query, variant, config=config, rngs=rngs)
        if args.trace_out:
            trace_path = _variant_path(args.trace_out, variant.name, multi)
            run.attach_trace(trace_path)
            print(f"  trace -> {trace_path}")
        if args.metrics_out:
            metrics_path = _variant_path(
                args.metrics_out, variant.name, multi
            )
            run.attach_metrics(metrics_path)
            print(f"  metrics -> {metrics_path}")
        dynamics = DYNAMICS[args.dynamics](rngs)
        if args.profile:
            profile_out = (
                _variant_path(args.profile_out, variant.name, multi)
                if args.profile_out
                else None
            )
            recorder = _profiled_run(run, args.duration, dynamics, profile_out)
        else:
            if args.profile_out:
                print(
                    "note: --profile-out ignored without --profile",
                    file=sys.stderr,
                )
            recorder = run.run(args.duration, dynamics)
        run.obs.close()
        print(f"\n--- {variant.name} ---")
        print(f"  mean delay      : {recorder.mean_delay():10.2f} s")
        print(f"  p95 delay       : {recorder.delay_percentile(95):10.2f} s")
        print(f"  p99 delay       : {recorder.delay_percentile(99):10.2f} s")
        print(
            f"  processed       : "
            f"{recorder.processed_fraction() * 100:9.1f} %"
        )
        if run.manager is not None and run.manager.history:
            print("  adaptations:")
            for record in run.manager.history:
                print(
                    f"    t={record.t_s:6.0f}s {record.kind.value:11s} "
                    f"{record.stage:30s} transition={record.transition_s:.1f}s"
                )
    return 0


def _figures_runs(
    which: str,
    seed: int,
    trace_out: str | None = None,
    backend: str = "reference",
):
    from .config import WaspConfig
    from .experiments.harness import run_variants

    if which in ("fig8", "fig9"):
        scenario = fig8_scenario("topk-topics")
    elif which == "fig10":
        scenario = fig10_scenario()
    else:
        scenario = fig11_scenario()
    instrument = None
    if trace_out:
        multi = len(scenario.variants) > 1

        def instrument(name: str, run: ExperimentRun) -> None:
            run.attach_trace(_variant_path(trace_out, name, multi))

    return run_variants(
        scenario.make_topology,
        scenario.make_query,
        list(scenario.variants),
        scenario.duration_s,
        scenario.make_dynamics,
        config=WaspConfig.paper_defaults().with_overrides(
            engine_backend=backend
        ),
        seed=seed,
        instrument=instrument,
    )


def cmd_figures(args: argparse.Namespace) -> int:
    which, seed = args.which, args.seed
    trace_out = getattr(args, "trace_out", None)
    backend = getattr(args, "backend", "reference")
    if backend != "reference" and which not in (
        "fig8", "fig9", "fig10", "fig11", "fig12"
    ):
        print(
            f"note: --backend ignored for {which} (no variant runs)",
            file=sys.stderr,
        )
    if trace_out and which not in ("fig8", "fig9", "fig10", "fig11", "fig12"):
        print(
            f"note: --trace-out ignored for {which} (no variant runs)",
            file=sys.stderr,
        )
    if which == "fig2":
        print(fig.fig2_report(oregon_ohio_trace(np.random.default_rng(seed))))
    elif which == "fig7":
        print(fig.fig7_report(paper_testbed(np.random.default_rng(seed))))
    elif which == "fig8":
        print(
            fig.fig8_report(
                _figures_runs(which, seed, trace_out, backend), "topk-topics"
            )
        )
    elif which == "fig9":
        print(
            fig.fig9_report(
                _figures_runs(which, seed, trace_out, backend), "topk-topics"
            )
        )
    elif which == "fig10":
        print(fig.fig10_report(_figures_runs(which, seed, trace_out, backend)))
    elif which == "fig11":
        print(fig.fig11_report(_figures_runs(which, seed, trace_out, backend)))
    elif which == "fig12":
        print(fig.fig12_report(_figures_runs(which, seed, trace_out, backend)))
    elif which == "fig13":
        breakdowns = []
        for variant in migration_variants():
            run = build_migration_run(variant, FIG13_STATE_MB, seed=20)
            run.run(MIGRATION_TRIGGER_AT_S)
            destination = force_reassignment(run)
            run.run(MIGRATION_RUN_DURATION_S - MIGRATION_TRIGGER_AT_S)
            breakdowns.append(
                fig.measure_overhead(
                    run, run.manager.history[-1], destination=destination
                )
            )
        print(fig.fig13_report(breakdowns))
    elif which == "fig14":
        rows = []
        for mode in ("Default", "Partitioned"):
            for size in FIG14_STATE_SIZES_MB:
                run = build_migration_run(ALL_NAMED["WASP"], size, seed=20)
                run.run(MIGRATION_TRIGGER_AT_S)
                if mode == "Partitioned":
                    force_partitioned_adaptation(run, t_threshold_s=30.0)
                else:
                    force_reassignment(run)
                run.run(700.0 - MIGRATION_TRIGGER_AT_S)
                rows.append(
                    (mode, size,
                     fig.measure_overhead(run, run.manager.history[-1]))
                )
        print(fig.fig14_report(rows))
    elif which == "table2":
        print(fig.table2_report())
    elif which == "table3":
        rngs = RngRegistry(seed)
        topology = paper_testbed(rngs.stream("topology"))
        print(fig.table3_report(all_queries(topology, rngs.stream("query"))))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import read_jsonl, render_timeline, require_valid

    records = read_jsonl(args.path)
    if args.validate_only:
        for record in records:
            require_valid(record)
        print(f"{args.path}: {len(records)} records, all valid")
        return 0
    print(render_timeline(records))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .fuzz import (
        generate_scenario,
        load_artifact,
        run_campaign,
        run_scenario,
        shrink_scenario,
        write_artifact,
    )

    if args.replay:
        spec, payload = load_artifact(args.replay)
        if args.backend:
            import dataclasses

            spec = dataclasses.replace(
                spec,
                config_overrides={
                    **spec.config_overrides,
                    "engine_backend": args.backend,
                },
            )
        print(
            f"replaying {args.replay}: seed={spec.seed} "
            f"pinned-invariant={payload.get('invariant')}"
        )
        result = run_scenario(spec)
        print(f"  digest: {result.digest}")
        print(f"  ticks : {result.ticks}")
        if result.ok:
            print("  violations: none")
            return 0
        for v in result.violations:
            print(f"  t={v.t_s:8.1f}s {v.invariant:18s} {v.detail}")
        return 1

    report = run_campaign(
        args.seeds,
        base_seed=args.base_seed,
        jobs=args.jobs,
        backend=args.backend,
    )
    backend_note = f", backend={args.backend}" if args.backend else ""
    print(
        f"campaign: {args.seeds} seeds (base {args.base_seed}), "
        f"{args.jobs} job(s){backend_note}"
    )
    print(f"  ticks checked : {sum(r.ticks for r in report.results)}")
    totals = report.totals()
    print("  checks exercised:")
    for invariant, count in report.checks().items():
        print(f"    {invariant:20s} {count}")
    print(f"  failing seeds : {len(report.failing)}/{args.seeds}")
    for invariant, count in totals.items():
        print(f"    {invariant:20s} {count}")
    if args.out:
        Path(args.out).write_text(report.to_json())
        print(f"  report -> {args.out}")
    if args.artifact_dir and report.failing:
        outdir = Path(args.artifact_dir)
        outdir.mkdir(parents=True, exist_ok=True)
        pinned: set[str] = set()
        for result in report.failing:
            for invariant in result.invariants_hit():
                if invariant in pinned:
                    continue
                pinned.add(invariant)
                shrunk, violations = shrink_scenario(
                    generate_scenario(result.seed), invariant
                )
                path = outdir / f"{invariant}-seed{result.seed}.json"
                write_artifact(path, shrunk, violations, invariant=invariant)
                print(f"  repro -> {path}")
    return 0 if report.ok else 1


def cmd_list(args: argparse.Namespace) -> int:
    del args
    print("queries  :", ", ".join(QUERIES))
    print("variants :", ", ".join(sorted(ALL_NAMED)))
    print("dynamics :", ", ".join(sorted(DYNAMICS)))
    print("figures  :", ", ".join(FIGURES))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "figures":
            return cmd_figures(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "fuzz":
            return cmd_fuzz(args)
        return cmd_list(args)
    except WaspError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

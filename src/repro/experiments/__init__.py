"""Experiment harness and the Section-8 scenario builders."""

from .harness import (
    DynamicsSpec,
    ExperimentRun,
    FailureEvent,
    StragglerEvent,
    run_variants,
)
from .multiquery import MultiQueryRun, QuerySubmission

__all__ = [
    "DynamicsSpec",
    "ExperimentRun",
    "FailureEvent",
    "MultiQueryRun",
    "QuerySubmission",
    "StragglerEvent",
    "run_variants",
]

"""Multi-query execution over a shared WAN (Sections 2.1 and 3.2).

The Job Manager serves many long-running queries on the same
geo-distributed infrastructure, and the paper explicitly lists "bandwidth
contention with other executions" among the causes of network bottlenecks.
:class:`MultiQueryRun` co-schedules several :class:`ExperimentRun` instances
on **one** topology:

* computing slots are shared automatically (every scheduler allocates from
  the same :class:`~repro.network.topology.Topology`);
* WAN links are shared through a per-tick byte budget passed to every
  engine, so one query's traffic genuinely eats into another's capacity;
* link budgets are granted in a rotating order, so no query permanently
  wins the FCFS race within a tick;
* each query keeps its own controller - adaptations are per-query, exactly
  as in the paper's architecture (the Reconfiguration Manager adapts
  *queries*, the infrastructure is shared).

Cross-query contention thus becomes endogenous: when query A scales out
onto a link that query B depends on, B's monitor sees the bandwidth drop
and B's controller reacts - no driver injection required.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.variants import VariantSpec
from ..config import WaspConfig
from ..errors import ConfigurationError
from ..network.topology import Topology
from ..sim.recorder import RunRecorder
from ..sim.rng import RngRegistry
from ..workloads.queries import BenchmarkQuery
from .harness import DynamicsSpec, ExperimentRun


@dataclass(frozen=True)
class QuerySubmission:
    """One query entering the shared cluster."""

    query: BenchmarkQuery
    variant: VariantSpec
    #: Simulated time at which the query is deployed and starts running.
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("start_s must be >= 0")


class MultiQueryRun:
    """Co-schedules several queries on one topology with shared WAN."""

    def __init__(
        self,
        topology: Topology,
        submissions: list[QuerySubmission],
        *,
        config: WaspConfig | None = None,
        rngs: RngRegistry | None = None,
        dynamics: DynamicsSpec | None = None,
    ) -> None:
        if not submissions:
            raise ConfigurationError("need at least one query submission")
        self.topology = topology
        self.config = config or WaspConfig.paper_defaults()
        self.rngs = rngs or RngRegistry(self.config.seed)
        self._submissions = sorted(submissions, key=lambda s: s.start_s)
        self._pending = list(self._submissions)
        self.runs: list[ExperimentRun] = []
        self._now_s = 0.0
        self._rotate = 0
        self._dynamics = dynamics or DynamicsSpec()
        # Deploy everything due at t = 0.
        self._admit_due()

    # ------------------------------------------------------------------ #

    @property
    def now_s(self) -> float:
        return self._now_s

    def recorders(self) -> dict[str, RunRecorder]:
        return {run.recorder.name: run.recorder for run in self.runs}

    def run_named(self, query_name: str) -> ExperimentRun:
        for run in self.runs:
            if run.query.name == query_name:
                return run
        raise ConfigurationError(f"no running query named {query_name!r}")

    def _admit_due(self) -> None:
        while self._pending and self._pending[0].start_s <= self._now_s:
            submission = self._pending.pop(0)
            index = len(self.runs)
            run = ExperimentRun(
                self.topology,
                submission.query,
                submission.variant,
                config=self.config,
                rngs=self.rngs.fork(f"query-{index}"),
            )
            # Only the multi-run applies environment dynamics; sub-runs get
            # an empty spec so failures/bandwidth are not applied twice.
            # (The first admitted run carries the spec - its dynamics hooks
            # mutate the shared topology exactly once per tick.)
            if index == 0:
                run.set_dynamics(self._dynamics)
            self.runs.append(run)

    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """One shared tick: every query's engine draws from one budget."""
        self._now_s += self.config.tick_s
        self._admit_due()
        shared_budget: dict[tuple[str, str], float] = {}
        order = list(range(len(self.runs)))
        if order:
            shift = self._rotate % len(order)
            order = order[shift:] + order[:shift]
        self._rotate += 1
        for index in order:
            self.runs[index].step(shared_budget)

    def run(self, duration_s: float) -> dict[str, RunRecorder]:
        """Advance the whole cluster by ``duration_s`` of simulated time."""
        end_s = self._now_s + duration_s
        while self._now_s + 1e-9 < end_s:
            self.step()
        return self.recorders()

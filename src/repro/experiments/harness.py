"""Experiment harness: wire a query + variant + dynamics and run it.

One :class:`ExperimentRun` reproduces one line of one figure: it performs
the WAN-aware initial deployment (Query Planner + Scheduler, Section 2.1),
builds the engine, and - for adapting variants - attaches a Reconfiguration
Manager on the paper's 40-second monitoring cadence plus a Checkpoint
Coordinator on the 30-second checkpointing cadence.

Dynamics follow the driver-program approach of Section 8.2: workload-factor
and bandwidth-factor schedules plus failure injection, all seeded and
deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..baselines.variants import VariantSpec
from ..config import WaspConfig
from ..core.controller import ReconfigurationManager
from ..core.longterm import LongTermPlanner, OracleForecaster
from ..core.replanning import Replanner
from ..engine.checkpoint import CheckpointCoordinator
from ..engine.dense import create_runtime
from ..engine.state import StateStore
from ..errors import ConfigurationError, InfeasiblePlacementError
from ..network.monitor import WanMonitor
from ..network.topology import Topology
from ..obs.events import EventBus, Restore
from ..planner.cost import choose_best_deployment
from ..planner.scheduler import Scheduler
from ..sim.clock import SimClock
from ..sim.recorder import RunRecorder, TickSample
from ..sim.rng import RngRegistry
from ..sim.schedule import Schedule
from ..workloads.queries import BenchmarkQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..chaos.injector import ChaosInjector
    from ..obs.sinks import JsonlSink, PrometheusTextfileSink


@dataclass(frozen=True)
class FailureEvent:
    """Revoke (all or some) sites' resources for a duration (Section 8.6)."""

    t_s: float
    duration_s: float
    sites: tuple[str, ...] | None = None  # None = every site

    def __post_init__(self) -> None:
        if self.t_s < 0 or self.duration_s <= 0:
            raise ConfigurationError("failure needs t_s >= 0, duration > 0")

    @property
    def end_s(self) -> float:
        return self.t_s + self.duration_s


@dataclass(frozen=True)
class StragglerEvent:
    """Slow down a site's slots for a duration (the Section-1 straggler
    dynamic: the site keeps running, only slower)."""

    t_s: float
    duration_s: float
    site: str
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.t_s < 0 or self.duration_s <= 0:
            raise ConfigurationError(
                "straggler needs t_s >= 0, duration > 0"
            )
        if self.slowdown < 1.0:
            raise ConfigurationError("slowdown must be >= 1")

    @property
    def end_s(self) -> float:
        return self.t_s + self.duration_s


@dataclass
class DynamicsSpec:
    """The driver program: what changes, when."""

    workload_schedule: Schedule | None = None
    bandwidth_schedule: Schedule | None = None
    link_bandwidth_schedules: dict[tuple[str, str], Schedule] = field(
        default_factory=dict
    )
    failures: list[FailureEvent] = field(default_factory=list)
    stragglers: list[StragglerEvent] = field(default_factory=list)


class ExperimentRun:
    """A fully-wired single run (one variant, one query, one dynamics)."""

    def __init__(
        self,
        topology: Topology,
        query: BenchmarkQuery,
        variant: VariantSpec,
        *,
        config: WaspConfig | None = None,
        rngs: RngRegistry | None = None,
        state_mb_override: dict[str, float] | None = None,
    ) -> None:
        self.topology = topology
        self.query = query
        self.variant = variant
        self.config = config or WaspConfig.paper_defaults()
        self.rngs = rngs or RngRegistry(self.config.seed)
        self.recorder = RunRecorder(name=f"{query.name}/{variant.name}")
        #: The run's event bus (repro.obs).  Falsy until a sink is attached
        #: (see :meth:`attach_trace`), so unobserved runs pay nothing.
        self.obs = EventBus()

        self.wan_monitor = WanMonitor(
            topology,
            self.rngs.stream("wan-monitor"),
            relative_error=self.config.estimation_error,
        )
        self.wan_monitor.refresh(0.0)

        # WAN-aware initial deployment over all plan variants.  When no
        # bandwidth-feasible placement exists (a harsh topology draw), fall
        # back to latency-only placement: the query must deploy somewhere
        # and rely on backpressure; the first adaptation round then treats
        # the overload as a bottleneck to resolve.
        source_rates = self._source_rates_at(0.0)
        try:
            estimate = choose_best_deployment(
                list(query.variants),
                self.wan_monitor,
                topology.available_slots(),
                source_rates,
                alpha=self.config.alpha,
            )
        except InfeasiblePlacementError:
            estimate = choose_best_deployment(
                list(query.variants),
                self.wan_monitor,
                topology.available_slots(),
                source_rates,
                alpha=self.config.alpha,
                relaxed=True,
            )
        self.scheduler = Scheduler(topology)
        self.scheduler.deploy(estimate.physical, estimate.assignments)

        self.state_store = StateStore()
        for stage in estimate.physical.topological_stages():
            if stage.stateful:
                override = (state_mb_override or {}).get(stage.name)
                total = override if override is not None else stage.state_mb
                self.state_store.initialize_stage(
                    stage.name, total, [t.site for t in stage.tasks]
                )
        self._state_mb_override = dict(state_mb_override or {})

        self.runtime = create_runtime(
            topology,
            estimate.physical,
            query.workload,
            self.config,
            degrade_slo_s=variant.degrade_slo_s,
        )
        self.checkpoints = CheckpointCoordinator(
            self.state_store,
            self.config.checkpoint_interval_s,
            obs=self.obs,
        )
        self.manager: ReconfigurationManager | None = None
        if variant.adapts:
            replanner = (
                Replanner(list(query.variants), self.config)
                if variant.replanning and len(query.variants) > 1
                else None
            )
            self.manager = ReconfigurationManager(
                self.runtime,
                self.scheduler,
                self.wan_monitor,
                self.state_store,
                self.checkpoints,
                replanner=replanner,
                config=self.config,
                recorder=self.recorder,
                mode=variant.mode,
                migration_strategy=variant.migration_strategy,
                rng=self.rngs.stream("migration"),
                obs=self.obs,
            )

        self.clock = SimClock(self.config.tick_s)
        # Skip-sites comes from the topology's live failed flags, not the
        # harness's scripted-failure set: chaos-injected crashes must also
        # be excluded from a checkpoint round.
        self.clock.every(
            self.config.checkpoint_interval_s,
            lambda now: self.checkpoints.checkpoint_all(
                now,
                skip_sites={s.name for s in self.topology if s.failed},
            ),
            name="checkpoints",
        )
        if self.manager is not None:
            self.clock.every(
                self.config.monitor_interval_s,
                self._adaptation_round,
                name="adaptation",
            )
        self.long_term: LongTermPlanner | None = None
        if (
            self.manager is not None
            and variant.long_term
            and self.manager.replanner is not None
        ):
            self.long_term = LongTermPlanner(
                self.manager,
                OracleForecaster(
                    query.workload, query.workload.source_names
                ),
            )
            self.clock.every(
                self.long_term.config.period_s,
                self.long_term.background_round,
                name="long-term",
            )

        self._dynamics: DynamicsSpec = DynamicsSpec()
        self._failed_now: set[str] = set()
        self._straggling_now: set[str] = set()
        self._fail_start_s: dict[str, float] = {}
        self._chaos: "ChaosInjector | None" = None
        #: Optional invariant checker (repro.fuzz); see :meth:`attach_checker`.
        self._checker = None
        #: Source-equivalents re-queued by checkpoint-replay after failures
        #: (these events are legitimately processed twice).
        self.replayed_source_equiv = 0.0

    # ------------------------------------------------------------------ #
    # Wiring helpers
    # ------------------------------------------------------------------ #

    def _source_rates_at(self, t_s: float) -> dict[str, float]:
        workload = self.query.workload
        return {
            name: workload.generation_eps(name, t_s)
            for name in workload.source_names
        }

    def _adaptation_round(self, now_s: float) -> None:
        assert self.manager is not None
        self.manager.adaptation_round(now_s)
        # Controlled-state experiments keep the stage state pinned to the
        # override even as partitions move/split.
        for stage_name, total in self._state_mb_override.items():
            if self.state_store.sites(stage_name):
                self.state_store.set_total_mb(stage_name, total)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def attach_trace(self, path) -> "JsonlSink":
        """Attach a JSONL trace sink writing to ``path``; returns the sink.

        Close the bus (``run.obs.close()``) when the run finishes so the
        file is flushed."""
        from ..obs.sinks import JsonlSink

        return self.obs.attach(JsonlSink(path))

    def attach_metrics(self, path) -> "PrometheusTextfileSink":
        """Attach a Prometheus textfile exporter writing to ``path``."""
        from ..obs.sinks import PrometheusTextfileSink

        return self.obs.attach(PrometheusTextfileSink(path))

    def attach_checker(self, checker) -> None:
        """Wire a :class:`~repro.fuzz.InvariantChecker` into this run.

        The checker is attached to the event bus (it consumes the full
        adaptation lifecycle) and additionally hooked into :meth:`step`:
        ``on_report`` fires with every :class:`TickReport` after the
        controller has observed it but *before* the periodic callbacks run,
        and ``on_step_end`` fires once the tick (including any adaptation
        round) has fully completed.
        """
        checker.bind(self)
        self.obs.attach(checker)
        self._checker = checker

    # ------------------------------------------------------------------ #
    # Chaos
    # ------------------------------------------------------------------ #

    def attach_chaos(self, injector: "ChaosInjector") -> None:
        """Wire a :class:`~repro.chaos.ChaosInjector` into this run.

        The injector gets the live topology and checkpoint coordinator,
        failure callbacks that reuse this harness's recovery-replay
        semantics, and (when the variant adapts) the controller's
        mid-transaction hook points.  Chaos ticks after scripted dynamics
        each step, so chaos faults win conflicting knobs.
        """
        from ..chaos.faults import ChaosTarget

        injector.attach(
            ChaosTarget(
                topology=self.topology,
                checkpoints=self.checkpoints,
                fail_site=self._chaos_fail_site,
                recover_site=self._chaos_recover_site,
            ),
            manager=self.manager,
        )
        if injector.recorder is None:
            injector.recorder = self.recorder
        if injector.obs is None:
            injector.obs = self.obs
        self._chaos = injector

    def _chaos_fail_site(self, name: str, now_s: float) -> None:
        site = self.topology.site(name)
        if not site.failed:
            site.fail()
            self._fail_start_s.setdefault(name, now_s)

    def _chaos_recover_site(self, name: str, now_s: float) -> None:
        site = self.topology.site(name)
        # Never recover a site the scripted dynamics still hold down.
        if site.failed and name not in self._failed_now:
            site.recover()
            self._inject_recovery_replay(name, now_s)

    # ------------------------------------------------------------------ #
    # Dynamics
    # ------------------------------------------------------------------ #

    def set_dynamics(self, dynamics: DynamicsSpec) -> None:
        self._dynamics = dynamics
        if dynamics.workload_schedule is not None:
            self.query.workload.set_factor_schedule(
                dynamics.workload_schedule
            )

    def _apply_dynamics(self, t_s: float) -> None:
        dyn = self._dynamics
        if dyn.bandwidth_schedule is not None:
            self.topology.set_global_bandwidth_factor(
                dyn.bandwidth_schedule.factor(t_s)
            )
        for (src, dst), schedule in dyn.link_bandwidth_schedules.items():
            self.topology.set_bandwidth_factor(
                src, dst, schedule.factor(t_s)
            )
        should_fail: set[str] = set()
        for event in dyn.failures:
            if event.t_s <= t_s < event.end_s:
                targets = (
                    event.sites
                    if event.sites is not None
                    else tuple(self.topology.site_names)
                )
                should_fail.update(targets)
        for name in should_fail - self._failed_now:
            self.topology.site(name).fail()
            self._fail_start_s[name] = t_s
        for name in self._failed_now - should_fail:
            self.topology.site(name).recover()
            self._inject_recovery_replay(name, t_s)
        self._failed_now = should_fail
        slowdowns: dict[str, float] = {}
        for event in dyn.stragglers:
            if event.t_s <= t_s < event.end_s:
                slowdowns[event.site] = max(
                    slowdowns.get(event.site, 1.0), event.slowdown
                )
        for name in set(slowdowns) | self._straggling_now:
            self.topology.site(name).set_slowdown(slowdowns.get(name, 1.0))
        self._straggling_now = set(slowdowns)

    def _inject_recovery_replay(self, site: str, now_s: float) -> None:
        """Replay work lost with a failed site's un-checkpointed progress.

        A task restored from its last local checkpoint must re-process
        every event it had consumed since that snapshot (Section 5): the
        replay window is the gap between the snapshot and the failure, and
        the replayed events re-enter the input queue with their original
        ages, so the recovery's latency cost is measured honestly.
        """
        fail_start = self._fail_start_s.pop(site, None)
        if fail_start is None:
            return
        rates = self._source_rates_at(fail_start)
        plan = self.runtime.plan
        expected = plan.expected_stage_rates(rates)

        # Consistent-snapshot semantics: replay enters the dataflow at the
        # most upstream restored stage only; everything downstream receives
        # the replayed stream through the normal edges.  Injecting at every
        # restored stage would process the same window twice.
        restoring: set[str] = set()
        for stage in plan.topological_stages():
            if stage.stateful and stage.placement().get(site, 0) > 0:
                restoring.add(stage.name)

        def has_restoring_ancestor(name: str) -> bool:
            frontier = [u.name for u in plan.upstream_stages(name)]
            seen = set(frontier)
            while frontier:
                current = frontier.pop()
                if current in restoring:
                    return True
                for up in plan.upstream_stages(current):
                    if up.name not in seen:
                        seen.add(up.name)
                        frontier.append(up.name)
            return False

        for stage in plan.topological_stages():
            if stage.name not in restoring:
                continue
            if has_restoring_ancestor(stage.name):
                continue
            placement = stage.placement()
            count = placement.get(site, 0)
            total = sum(placement.values())
            if count == 0 or total == 0:
                continue
            record = self.checkpoints.record(stage.name, site)
            last_snapshot = record.taken_at_s if record else 0.0
            replay_window = max(0.0, fail_start - last_snapshot)
            if replay_window <= 0:
                continue
            share_eps = expected[stage.name]["input"] * count / total
            events = share_eps * replay_window
            self.runtime.inject_replay(
                stage.name, site, events, fail_start - replay_window / 2
            )
            if self.obs:
                self.obs.emit(
                    Restore(
                        now_s,
                        stage=stage.name,
                        site=site,
                        events=events,
                        replay_window_s=replay_window,
                    )
                )
            self.replayed_source_equiv += (
                self.runtime.to_source_equivalents(stage.name, events)
            )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        duration_s: float,
        dynamics: DynamicsSpec | None = None,
    ) -> RunRecorder:
        """Advance the experiment by ``duration_s`` of simulated time."""
        if dynamics is not None:
            self.set_dynamics(dynamics)
        ticks = int(math.ceil(duration_s / self.config.tick_s))
        for _ in range(ticks):
            self.step()
        return self.recorder

    def step(
        self, link_budget: dict[tuple[str, str], float] | None = None
    ) -> TickSample:
        """One tick: dynamics -> engine -> recording -> periodic callbacks.

        ``link_budget`` is forwarded to the engine; a multi-query harness
        passes one shared dict per tick so queries contend for the WAN.
        """
        t_next = self.clock.now_s + self.config.tick_s
        self._apply_dynamics(t_next)
        if self._chaos is not None:
            self._chaos.tick(t_next)
        report = self.runtime.tick(link_budget)
        sample = TickSample(
            t_s=report.t_s,
            delay_s=report.mean_sink_delay_s(),
            processed=self.runtime.sink_source_equiv(report.sink_events),
            offered=report.offered,
            dropped=report.dropped_source_equiv,
            parallelism=self.runtime.plan.total_parallelism(),
            extra_slots=self.scheduler.extra_slots(),
        )
        self.recorder.record_tick(sample)
        if self.manager is not None:
            self.manager.observe_tick(report)
        if self._checker is not None:
            self._checker.on_report(report)
        self.clock.advance()
        if self._checker is not None:
            self._checker.on_step_end()
        return sample


def run_variants(
    make_topology,
    make_query,
    variants: list[VariantSpec],
    duration_s: float,
    make_dynamics,
    *,
    config: WaspConfig | None = None,
    seed: int | None = None,
    state_mb_override: dict[str, float] | None = None,
    instrument=None,
) -> dict[str, ExperimentRun]:
    """Run several variants under *identical* (independently re-created)
    conditions: each variant gets its own topology/query instances built
    from the same seed, so adaptations cannot cross-contaminate runs.

    Args:
        make_topology: ``(RngRegistry) -> Topology``.
        make_query: ``(Topology, RngRegistry) -> BenchmarkQuery``.
        variants: Comparison lines.
        duration_s: Simulated run length.
        make_dynamics: ``(RngRegistry) -> DynamicsSpec``.
        config: Shared configuration.
        seed: Master seed (defaults to the config's).
        state_mb_override: Controlled state sizes (Section 8.7).
        instrument: Optional ``(variant_name, run) -> None`` hook called
            before each run starts - e.g. to attach trace sinks.
    """
    config = config or WaspConfig.paper_defaults()
    results: dict[str, ExperimentRun] = {}
    for variant in variants:
        rngs = RngRegistry(seed if seed is not None else config.seed)
        topology = make_topology(rngs)
        query = make_query(topology, rngs)
        run = ExperimentRun(
            topology,
            query,
            variant,
            config=config,
            rngs=rngs,
            state_mb_override=state_mb_override,
        )
        if instrument is not None:
            instrument(variant.name, run)
        run.run(duration_s, make_dynamics(rngs))
        run.obs.close()
        results[variant.name] = run
    return results

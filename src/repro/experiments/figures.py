"""Text renderers for every figure and table of Section 8.

Each ``figN_*`` function takes the corresponding runs (or raw ingredients)
and returns the series/rows the paper's figure reports, as plain text.  The
benchmark harness prints these, so ``pytest benchmarks/ --benchmark-only``
regenerates the full evaluation in a readable form; EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.comparison import render_table as render_table2
from ..core.controller import AdaptationRecord
from ..network.bandwidth import BandwidthStats, thirty_minute_rollup
from ..network.topology import Topology
from ..network.traces import network_distributions
from ..workloads.queries import BenchmarkQuery
from .harness import ExperimentRun


def _fmt(value: float, width: int = 8, digits: int = 2) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-".rjust(width)
    return f"{value:{width}.{digits}f}"


def segment_mean(series: np.ndarray, lo: int, hi: int) -> float:
    """Mean of a series over [lo, hi) ignoring NaNs (empty -> NaN)."""
    chunk = series[lo:hi]
    chunk = chunk[~np.isnan(chunk)]
    return float(np.mean(chunk)) if len(chunk) else float("nan")


# --------------------------------------------------------------------------- #
# Figure 2 and Figure 7
# --------------------------------------------------------------------------- #


def fig2_report(trace_5min: np.ndarray) -> str:
    """Bandwidth variability between Oregon and Ohio (Figure 2)."""
    rollup = thirty_minute_rollup(trace_5min)
    stats = BandwidthStats.from_trace(trace_5min)
    lines = [
        "Figure 2: bandwidth variability Oregon -> Ohio "
        "(30-minute interval averages, Mbps)",
        " ".join(f"{v:6.1f}" for v in rollup),
        f"mean={stats.mean_mbps:.1f} Mbps  min={stats.min_mbps:.1f}  "
        f"max={stats.max_mbps:.1f}  deviation from mean: "
        f"{stats.min_deviation * 100:.0f}%..{stats.max_deviation * 100:.0f}%",
        "paper: deviations span 25%..93% of the mean",
    ]
    return "\n".join(lines)


def fig7_report(topology: Topology) -> str:
    """Inter-site bandwidth/latency distributions (Figure 7)."""
    dists = network_distributions(topology)
    lines = ["Figure 7: inter-site network distributions"]
    for label, key, unit in (
        ("edge bandwidth", "edge_bandwidth_mbps", "Mbps"),
        ("DC bandwidth", "dc_bandwidth_mbps", "Mbps"),
        ("edge latency", "edge_latency_ms", "ms"),
        ("DC latency", "dc_latency_ms", "ms"),
    ):
        values = dists[key]
        if len(values) == 0:
            lines.append(f"  {label:15s}: (no links)")
            continue
        quartiles = np.percentile(values, [0, 25, 50, 75, 100])
        lines.append(
            f"  {label:15s}: "
            + "  ".join(f"p{p}={v:7.1f}" for p, v in zip((0, 25, 50, 75, 100), quartiles))
            + f" {unit}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Figures 8 & 9
# --------------------------------------------------------------------------- #

#: Interval boundaries of the Section 8.4 timeline (tick indices).
FIG8_SEGMENTS = (
    ("baseline t<300", 100, 300),
    ("2x load 300-600", 380, 600),
    ("restored 600-900", 700, 900),
    ("bw/2 900-1200", 980, 1200),
    ("restored 1200-1500", 1300, 1500),
)


def fig8_report(runs: dict[str, ExperimentRun], query_name: str) -> str:
    """Average execution delay per interval per variant (Figure 8)."""
    lines = [f"Figure 8 ({query_name}): mean delay per interval (seconds)"]
    header = "variant".ljust(10) + "".join(
        name.rjust(22) for name, _, _ in FIG8_SEGMENTS
    )
    lines.append(header)
    for name, run in runs.items():
        delay = run.recorder.delay_series()
        cells = "".join(
            _fmt(segment_mean(delay, lo, hi), 22) for _, lo, hi in FIG8_SEGMENTS
        )
        lines.append(name.ljust(10) + cells)
    faults = _fault_markers(runs)
    if faults:
        lines.append("faults: " + ", ".join(faults))
    return "\n".join(lines)


def fig9_report(runs: dict[str, ExperimentRun], query_name: str) -> str:
    """Processing ratio per interval per variant (Figure 9)."""
    lines = [f"Figure 9 ({query_name}): processing ratio per interval"]
    header = "variant".ljust(10) + "".join(
        name.rjust(22) for name, _, _ in FIG8_SEGMENTS
    )
    lines.append(header)
    for name, run in runs.items():
        ratio = run.recorder.processing_ratio_series()
        cells = "".join(
            _fmt(segment_mean(ratio, lo, hi), 22) for _, lo, hi in FIG8_SEGMENTS
        )
        lines.append(name.ljust(10) + cells)
    adaptations = [
        f"{r.t_s:.0f}s:{r.kind.value}"
        for run in runs.values()
        if run.manager
        for r in run.manager.history
    ]
    if adaptations:
        lines.append("adaptations: " + ", ".join(adaptations))
    faults = _fault_markers(runs)
    if faults:
        lines.append("faults: " + ", ".join(faults))
    return "\n".join(lines)


def _fault_markers(runs: dict[str, ExperimentRun]) -> list[str]:
    """Chaos-fault annotations for figure timelines (empty without chaos).

    Built from :meth:`~repro.sim.recorder.RunRecorder.annotations`, so
    faults appear as ``<t>s:fault:<kind>`` markers alongside adaptation
    markers; figure scenarios without chaos produce no line at all, which
    keeps their reports byte-identical to pre-observability output.
    """
    return [
        f"{e.t_s:.0f}s:{e.action}"
        for run in runs.values()
        for e in run.recorder.annotations()
        if e.action.startswith("fault:")
    ]


# --------------------------------------------------------------------------- #
# Figure 10
# --------------------------------------------------------------------------- #


def fig10_report(runs: dict[str, ExperimentRun]) -> str:
    """Technique comparison: delay distribution, intervals, parallelism."""
    lines = ["Figure 10: Re-assign vs Scale vs Re-plan (Top-K query)"]
    lines.append(
        "variant".ljust(10)
        + "".join(h.rjust(10) for h in ("mean", "p50", "p90", "p93", "p99"))
        + "max extra slots".rjust(18)
        + "actions".rjust(9)
    )
    for name, run in runs.items():
        rec = run.recorder
        row = (
            name.ljust(10)
            + _fmt(rec.mean_delay(), 10)
            + _fmt(rec.delay_percentile(50), 10)
            + _fmt(rec.delay_percentile(90), 10)
            + _fmt(rec.delay_percentile(93), 10)
            + _fmt(rec.delay_percentile(99), 10)
            + str(int(max(rec.extra_slots_series(), default=0))).rjust(18)
            + str(len(run.manager.history) if run.manager else 0).rjust(9)
        )
        lines.append(row)
    for name, run in runs.items():
        if run.manager and run.manager.history:
            acts = ", ".join(
                f"{r.t_s:.0f}s:{r.kind.value}" for r in run.manager.history
            )
            lines.append(f"  {name}: {acts}")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Figures 11 & 12
# --------------------------------------------------------------------------- #


def fig11_report(runs: dict[str, ExperimentRun]) -> str:
    """Live environment: delay and parallelism over time (Figure 11)."""
    lines = ["Figure 11: live environment (Top-K query, failure at t=540)"]
    segments = (
        ("t<540", 100, 540),
        ("failure 540-600", 540, 600),
        ("recovery 600-900", 640, 900),
        ("late 900-1800", 900, 1800),
    )
    header = "variant".ljust(10) + "".join(
        name.rjust(20) for name, _, _ in segments
    ) + "max parallelism".rjust(17)
    lines.append(header)
    for name, run in runs.items():
        delay = run.recorder.delay_series()
        cells = "".join(
            _fmt(segment_mean(delay, lo, hi), 20) for _, lo, hi in segments
        )
        par = int(max(run.recorder.parallelism_series(), default=0))
        lines.append(name.ljust(10) + cells + str(par).rjust(17))
    return "\n".join(lines)


def fig12_report(runs: dict[str, ExperimentRun]) -> str:
    """Quality vs delay trade-off (Figure 12)."""
    lines = ["Figure 12: processed events and delay distribution"]
    lines.append(
        "variant".ljust(10)
        + "processed %".rjust(14)
        + "".join(h.rjust(10) for h in ("p50", "p75", "p95", "p99"))
    )
    for name, run in runs.items():
        rec = run.recorder
        lines.append(
            name.ljust(10)
            + f"{rec.processed_fraction() * 100:13.1f}%"
            + _fmt(rec.delay_percentile(50), 10)
            + _fmt(rec.delay_percentile(75), 10)
            + _fmt(rec.delay_percentile(95), 10)
            + _fmt(rec.delay_percentile(99), 10)
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Figures 13 & 14
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class OverheadBreakdown:
    """Transition + stabilizing time of one controlled adaptation."""

    variant: str
    destination: str
    transition_s: float
    stabilize_s: float | None
    p95_delay_s: float
    state_lost_mb: float

    @property
    def total_s(self) -> float:
        return self.transition_s + (self.stabilize_s or 0.0)


def measure_overhead(
    run: ExperimentRun,
    record: AdaptationRecord,
    *,
    destination: str = "",
    baseline_lo: int = 60,
    baseline_hi: int = 170,
) -> OverheadBreakdown:
    """Split an adaptation's overhead into transition and stabilizing time.

    Transition: the suspension while state migrates (Section 8.7).
    Stabilizing: from the end of the transition until the delay returns to
    twice the pre-adaptation baseline (None if it never does within the run).
    """
    rec = run.recorder
    delay = rec.delay_series()
    baseline = segment_mean(delay, baseline_lo, baseline_hi)
    threshold = max(2 * baseline, 1.5)
    t_end = record.t_s + record.transition_s
    stabilize = None
    for sample in rec.samples:
        if sample.t_s <= t_end or math.isnan(sample.delay_s):
            continue
        if sample.delay_s < threshold:
            stabilize = sample.t_s - t_end
            break
    return OverheadBreakdown(
        variant=run.variant.name,
        destination=destination,
        transition_s=record.transition_s,
        stabilize_s=stabilize,
        p95_delay_s=rec.delay_percentile(95),
        state_lost_mb=run.manager.state_lost_mb if run.manager else 0.0,
    )


def fig13_report(breakdowns: list[OverheadBreakdown]) -> str:
    """Network-aware state migration comparison (Figure 13)."""
    lines = ["Figure 13: state-migration strategies (60 MB state)"]
    lines.append(
        "strategy".ljust(14)
        + "destination".rjust(14)
        + "transition".rjust(12)
        + "stabilize".rjust(11)
        + "total".rjust(9)
        + "p95 delay".rjust(11)
        + "state lost".rjust(12)
    )
    for b in breakdowns:
        lines.append(
            b.variant.ljust(14)
            + b.destination.rjust(14)
            + _fmt(b.transition_s, 12, 1)
            + (_fmt(b.stabilize_s, 11, 1) if b.stabilize_s is not None else "-".rjust(11))
            + _fmt(b.total_s, 9, 1)
            + _fmt(b.p95_delay_s, 11, 1)
            + f"{b.state_lost_mb:10.0f}MB"
        )
    return "\n".join(lines)


def fig14_report(
    rows: list[tuple[str, float, OverheadBreakdown]]
) -> str:
    """State partitioning vs state size (Figure 14)."""
    lines = ["Figure 14: mitigating overhead through state partitioning"]
    lines.append(
        "mode".ljust(12)
        + "state MB".rjust(9)
        + "transition".rjust(12)
        + "stabilize".rjust(11)
        + "p95 delay".rjust(11)
    )
    for mode, size, b in rows:
        lines.append(
            mode.ljust(12)
            + f"{size:9.0f}"
            + _fmt(b.transition_s, 12, 1)
            + (_fmt(b.stabilize_s, 11, 1) if b.stabilize_s is not None else "-".rjust(11))
            + _fmt(b.p95_delay_s, 11, 1)
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------------- #


def table2_report() -> str:
    """Table 2: qualitative technique comparison."""
    return "Table 2: qualitative comparison\n" + render_table2()


def table3_report(queries: list[BenchmarkQuery]) -> str:
    """Table 3: query inventory."""
    lines = ["Table 3: location-based query details"]
    lines.append(
        "Application".ljust(24)
        + "State".ljust(10)
        + "Operators".ljust(42)
        + "Dataset"
    )
    for query in queries:
        row = query.table3
        lines.append(
            row.application.ljust(24)
            + row.state.ljust(10)
            + ", ".join(row.operators).ljust(42)
            + row.dataset
        )
    return "\n".join(lines)

"""Scenario builders for every Section-8 experiment.

Each function returns the ingredients one figure needs: topology/query
factories, the comparison variants, the dynamics driver, and the run length.
The benchmark harness (and the examples) call these so that tests,
benchmarks and docs all reproduce the figures from a single source of truth.

Timeline of Section 8.4 (Figures 8 and 9):
    t=300   source rate 10,000 -> 20,000 events/s
    t=600   back to 10,000 events/s
    t=900   every link's bandwidth halved
    t=1200  bandwidth restored

Section 8.5 (Figure 10): workload x{1,2,2,1,1} and bandwidth
x{1,1,0.5,0.5,1} in 300 s intervals.

Section 8.6 (Figure 11): per-interval random bandwidth factors in
[0.51, 2.36], workload factors in [0.8, 2.4], and a failure at t=540
revoking all computational resources for 60 seconds.

Sections 8.7.1/8.7.2 (Figures 13 and 14): a controlled adaptation at
t=180 with a controlled state size, comparing migration strategies and
state partitioning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..baselines.variants import (
    VariantSpec,
    degrade,
    no_adapt,
    reassign_only,
    replan_only,
    scale_only,
    wasp,
)
from ..config import WaspConfig
from ..core.actions import ReassignAction, ScaleAction
from ..core.migration import MigrationStrategy
from ..errors import InfeasiblePlacementError, WaspError
from ..network.topology import Topology
from ..network.traces import paper_testbed
from ..planner.placement import PlacementProblem, UpstreamFlow
from ..sim.rng import RngRegistry
from ..sim.schedule import Schedule
from ..workloads.queries import (
    BenchmarkQuery,
    events_of_interest,
    topk_topics,
    ysb_advertising,
)
from .harness import DynamicsSpec, ExperimentRun, FailureEvent

#: The Section 8.4/8.5 interval length.
STEP_S = 300.0


@dataclass(frozen=True)
class Scenario:
    """Everything needed to run one experiment family."""

    name: str
    duration_s: float
    variants: tuple[VariantSpec, ...]
    make_topology: Callable[[RngRegistry], Topology]
    make_query: Callable[[Topology, RngRegistry], BenchmarkQuery]
    make_dynamics: Callable[[RngRegistry], DynamicsSpec]


def _testbed(rngs: RngRegistry) -> Topology:
    return paper_testbed(rngs.stream("topology"))


def make_query_by_name(
    name: str,
) -> Callable[[Topology, RngRegistry], BenchmarkQuery]:
    """Query factory keyed by Table-3 name."""
    if name == "ysb-advertising":
        return lambda topo, rngs: ysb_advertising(topo)
    if name == "topk-topics":
        return lambda topo, rngs: topk_topics(topo, rngs.stream("query"))
    if name == "events-of-interest":
        return lambda topo, rngs: events_of_interest(
            topo, rngs.stream("query")
        )
    raise WaspError(f"unknown query {name!r}")


# --------------------------------------------------------------------------- #
# Figures 8 & 9 - wide-area bottlenecks (Section 8.4)
# --------------------------------------------------------------------------- #


def bottleneck_dynamics(rngs: RngRegistry | None = None) -> DynamicsSpec:
    """The Section 8.4 driver: workload steps then bandwidth steps."""
    del rngs  # deterministic
    return DynamicsSpec(
        workload_schedule=Schedule(
            [(0.0, 1.0), (STEP_S, 2.0), (2 * STEP_S, 1.0)]
        ),
        bandwidth_schedule=Schedule(
            [(0.0, 1.0), (3 * STEP_S, 0.5), (4 * STEP_S, 1.0)]
        ),
    )


def fig8_scenario(query_name: str) -> Scenario:
    """One Figure 8/9 panel: No Adapt vs Degrade vs Re-opt (WASP)."""
    return Scenario(
        name=f"fig8-{query_name}",
        duration_s=5 * STEP_S,
        variants=(no_adapt(), degrade(), wasp()),
        make_topology=_testbed,
        make_query=make_query_by_name(query_name),
        make_dynamics=bottleneck_dynamics,
    )


# --------------------------------------------------------------------------- #
# Figure 10 - technique comparison (Section 8.5)
# --------------------------------------------------------------------------- #


def technique_dynamics(rngs: RngRegistry | None = None) -> DynamicsSpec:
    """Workload x{1,2,2,1,1}, bandwidth x{1,1,0.5,0.5,1} (Section 8.5)."""
    del rngs
    return DynamicsSpec(
        workload_schedule=Schedule.steps(STEP_S, [1.0, 2.0, 2.0, 1.0, 1.0]),
        bandwidth_schedule=Schedule.steps(STEP_S, [1.0, 1.0, 0.5, 0.5, 1.0]),
    )


def fig10_scenario() -> Scenario:
    """Re-assign vs Scale vs Re-plan vs No Adapt, Top-K query."""
    return Scenario(
        name="fig10-technique-comparison",
        duration_s=5 * STEP_S,
        variants=(no_adapt(), reassign_only(), scale_only(), replan_only()),
        make_topology=_testbed,
        make_query=make_query_by_name("topk-topics"),
        make_dynamics=technique_dynamics,
    )


# --------------------------------------------------------------------------- #
# Figures 11 & 12 - live environment (Section 8.6)
# --------------------------------------------------------------------------- #

LIVE_DURATION_S = 1_800.0
LIVE_FAILURE_AT_S = 540.0
LIVE_FAILURE_DURATION_S = 60.0


def live_dynamics(rngs: RngRegistry) -> DynamicsSpec:
    """Random bandwidth/workload variation + a total failure (Section 8.6)."""
    bandwidth = Schedule.random_walk(
        rngs.stream("live-bandwidth"),
        duration_s=LIVE_DURATION_S,
        interval_s=STEP_S,
        low=0.51,
        high=2.36,
    )
    workload = Schedule.random_walk(
        rngs.stream("live-workload"),
        duration_s=LIVE_DURATION_S,
        interval_s=180.0,
        low=0.8,
        high=2.4,
    )
    return DynamicsSpec(
        workload_schedule=workload,
        bandwidth_schedule=bandwidth,
        failures=[
            FailureEvent(
                t_s=LIVE_FAILURE_AT_S, duration_s=LIVE_FAILURE_DURATION_S
            )
        ],
    )


def fig11_scenario() -> Scenario:
    """WASP vs No Adapt vs Degrade in the live trace-driven environment."""
    return Scenario(
        name="fig11-live-environment",
        duration_s=LIVE_DURATION_S,
        variants=(no_adapt(), degrade(), wasp()),
        make_topology=_testbed,
        make_query=make_query_by_name("topk-topics"),
        make_dynamics=live_dynamics,
    )


# --------------------------------------------------------------------------- #
# Figures 13 & 14 - adaptation overhead (Section 8.7)
# --------------------------------------------------------------------------- #

MIGRATION_TRIGGER_AT_S = 180.0
MIGRATION_RUN_DURATION_S = 520.0

#: The stateful stage whose migration Figures 13/14 control.
MIGRATION_STAGE = "win-country"


def migration_variants() -> tuple[VariantSpec, ...]:
    """WASP vs No Migrate vs Random vs Distant (Section 8.7.1)."""
    return (
        wasp(MigrationStrategy.NONE),
        wasp(MigrationStrategy.WASP),
        wasp(MigrationStrategy.RANDOM),
        wasp(MigrationStrategy.DISTANT),
    )


def quiet_dynamics(rngs: RngRegistry | None = None) -> DynamicsSpec:
    """No external dynamics - overhead experiments control the trigger."""
    del rngs
    return DynamicsSpec()


def build_migration_run(
    variant: VariantSpec,
    state_mb: float,
    *,
    seed: int = 20,
    config: WaspConfig | None = None,
) -> ExperimentRun:
    """A Top-K run with the controlled state size of Sections 8.7.1/8.7.2."""
    config = config or WaspConfig.paper_defaults()
    rngs = RngRegistry(seed)
    topology = _testbed(rngs)
    query = topk_topics(
        topology, rngs.stream("query"), state_mb=max(state_mb, 0.0)
    )
    run = ExperimentRun(
        topology,
        query,
        variant,
        config=config,
        rngs=rngs,
        state_mb_override={MIGRATION_STAGE: state_mb},
    )
    run.set_dynamics(quiet_dynamics())
    # The overhead experiments control the (single) adaptation themselves;
    # the periodic loop stays off so nothing else perturbs the measurement.
    if run.manager is not None:
        run.clock.set_enabled("adaptation", False)
    _pin_stage_to_edge(run, MIGRATION_STAGE)
    return run


def _pin_stage_to_edge(run: ExperimentRun, stage_name: str) -> None:
    """Host the migrating stage at an edge site before the experiment.

    Section 8.7 studies the cost of migrating state "over a low-bandwidth
    network link": the interesting regime is a task at an edge cluster whose
    links run at public-Internet speeds, not a task on the fast data-center
    mesh.  This setup move happens at t = 0 and leaves no residue (no
    suspension, no history entry), so measurements start clean.
    """
    manager = run.manager
    if manager is None:
        return
    stage = run.runtime.plan.stage(stage_name)
    edges = sorted(
        s.name
        for s in run.topology
        if s.is_edge and s.available_slots >= stage.parallelism
    )
    if not edges:
        return

    def worst_outgoing_bw(site: str) -> float:
        others = [
            run.topology.bandwidth_mbps(site, s.name)
            for s in run.topology
            if s.name != site and s.is_edge
        ]
        return min(others) if others else 0.0

    # The best-connected edge hosts the stage, so every strategy has
    # somewhere feasible to go and the spread between strategies comes from
    # the *destination's* link quality.
    host = max(edges, key=lambda s: (worst_outgoing_bw(s), s))
    action = ReassignAction(
        stage_name, "setup: host at edge", {host: stage.parallelism}
    )
    manager._execute(action, run.clock.now_s)
    # Erase the setup's traces: no suspension, no recorded adaptation.
    run.runtime._suspended_until.pop(stage_name, None)
    manager.history.clear()


def _feasible_destinations(
    run: ExperimentRun, stage_name: str, *, edge_only: bool = True
) -> tuple[list[str], "PlacementProblem"]:
    """Sites (excluding the current ones) that could host the whole stage
    with sufficient bandwidth to process the actual data stream - the
    paper's Section 8.7.1 guarantee that "the execution would eventually
    stabilize" regardless of the migration strategy.

    ``edge_only`` keeps the controlled experiments in the public-Internet
    regime Section 8.7 studies (the stage is hosted at an edge and moves
    between edges); disable it for general use.
    """
    manager = run.manager
    assert manager is not None
    plan = run.runtime.plan
    stage = plan.stage(stage_name)
    window = manager.monitor.collect(run.runtime.sink_source_equiv)
    estimates = manager.estimator.estimate(plan, window)
    flows = manager.estimator.upstream_flows_eps(plan, stage, estimates)
    upstream = [
        UpstreamFlow(
            site=site,
            eps=eps,
            event_bytes=plan.stages[up].output_event_bytes,
        )
        for (up, site), eps in sorted(flows.items())
    ]
    slots = run.topology.available_slots()
    for site in stage.placement():
        slots[site] = 0
    if edge_only:
        for site in list(slots):
            if not run.topology.site(site).is_edge:
                slots[site] = 0
    problem = PlacementProblem(
        parallelism=stage.parallelism,
        upstream=upstream,
        downstream=[],
        available_slots=slots,
        alpha=manager.config.alpha,
    )
    from ..planner.placement import per_site_capacity

    feasible = [
        site
        for site in sorted(slots)
        if slots[site] >= stage.parallelism
        and per_site_capacity(site, problem, manager.wan_monitor)
        >= stage.parallelism
    ]
    return feasible, problem


def force_reassignment(
    run: ExperimentRun,
    stage_name: str = MIGRATION_STAGE,
) -> str:
    """Trigger the controlled adaptation of Section 8.7.1.

    The migration strategy chooses the *destination site* among the
    stream-feasible candidates: WASP (and No Migrate) pick the site with the
    fastest state transfer from the current location, Random ignores
    bandwidth, and Distant adversarially picks the slowest - mirroring the
    paper's controlled experiment where "the system started adapting the
    query at t=180".  Returns the chosen destination.
    """
    manager = run.manager
    if manager is None:
        raise WaspError("forced re-assignment needs an adapting variant")
    now_s = run.clock.now_s
    manager.wan_monitor.refresh(now_s)
    plan = run.runtime.plan
    stage = plan.stage(stage_name)
    feasible, _ = _feasible_destinations(run, stage_name)
    if not feasible:
        raise InfeasiblePlacementError(
            f"no feasible destination for stage {stage_name!r}"
        )
    state_sites = manager.state_store.sites(stage_name) or stage.sites()

    def migration_bw(dst: str) -> float:
        return min(
            manager.wan_monitor.bandwidth_mbps(src, dst)
            for src in state_sites
        )

    strategy = manager.migration_strategy
    if strategy is MigrationStrategy.RANDOM:
        rng = run.rngs.stream("fig13-destination")
        destination = feasible[int(rng.integers(len(feasible)))]
    elif strategy is MigrationStrategy.DISTANT:
        destination = min(feasible, key=lambda s: (migration_bw(s), s))
    else:  # WASP and NONE both pick the fastest transfer
        destination = max(feasible, key=lambda s: (migration_bw(s), s))

    action = ReassignAction(
        stage_name,
        f"controlled migration experiment -> {destination}",
        {destination: stage.parallelism},
    )
    record = manager._execute(action, now_s)
    manager.history.append(record)
    if manager.recorder is not None:
        manager.recorder.record_adaptation(
            now_s, record.kind.value, record.reason
        )
    return destination


def force_partitioned_adaptation(
    run: ExperimentRun,
    stage_name: str = MIGRATION_STAGE,
    *,
    t_threshold_s: float = 30.0,
    max_parallelism: int = 6,
) -> None:
    """The Section 8.7.2 "Partitioned" behaviour.

    When the estimated single-destination transition exceeds the threshold,
    the adaptation scales the operator out across several destination sites
    so each (smaller) partition ``|state| / p'`` crosses a *different* link
    in parallel, shrinking the slowest transfer until it fits the threshold
    (or the destination pool runs out).
    """
    manager = run.manager
    if manager is None:
        raise WaspError("forced adaptation needs an adapting variant")
    now_s = run.clock.now_s
    manager.wan_monitor.refresh(now_s)
    stage = run.runtime.plan.stage(stage_name)
    total_mb = manager.state_store.total_mb(stage_name)
    state_sites = manager.state_store.sites(stage_name) or stage.sites()
    feasible, _ = _feasible_destinations(run, stage_name)
    if not feasible:
        raise InfeasiblePlacementError(
            f"no feasible destination for stage {stage_name!r}"
        )

    def migration_bw(dst: str) -> float:
        return min(
            manager.wan_monitor.bandwidth_mbps(src, dst)
            for src in state_sites
        )

    ranked = sorted(feasible, key=lambda s: (-migration_bw(s), s))

    def transition_estimate(p: int) -> float:
        """Slowest transfer with shares spread over the top-p destinations."""
        share = total_mb / p if p else math.inf
        worst = 0.0
        for dst in ranked[:p]:
            bw = migration_bw(dst)
            worst = max(worst, share * 8.0 / bw if bw > 0 else math.inf)
        return worst

    target_p = stage.parallelism
    while (
        transition_estimate(target_p) > t_threshold_s
        and target_p < min(max_parallelism, len(ranked))
    ):
        target_p += 1

    assignment = {dst: 1 for dst in ranked[:target_p]}
    if target_p > stage.parallelism:
        action: ReassignAction | ScaleAction = ScaleAction(
            stage_name,
            "controlled partitioned adaptation",
            target_p,
            assignment,
            cross_site=True,
        )
    else:
        action = ReassignAction(
            stage_name, "controlled adaptation", assignment
        )
    record = manager._execute(action, now_s)
    manager.history.append(record)
    if manager.recorder is not None:
        manager.recorder.record_adaptation(
            now_s, record.kind.value, record.reason
        )


#: State sizes swept by Figure 14.
FIG14_STATE_SIZES_MB = (0.0, 32.0, 64.0, 128.0, 256.0, 512.0)
#: Controlled state size of Figure 13.
FIG13_STATE_MB = 60.0

"""Baseline controller variants (Sections 8.4-8.7)."""

from .variants import (
    ALL_NAMED,
    VariantSpec,
    degrade,
    no_adapt,
    reassign_only,
    replan_only,
    scale_only,
    wasp,
    wasp_long_term,
)

__all__ = [
    "ALL_NAMED",
    "VariantSpec",
    "degrade",
    "no_adapt",
    "reassign_only",
    "replan_only",
    "scale_only",
    "wasp",
    "wasp_long_term",
]

"""Named controller variants used across the evaluation (Section 8).

Every experiment compares WASP against baselines drawn from the same space:

* ``no-adapt``   - deploy once, never react (Sections 8.4-8.6);
* ``degrade``    - no re-optimization; drop events older than the SLO
                   (Sections 8.4, 8.6; SLO = 10 s);
* ``re-assign``  - adapt only by task re-assignment (Section 8.5);
* ``scale``      - re-assign first, scale when no placement exists
                   (Section 8.5);
* ``re-plan``    - adapt only by query re-planning (Section 8.5);
* ``wasp``       - the full Figure-6 policy;
* ``wasp/random``, ``wasp/distant``, ``wasp/none`` - full policy with the
  Section 8.7.1 state-migration strategies.

A :class:`VariantSpec` is pure configuration; the experiment harness
(:mod:`repro.experiments.harness`) turns it into a wired controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.migration import MigrationStrategy
from ..core.policy import PolicyMode
from ..errors import ConfigurationError


@dataclass(frozen=True)
class VariantSpec:
    """How one comparison line in a figure behaves."""

    name: str
    adapts: bool
    degrade_slo_s: float | None = None
    mode: PolicyMode = field(default_factory=PolicyMode.wasp)
    migration_strategy: MigrationStrategy = MigrationStrategy.WASP
    replanning: bool = True
    #: Attach the Section-6.2 background loop for predictable long-term
    #: dynamics (periodic proactive re-planning against a forecast).
    long_term: bool = False

    def __post_init__(self) -> None:
        if self.degrade_slo_s is not None and self.degrade_slo_s <= 0:
            raise ConfigurationError("degrade_slo_s must be > 0 when set")
        if self.degrade_slo_s is not None and self.adapts:
            raise ConfigurationError(
                "the Degrade baseline does not re-optimize; adapts must be "
                "False when degrade_slo_s is set"
            )


def no_adapt() -> VariantSpec:
    """Deploy once and ride out every dynamic."""
    return VariantSpec(name="No Adapt", adapts=False)


def degrade(slo_s: float = 10.0) -> VariantSpec:
    """Drop late events to hold the SLO; never re-optimize (Section 8.4)."""
    return VariantSpec(name="Degrade", adapts=False, degrade_slo_s=slo_s)


def reassign_only() -> VariantSpec:
    """Handle dynamics only by re-assigning tasks (fixed parallelism)."""
    return VariantSpec(
        name="Re-assign",
        adapts=True,
        mode=PolicyMode.reassign_only(),
        replanning=False,
    )


def scale_only() -> VariantSpec:
    """Re-assign first, scale operators when no placement exists."""
    return VariantSpec(
        name="Scale",
        adapts=True,
        mode=PolicyMode.scale_only(),
        replanning=False,
    )


def replan_only() -> VariantSpec:
    """Re-evaluate the execution plan only; parallelism never changes."""
    return VariantSpec(
        name="Re-plan",
        adapts=True,
        mode=PolicyMode.replan_only(),
        replanning=True,
    )


def wasp(
    migration_strategy: MigrationStrategy = MigrationStrategy.WASP,
) -> VariantSpec:
    """The full WASP policy, optionally with a baseline migration strategy."""
    suffix = (
        ""
        if migration_strategy is MigrationStrategy.WASP
        else f"/{migration_strategy.value}"
    )
    return VariantSpec(
        name=f"WASP{suffix}",
        adapts=True,
        mode=PolicyMode.wasp(),
        migration_strategy=migration_strategy,
        replanning=True,
    )


def wasp_long_term() -> VariantSpec:
    """WASP plus the background loop for predictable long-term dynamics."""
    return VariantSpec(
        name="WASP/long-term",
        adapts=True,
        mode=PolicyMode.wasp(),
        replanning=True,
        long_term=True,
    )


ALL_NAMED: dict[str, VariantSpec] = {
    spec.name: spec
    for spec in (
        no_adapt(),
        degrade(),
        reassign_only(),
        scale_only(),
        replan_only(),
        wasp(),
        wasp(MigrationStrategy.RANDOM),
        wasp(MigrationStrategy.DISTANT),
        wasp(MigrationStrategy.NONE),
        wasp_long_term(),
    )
}

#!/usr/bin/env python
"""Define and run a custom geo-distributed query on a custom topology.

Models the paper's Figure-5 scenario: a commutative 4-way join over streams
originating at four sites (A, B, C, D).  The join-tree enumerator produces
every bracketing - 15 plans for 4 inputs - with canonical operator names, so
plans that join the same subset share the operator and its state; the
WAN-aware planner picks the cheapest deployment and the re-planner may
switch bracketing when bandwidth shifts.

Run:  python examples/custom_query.py
"""

from repro.baselines.variants import wasp
from repro.engine.logical import can_replace_preserving_state
from repro.engine.operators import filter_, join, sink, source
from repro.experiments.harness import DynamicsSpec, ExperimentRun
from repro.network.site import Site, SiteKind
from repro.network.topology import Topology
from repro.planner.enumerate import branch_from_ops, join_tree_plans
from repro.sim.rng import RngRegistry
from repro.sim.schedule import Schedule
from repro.workloads.base import ShapedWorkload
from repro.workloads.queries import BenchmarkQuery, Table3Row


def build_topology() -> Topology:
    """Four sites in a heterogeneous full mesh (bandwidth in Mbps)."""
    sites = [
        Site("site-a", SiteKind.DATA_CENTER, 6),
        Site("site-b", SiteKind.DATA_CENTER, 6),
        Site("site-c", SiteKind.EDGE, 4),
        Site("site-d", SiteKind.EDGE, 4),
    ]
    topo = Topology(sites)
    links = {
        ("site-a", "site-b"): (120.0, 30.0),
        ("site-a", "site-c"): (25.0, 60.0),
        ("site-a", "site-d"): (40.0, 80.0),
        ("site-b", "site-c"): (60.0, 45.0),
        ("site-b", "site-d"): (15.0, 90.0),
        ("site-c", "site-d"): (10.0, 40.0),
    }
    for (a, b), (bw, lat) in links.items():
        topo.set_link(a, b, bw, lat)
        topo.set_link(b, a, bw, lat)
    return topo


def build_query(topo: Topology) -> BenchmarkQuery:
    """A 4-way hash join: sources at every site, joins commutative."""
    branches = []
    for key in ("site-a", "site-b", "site-c", "site-d"):
        src = source(f"stream@{key}", key, event_bytes=120.0)
        flt = filter_(f"clean@{key}", selectivity=0.5, event_bytes=100.0)
        branches.append(branch_from_ops(key, [src, flt]))

    def join_factory(name, leaves):
        # Joins over larger subsets carry more state; all are windowed so
        # the re-planner may switch bracketing at window boundaries.
        return join(
            name,
            selectivity=0.8,
            state_mb=4.0 * len(leaves),
            event_bytes=110.0,
            window_s=15.0,
        )

    variants = join_tree_plans(
        "four-way-join", branches, join_factory, sink("sink"), max_variants=15
    )
    workload = ShapedWorkload(
        {f"stream@{k}": 5_000.0 for k in ("site-a", "site-b", "site-c", "site-d")}
    )
    return BenchmarkQuery(
        name="four-way-join",
        variants=tuple(variants),
        workload=workload,
        description="Figure-5-style commutative 4-way join",
        table3=Table3Row("Custom Join", "~16 MB", ("filter", "join"), "synthetic"),
    )


def main() -> None:
    topo = build_topology()
    query = build_query(topo)
    print(f"enumerated {len(query.variants)} join bracketings, e.g.:")
    for variant in query.variants[:3]:
        joins = [op.name for op in variant.topological() if "join" in op.name]
        print(f"  {variant.name}: {' ; '.join(joins)}")
    safe = sum(
        can_replace_preserving_state(query.primary, v)
        for v in query.variants[1:]
    )
    print(f"state-safe alternatives to {query.primary.name}: {safe}\n")

    run = ExperimentRun(topo, query, wasp(), rngs=RngRegistry(3))
    print(f"planner chose: {run.runtime.plan.logical.name}")
    for stage in run.runtime.plan.topological_stages():
        if not stage.is_source:
            print(f"  {stage.name:24s} -> {stage.placement()}")

    # Degrade the A<->B backbone and watch the controller react.
    dynamics = DynamicsSpec(
        link_bandwidth_schedules={
            ("site-a", "site-b"): Schedule([(0.0, 1.0), (120.0, 0.01)]),
            ("site-b", "site-a"): Schedule([(0.0, 1.0), (120.0, 0.01)]),
        }
    )
    recorder = run.run(420, dynamics)
    print(f"\nmean delay: {recorder.mean_delay():.2f}s, "
          f"processed: {recorder.processed_fraction() * 100:.1f}%")
    for record in run.manager.history:
        print(f"  t={record.t_s:5.0f}s {record.kind.value:10s} {record.stage}")
    print(f"final plan: {run.runtime.plan.logical.name}")


if __name__ == "__main__":
    main()

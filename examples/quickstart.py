#!/usr/bin/env python
"""Quickstart: run WASP against wide-area dynamics in ~30 lines.

Deploys the Top-K Popular Topics query (Table 3 of the paper) on the
16-node testbed, doubles the workload at t=300 and halves every WAN link at
t=900, and shows how the WASP controller keeps the query healthy while a
non-adaptive run drowns in backlog.

Run:  python examples/quickstart.py
"""

from repro import api


def run_variant(variant, label: str) -> None:
    run = api.launch("topk-topics", variant, seed=42)
    recorder = run.run(1200, api.bottleneck_dynamics())

    print(f"--- {label} ---")
    print(f"  mean event delay : {recorder.mean_delay():8.2f} s")
    print(f"  95th pct delay   : {recorder.delay_percentile(95):8.2f} s")
    print(f"  events processed : {recorder.processed_fraction() * 100:7.1f} %")
    if run.manager is not None and run.manager.history:
        print("  adaptations:")
        for record in run.manager.history:
            print(
                f"    t={record.t_s:6.0f}s  {record.kind.value:10s} "
                f"{record.stage:28s} (transition {record.transition_s:.1f}s)"
            )
    print()


def main() -> None:
    print("WASP quickstart: Top-K query under workload + bandwidth dynamics")
    print("(rate x2 at t=300, back at t=600; bandwidth x0.5 at t=900)\n")
    run_variant(api.no_adapt(), "No Adapt (static deployment)")
    run_variant(api.wasp(), "WASP (re-assign / scale / re-plan)")


if __name__ == "__main__":
    main()

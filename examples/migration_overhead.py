#!/usr/bin/env python
"""Section 8.7 in action: the cost of moving operator state over the WAN.

Part 1 (Figure 13): a task with 60 MB of state is forcibly re-assigned at
t=180; the migration strategy decides where the state goes.  WASP's
network-aware minmax choice is compared against Random, Distant
(adversarial) and No Migrate (abandon the state - fast but lossy).

Part 2 (Figure 14): sweeping the state size shows why WASP scales out and
*partitions* large state instead of moving it whole: each |state|/p' slice
crosses a different link in parallel, capping the slowest transfer near the
t_max threshold.

Run:  python examples/migration_overhead.py
"""

from repro.baselines.variants import wasp
from repro.experiments.figures import fig13_report, fig14_report, measure_overhead
from repro.experiments.scenarios import (
    FIG13_STATE_MB,
    MIGRATION_RUN_DURATION_S,
    MIGRATION_TRIGGER_AT_S,
    build_migration_run,
    force_partitioned_adaptation,
    force_reassignment,
    migration_variants,
)


def run_controlled(variant, state_mb: float, *, partitioned: bool = False):
    """One controlled-adaptation run; returns (run, overhead breakdown)."""
    run = build_migration_run(variant, state_mb)
    run.run(MIGRATION_TRIGGER_AT_S)
    if partitioned:
        force_partitioned_adaptation(run, t_threshold_s=30.0)
        destination = "+".join(
            run.runtime.plan.stage("win-country").sites()
        )
    else:
        destination = force_reassignment(run)
    run.run(MIGRATION_RUN_DURATION_S - MIGRATION_TRIGGER_AT_S)
    record = run.manager.history[-1]
    return run, measure_overhead(run, record, destination=destination)


def main() -> None:
    print("Part 1 - migration strategies (Figure 13):\n")
    breakdowns = []
    for variant in migration_variants():
        _, breakdown = run_controlled(variant, FIG13_STATE_MB)
        breakdowns.append(breakdown)
    print(fig13_report(breakdowns))

    print("\nPart 2 - state partitioning (Figure 14):\n")
    rows = []
    for size in (0.0, 64.0, 256.0, 512.0):
        for mode, partitioned in (("Default", False), ("Partitioned", True)):
            _, breakdown = run_controlled(
                wasp(), size, partitioned=partitioned
            )
            rows.append((mode, size, breakdown))
    print(fig14_report(rows))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Kill a site while a state migration is in flight, watch WASP recover.

The chaos harness (`repro.chaos`) schedules deterministic faults against a
running experiment.  Here a `SiteCrash` is armed on the mid-adaptation
trigger point MIGRATION_IN_FLIGHT: the instant the controller starts
shipping operator state to the destination site, chaos kills that site.

The transactional controller rolls the half-applied adaptation back to the
pre-action snapshot (slots, placement, state ownership, queues), then falls
through the Figure-6 technique chain — retry against re-measured bandwidth,
scale-out with state partitioning, abandon state — until one attempt
commits.  Because every fault draws from a seeded RNG stream, re-running
this script reproduces the timeline byte-for-byte.

Run:  python examples/chaos_run.py [--trace-out trace.jsonl]

With ``--trace-out`` the run also writes a structured JSONL trace of the
whole episode (rounds, attempts, rollbacks, migrations, chaos faults);
render it with ``python -m repro trace trace.jsonl``.
"""

import argparse

from repro.baselines.variants import wasp
from repro.chaos import ChaosInjector, SiteCrash
from repro.core.actions import ReassignAction
from repro.core.transaction import AdaptationPoint
from repro.experiments.harness import ExperimentRun
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import ysb_advertising

SEED = 11


def build_run():
    rngs = RngRegistry(SEED)
    topology = paper_testbed(rngs.stream("topology"))
    query = ysb_advertising(topology)
    run = ExperimentRun(topology, query, wasp(), rngs=rngs)
    return run, rngs


def pick_migration(run):
    """A deployed stateful stage and a fresh destination with free slots."""
    for stage in run.runtime.plan.topological_stages():
        if stage.stateful and stage.parallelism > 0:
            placement = stage.placement()
            for name, free in sorted(run.topology.available_slots().items()):
                if free > 0 and name not in placement:
                    return stage, name
    raise SystemExit("query has no movable stateful stage")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a JSONL adaptation trace of the chaos episode",
    )
    args = parser.parse_args(argv)

    run, rngs = build_run()
    if args.trace_out:
        run.attach_trace(args.trace_out)
    stage, destination = pick_migration(run)
    print(f"stateful stage  : {stage.name} at {sorted(stage.placement())}")
    print(f"migration target: {destination}  (chaos will crash it)\n")

    # Arm the fault: crash the destination the moment state is in flight,
    # bring it back 60 s later so recovery shows up in the timeline too.
    chaos = ChaosInjector(rngs.stream("chaos"))
    chaos.at_point(
        AdaptationPoint.MIGRATION_IN_FLIGHT,
        SiteCrash(destination, duration_s=60.0),
        stage=stage.name,
    )
    run.attach_chaos(chaos)

    run.run(10.0)
    record = run.manager.execute(
        ReassignAction(stage.name, "operator move", {destination: 1}),
        now_s=10.0,
    )

    print("attempt chain:")
    for attempt in run.manager.attempt_log:
        print(
            f"  t={attempt.t_s:6.1f}s  {attempt.attempt:<10}"
            f" {attempt.outcome:<12} {attempt.detail}"
        )
    committed = record.attempt if record is not None else "none (abandoned)"
    print(f"committed attempt: {committed}")
    print(f"final placement  : {run.runtime.plan.stage(stage.name).placement()}")

    # Keep running past the fault window: the site recovers at ~t=70.
    # Because the rollback restored ownership before any state landed on
    # the doomed site, recovery has nothing to replay and nothing dropped.
    run.run(110.0)

    print("\nfault timeline:")
    for fault in run.recorder.faults:
        print(f"  t={fault.t_s:6.1f}s  {fault.kind:<18} {fault.detail}")

    print("\nadaptation log (rollbacks and fallbacks included):")
    for event in run.recorder.adaptations:
        print(f"  t={event.t_s:6.1f}s  {event.action:<22} {event.detail}")

    print(f"\nreplayed source-equivalent events: {run.replayed_source_equiv:.0f}")
    print(f"events dropped                   : {run.recorder.total_dropped():.0f}")

    run.obs.close()
    if args.trace_out:
        print(f"\ntrace written to {args.trace_out}")
        print(f"render it with: python -m repro trace {args.trace_out}")


if __name__ == "__main__":
    main()

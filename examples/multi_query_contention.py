#!/usr/bin/env python
"""Multiple queries contending for the same WAN (Sections 2.1 and 3.2).

The paper lists "bandwidth contention with other executions" among the
causes of network bottlenecks.  This example co-schedules the YSB
advertising query with a heavy Top-K query on one shared testbed: the
Top-K streams eat into the links YSB depends on, YSB's monitor sees the
available bandwidth shrink, and its controller re-optimizes - no injected
dynamics at all, the contention is endogenous.

Run:  python examples/multi_query_contention.py
"""

import numpy as np

from repro.baselines.variants import no_adapt, wasp
from repro.experiments.multiquery import MultiQueryRun, QuerySubmission
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import topk_topics, ysb_advertising
from repro.workloads.twitter import TwitterSpec

DURATION_S = 600.0
#: The co-tenant arrives mid-run, like a newly submitted query would.
TOPK_ARRIVES_AT_S = 180.0


def build(variant_factory, seed=42):
    rngs = RngRegistry(seed)
    topology = paper_testbed(rngs.stream("topology"))
    submissions = [
        QuerySubmission(ysb_advertising(topology), variant_factory()),
        QuerySubmission(
            topk_topics(
                topology,
                rngs.stream("query"),
                TwitterSpec(mean_rate_eps=32_000.0),
            ),
            variant_factory(),
            start_s=TOPK_ARRIVES_AT_S,
        ),
    ]
    return MultiQueryRun(topology, submissions, rngs=rngs)


def summarize(label, multi):
    print(f"--- {label} ---")
    for run in multi.runs:
        recorder = run.recorder
        delay = recorder.delay_series()
        # Each run records on its own clock; the Top-K query starts late,
        # so compare its first two minutes against its final stretch.
        head = delay[30:120]
        tail = delay[-120:]
        head = float(np.nanmean(head[~np.isnan(head)]))
        tail = float(np.nanmean(tail[~np.isnan(tail)]))
        acts = len(run.manager.history) if run.manager else 0
        print(
            f"  {run.query.name:20s} early delay: {head:7.2f}s"
            f"   late delay: {tail:7.2f}s   adaptations: {acts}"
        )
        if run.manager:
            for record in run.manager.history:
                print(
                    f"      t={record.t_s:5.0f}s {record.kind.value:11s} "
                    f"{record.stage}"
                )
    print()


def main() -> None:
    print(
        f"Top-K (32k eps/source) joins the cluster at t={TOPK_ARRIVES_AT_S:.0f}s "
        f"and contends with YSB for WAN links.\n"
    )
    static = build(no_adapt)
    static.run(DURATION_S)
    summarize("No Adapt (both queries static)", static)

    adaptive = build(wasp)
    adaptive.run(DURATION_S)
    summarize("WASP (each query adapts independently)", adaptive)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Reproduce the Section 8.6 live-environment experiment in miniature.

Random bandwidth variation (factor 0.51-2.36), random workload variation
(factor 0.8-2.4), and a total failure at t=540 that revokes every computing
slot for 60 seconds.  Compares WASP against No Adapt and Degrade on the
stateful Top-K query, printing the quality/latency trade-off of Figure 12.

Run:  python examples/live_environment.py
"""

import numpy as np

from repro import api
from repro.experiments.figures import fig11_report, fig12_report
from repro.experiments.harness import run_variants
from repro.experiments.scenarios import fig11_scenario


def main() -> None:
    scenario = fig11_scenario()
    print(
        "live environment: random bandwidth/workload variation, total "
        "failure at t=540 for 60s\n"
    )
    runs = run_variants(
        scenario.make_topology,
        scenario.make_query,
        list(scenario.variants),
        scenario.duration_s,
        scenario.make_dynamics,
        seed=42,
    )
    print(fig11_report(runs))
    print()
    print(fig12_report(runs))
    print()

    wasp_run = runs["WASP"]
    delay = wasp_run.recorder.delay_series()
    post_failure = delay[640:900]
    post_failure = post_failure[~np.isnan(post_failure)]
    print(
        "WASP recovery: mean delay in the 5 minutes after the failure was "
        f"{float(np.mean(post_failure)):.2f}s; adaptations taken:"
    )
    for record in wasp_run.manager.history:
        print(f"  t={record.t_s:6.0f}s {record.kind.value:11s} {record.stage}")


if __name__ == "__main__":
    main()

"""Figure 7: inter-site bandwidth and latency distributions.

Paper: the testbed's DC mesh is derived from EC2 measurements (bandwidth up
to ~250 Mbps) while edge connectivity follows Akamai's public-Internet
report (average < 10 Mbps); edge latencies are lower than inter-continental
DC latencies because the edge class only counts intra-region connections.
"""

import numpy as np

from repro.experiments.figures import fig7_report
from repro.network.traces import network_distributions, paper_testbed


def test_fig07_network_distribution(bench_once):
    topology = bench_once(
        lambda: paper_testbed(np.random.default_rng(2020))
    )
    print()
    print(fig7_report(topology))

    dists = network_distributions(topology)
    edge_bw = dists["edge_bandwidth_mbps"]
    dc_bw = dists["dc_bandwidth_mbps"]
    edge_lat = dists["edge_latency_ms"]
    dc_lat = dists["dc_latency_ms"]

    # Shape: edge bandwidth is public-Internet class, DC reaches ~250 Mbps.
    assert np.median(edge_bw) < 15.0
    assert dc_bw.max() > 150.0
    assert dc_bw.min() >= 25.0
    # Edge-class latencies only count intra-region connections (the figure
    # caption's restriction); the DC mesh spans inter-continental paths.
    assert edge_lat.max() <= 150.0
    assert dc_lat.max() > 100.0
    # Both classes are heterogeneous (the paper's Section 2.2 premise).
    assert edge_bw.max() / edge_bw.min() > 2.0
    assert dc_bw.max() / dc_bw.min() > 2.0

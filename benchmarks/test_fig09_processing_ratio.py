"""Figure 9: processing ratio under workload and bandwidth variations.

Paper: under the Section 8.4 dynamics the ratio of No Adapt and Degrade
drops below 1 during constrained intervals (~0.86 in the paper's setup),
recovers (No Adapt temporarily exceeding 1 while consuming queued events),
while Re-opt (WASP) maintains ~1 throughout, dipping only momentarily while
executions are suspended for state migration.
"""

import numpy as np
import pytest

from conftest import scenario_runs
from repro.experiments.figures import fig9_report, segment_mean

PANELS = ("ysb-advertising", "topk-topics", "events-of-interest")


@pytest.mark.parametrize("query_name", PANELS)
def test_fig09_processing_ratio(query_name, bench_once):
    runs = bench_once(lambda: scenario_runs(f"fig8-{query_name}"))
    print()
    print(fig9_report(runs, query_name))

    def ratio(name, lo, hi):
        series = runs[name].recorder.processing_ratio_series()
        return segment_mean(series, lo, hi)

    # WASP keeps the ratio ~1 across the whole run.
    for lo, hi in ((100, 300), (450, 600), (1050, 1200), (1350, 1500)):
        assert ratio("WASP", lo, hi) == pytest.approx(1.0, abs=0.05)

    # No Adapt falls below 1 in at least one constrained interval...
    stressed = min(
        ratio("No Adapt", 450, 600), ratio("No Adapt", 1050, 1200)
    )
    assert stressed < 0.97
    # ...and exceeds 1 while draining the queue afterwards.
    drain = runs["No Adapt"].recorder.processing_ratio_series()[600:900]
    assert float(np.nanmax(drain)) > 1.0

    # Degrade's ratio mirrors the constraint (it drops events instead of
    # queueing them).
    assert min(
        ratio("Degrade", 450, 600), ratio("Degrade", 1050, 1200)
    ) < 0.97

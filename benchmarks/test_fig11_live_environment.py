"""Figure 11: WASP in a live, trace-driven environment.

Paper (Section 8.6): bandwidth factors 0.51-2.36, workload factors 0.8-2.4,
and a failure at t=540 revoking every slot for 60 seconds, on the stateful
Top-K query.

Expected shape:
* WASP's delay stays near the unconstrained baseline for most of the run
  and recovers quickly after the failure by scaling out, then scales back
  down;
* No Adapt's delay explodes after the failure (queued events);
* Degrade holds a low delay but sacrifices events.
"""

import numpy as np

from conftest import scenario_runs
from repro.core.actions import ActionKind
from repro.experiments.figures import fig11_report, segment_mean


def test_fig11_live_environment(bench_once):
    runs = bench_once(lambda: scenario_runs("fig11"))
    print()
    print(fig11_report(runs))

    wasp_run = runs["WASP"]
    delay = wasp_run.recorder.delay_series()
    baseline = segment_mean(delay, 100, 500)

    # WASP: most of the run stays near baseline (paper: "close to 1 second
    # ... for most of the time").
    finite = delay[~np.isnan(delay)]
    near_baseline = float(np.mean(finite < max(3 * baseline, 3.0)))
    assert near_baseline > 0.8

    # WASP recovers within ~5 minutes of the failure ending.
    assert segment_mean(delay, 900, 1100) < max(3 * baseline, 3.0)

    # Recovery used scaling, and resources were later released.
    kinds = [r.kind for r in wasp_run.manager.history]
    assert {ActionKind.SCALE_OUT, ActionKind.SCALE_UP} & set(kinds)
    assert ActionKind.SCALE_DOWN in kinds

    # No Adapt suffers far more after the failure.
    static_delay = runs["No Adapt"].recorder.delay_series()
    assert segment_mean(static_delay, 700, 1000) > (
        5 * segment_mean(delay, 700, 1000)
    )

    # Degrade keeps its delay low but drops events; WASP drops none.
    assert runs["Degrade"].recorder.processed_fraction() < 1.0
    assert wasp_run.recorder.processed_fraction() == 1.0

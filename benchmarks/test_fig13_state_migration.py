"""Figure 13: network-aware state migration (Section 8.7.1).

A 60 MB stateful task is forcibly re-assigned at t=180; the migration
strategy picks the destination/mapping.  Paper: WASP's network-aware choice
yields 41-56% lower overhead than Random and Distant; No Migrate is nearly
instant but abandons the state (accuracy loss).
"""

from repro.experiments.figures import fig13_report, measure_overhead
from repro.experiments.scenarios import (
    FIG13_STATE_MB,
    MIGRATION_RUN_DURATION_S,
    MIGRATION_TRIGGER_AT_S,
    build_migration_run,
    force_reassignment,
    migration_variants,
)


def run_strategy(variant):
    run = build_migration_run(variant, FIG13_STATE_MB)
    run.run(MIGRATION_TRIGGER_AT_S)
    destination = force_reassignment(run)
    run.run(MIGRATION_RUN_DURATION_S - MIGRATION_TRIGGER_AT_S)
    record = run.manager.history[-1]
    return measure_overhead(run, record, destination=destination)


def test_fig13_state_migration(bench_once):
    breakdowns = bench_once(
        lambda: [run_strategy(v) for v in migration_variants()]
    )
    print()
    print(fig13_report(breakdowns))

    by_name = {b.variant: b for b in breakdowns}
    none, wasp = by_name["WASP/none"], by_name["WASP"]
    random_, distant = by_name["WASP/random"], by_name["WASP/distant"]

    # No Migrate: ~zero transition, but the state is lost.
    assert none.transition_s < 5.0
    assert none.state_lost_mb == FIG13_STATE_MB

    # Network awareness: WASP's overhead is lowest among migrating
    # strategies (paper: 41-56% lower than Random/Distant).
    assert wasp.state_lost_mb == 0.0
    assert wasp.total_s < random_.total_s
    assert wasp.total_s < distant.total_s
    assert wasp.total_s < 0.8 * distant.total_s

    # Distant (adversarial) is the worst mapping.
    assert distant.total_s >= random_.total_s

    # The cost shows up in the delay distribution too.
    assert wasp.p95_delay_s < distant.p95_delay_s

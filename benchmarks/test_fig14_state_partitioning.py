"""Figure 14: mitigating adaptation overhead through state partitioning.

State size sweeps {0, 32, 64, 128, 256, 512} MB with t_max = 30 s.
Paper: Default's overhead grows with the state size, while Partitioned
scales the operator out so each |state|/p' slice crosses a different link,
cutting the overhead by >120 s (and the delay by ~42 s) at large sizes.
"""

from repro.baselines.variants import wasp
from repro.experiments.figures import fig14_report, measure_overhead
from repro.experiments.scenarios import (
    FIG14_STATE_SIZES_MB,
    MIGRATION_TRIGGER_AT_S,
    build_migration_run,
    force_partitioned_adaptation,
    force_reassignment,
)

#: Long enough for even the 512 MB Default migration to finish draining.
RUN_DURATION_S = 700.0
THRESHOLD_S = 30.0


def run_mode(mode: str, state_mb: float):
    run = build_migration_run(wasp(), state_mb)
    run.run(MIGRATION_TRIGGER_AT_S)
    if mode == "Partitioned":
        force_partitioned_adaptation(run, t_threshold_s=THRESHOLD_S)
    else:
        force_reassignment(run)
    run.run(RUN_DURATION_S - MIGRATION_TRIGGER_AT_S)
    record = run.manager.history[-1]
    return measure_overhead(run, record)


def sweep():
    rows = []
    for mode in ("Default", "Partitioned"):
        for size in FIG14_STATE_SIZES_MB:
            rows.append((mode, size, run_mode(mode, size)))
    return rows


def test_fig14_state_partitioning(bench_once):
    rows = bench_once(sweep)
    print()
    print(fig14_report(rows))

    default = {size: b for mode, size, b in rows if mode == "Default"}
    partitioned = {size: b for mode, size, b in rows if mode == "Partitioned"}

    # Default's transition grows (roughly linearly) with the state size.
    assert default[512.0].transition_s > default[128.0].transition_s
    assert default[128.0].transition_s > default[32.0].transition_s

    # Partitioning pays off for large state (paper: 256 and 512 MB).
    for size in (256.0, 512.0):
        assert partitioned[size].transition_s < (
            0.75 * default[size].transition_s
        )
        assert partitioned[size].p95_delay_s < default[size].p95_delay_s

    # The paper reports > 120 s overhead reduction at the largest size.
    saved = default[512.0].transition_s - partitioned[512.0].transition_s
    assert saved > 120.0

    # Small states are not worth partitioning - behaviour matches Default.
    assert partitioned[0.0].transition_s == default[0.0].transition_s

"""Figure 12: quality vs delay trade-offs in the live environment.

Paper: Degrade sacrificed up to ~24% of the events to keep its delay low;
WASP processed 100% but with a longer delay-tail distribution (monitoring,
state-migration transitions, and queued events after failure recovery).
"""

from conftest import scenario_runs
from repro.experiments.figures import fig12_report


def test_fig12_quality_tradeoff(bench_once):
    runs = bench_once(lambda: scenario_runs("fig11"))
    print()
    print(fig12_report(runs))

    wasp_run = runs["WASP"]
    degrade_run = runs["Degrade"]

    # Quality: WASP and No Adapt process everything; Degrade loses a
    # substantial fraction (paper: up to ~24%).
    assert wasp_run.recorder.processed_fraction() == 1.0
    assert runs["No Adapt"].recorder.processed_fraction() == 1.0
    dropped = 1.0 - degrade_run.recorder.processed_fraction()
    assert 0.05 < dropped < 0.5

    # Delay distribution: WASP's tail is longer than Degrade's (the cost
    # of processing every event), but its median is at least as good.
    assert wasp_run.recorder.delay_percentile(99) > (
        degrade_run.recorder.delay_percentile(99)
    )
    assert wasp_run.recorder.delay_percentile(50) <= (
        degrade_run.recorder.delay_percentile(50) * 1.5
    )

"""Shared machinery for the figure-regeneration benchmarks.

Each benchmark runs one of the paper's experiments end-to-end (seeded and
deterministic), prints the figure's rows/series via
:mod:`repro.experiments.figures`, and asserts the *shape* the paper reports
(who wins, in which direction).  Absolute numbers are not compared - the
substrate is a simulator, not the authors' testbed.

Expensive scenario runs are cached per session so that figure pairs sharing
runs (8/9, 11/12) compute once.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_variants
from repro.experiments.scenarios import (
    fig8_scenario,
    fig10_scenario,
    fig11_scenario,
)

_CACHE: dict[str, dict] = {}

#: One shared seed so every figure reproduces the same world.
BENCH_SEED = 42


def scenario_runs(name: str):
    """Run (or fetch) a named scenario's full variant sweep."""
    if name in _CACHE:
        return _CACHE[name]
    if name.startswith("fig8-"):
        scenario = fig8_scenario(name.removeprefix("fig8-"))
    elif name == "fig10":
        scenario = fig10_scenario()
    elif name == "fig11":
        scenario = fig11_scenario()
    else:  # pragma: no cover - defensive
        raise KeyError(name)
    runs = run_variants(
        scenario.make_topology,
        scenario.make_query,
        list(scenario.variants),
        scenario.duration_s,
        scenario.make_dynamics,
        seed=BENCH_SEED,
    )
    _CACHE[name] = runs
    return runs


@pytest.fixture
def bench_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner

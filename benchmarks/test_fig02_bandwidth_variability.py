"""Figure 2: WAN bandwidth variability between Oregon and Ohio.

Paper: a one-day iperf measurement at 5-minute intervals shows 25%-93%
deviation from the mean.  We regenerate the trace from the seeded bandwidth
process and report the same 30-minute-interval series.
"""

import numpy as np

from repro.experiments.figures import fig2_report
from repro.network.bandwidth import BandwidthStats, oregon_ohio_trace


def test_fig02_bandwidth_variability(bench_once):
    trace = bench_once(
        lambda: oregon_ohio_trace(np.random.default_rng(2020))
    )
    print()
    print(fig2_report(trace))

    stats = BandwidthStats.from_trace(trace)
    # Shape: high variability (paper: deviations reach 25-93% of the mean),
    # the trace dips well below and recovers above its mean.
    assert stats.max_deviation >= 0.25
    assert stats.min_mbps < 0.75 * stats.mean_mbps
    assert stats.max_mbps > 1.1 * stats.mean_mbps
    assert len(trace) == 288  # one day at 5-minute samples

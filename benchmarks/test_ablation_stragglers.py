"""Ablation: straggler mitigation (the Section-1 dynamic).

The paper lists stragglers among the dynamics WASP targets but does not
dedicate a figure to them; this benchmark closes that gap.  A site hosting
the YSB join is slowed 8x for nine minutes; WASP's per-site diagnosis spots
the imbalance (the slow site cannot drain its balanced share even though
aggregate capacity looks fine) and moves the work off the straggler.
"""

import numpy as np

from repro.baselines.variants import no_adapt, wasp
from repro.experiments.figures import segment_mean
from repro.experiments.harness import DynamicsSpec, ExperimentRun, StragglerEvent
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import ysb_advertising

DURATION_S = 500.0


def run_variant(variant):
    rngs = RngRegistry(42)
    topology = paper_testbed(rngs.stream("topology"))
    query = ysb_advertising(topology)
    run = ExperimentRun(topology, query, variant, rngs=rngs)
    victim = run.runtime.plan.stage("join{ads+campaigns}").sites()[0]
    dynamics = DynamicsSpec(
        stragglers=[
            StragglerEvent(t_s=60.0, duration_s=540.0, site=victim,
                           slowdown=8.0)
        ]
    )
    run.run(DURATION_S, dynamics)
    return run


def test_ablation_stragglers(bench_once):
    runs = bench_once(
        lambda: {v.name: run_variant(v) for v in (no_adapt(), wasp())}
    )
    print()
    print("Ablation: straggler mitigation (join site slowed 8x at t=60)")
    print(f"{'variant':>10} {'baseline':>9} {'straggling':>11} "
          f"{'p95':>8} {'actions':>8}")
    for name, run in runs.items():
        delay = run.recorder.delay_series()
        print(
            f"{name:>10} {segment_mean(delay, 30, 60):9.2f} "
            f"{segment_mean(delay, 300, 500):11.2f} "
            f"{run.recorder.delay_percentile(95):8.2f} "
            f"{len(run.manager.history) if run.manager else 0:8d}"
        )

    static, adapted = runs["No Adapt"], runs["WASP"]
    baseline = segment_mean(adapted.recorder.delay_series(), 30, 60)

    # The static run suffers; WASP moves work off the straggler and
    # returns near baseline without dropping events.
    assert segment_mean(static.recorder.delay_series(), 300, 500) > (
        3 * baseline
    )
    assert segment_mean(adapted.recorder.delay_series(), 300, 500) < (
        3 * baseline
    )
    assert adapted.manager.history
    assert adapted.recorder.processed_fraction() == 1.0

"""Figure 8: average execution delay under workload and bandwidth dynamics.

Paper timeline: source rate 10k -> 20k eps at t=300, back at t=600; all
links halved at t=900, restored at t=1200.  Expected shape per panel:

* No Adapt's delay grows by orders of magnitude during the constrained
  intervals;
* Degrade holds the 10 s SLO;
* Re-opt (WASP) maintains near-baseline delay throughout without dropping
  a single event.
"""

import pytest

from conftest import scenario_runs
from repro.experiments.figures import fig8_report, segment_mean

PANELS = ("ysb-advertising", "topk-topics", "events-of-interest")

#: The constrained intervals (tick ranges) of the Section 8.4 timeline.
STRESSED = ((400, 600), (1000, 1200))
BASELINE = (100, 300)


@pytest.mark.parametrize("query_name", PANELS)
def test_fig08_delay_under_dynamics(query_name, bench_once):
    runs = bench_once(lambda: scenario_runs(f"fig8-{query_name}"))
    print()
    print(fig8_report(runs, query_name))

    def delay(name, lo, hi):
        return segment_mean(runs[name].recorder.delay_series(), lo, hi)

    baseline = delay("WASP", *BASELINE)

    # WASP holds near-baseline delay through every interval.
    for lo, hi in STRESSED:
        assert delay("WASP", lo, hi) < max(4 * baseline, 2.0)

    # No Adapt degrades substantially in at least one stressed interval
    # (the paper shows 2-3 orders of magnitude; we require >= 5x).
    worst_static = max(delay("No Adapt", lo, hi) for lo, hi in STRESSED)
    assert worst_static > 5 * baseline

    # Degrade bounds delay by the SLO (10 s) in every interval.
    for lo, hi in STRESSED:
        assert delay("Degrade", lo, hi) < 10.5

    # WASP drops nothing; Degrade pays with events.
    assert runs["WASP"].recorder.processed_fraction() == 1.0
    assert runs["No Adapt"].recorder.processed_fraction() == 1.0
    assert runs["Degrade"].recorder.processed_fraction() < 1.0

"""Ablation: the bandwidth-utilization threshold alpha (Section 4.1).

The paper argues alpha trades stability against utilization: "setting [it]
too high (~1) leads to greater impact of misestimation and makes the system
unstable, while setting it too low leads to a non-optimal optimization",
and fixes alpha = 0.8.  This ablation sweeps alpha under the Section 8.4
dynamics *with measurement noise enabled* and reports delay and adaptation
churn per setting.
"""

import numpy as np

from repro.baselines.variants import wasp
from repro.config import WaspConfig
from repro.experiments.harness import ExperimentRun
from repro.experiments.scenarios import bottleneck_dynamics
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import topk_topics

ALPHAS = (0.5, 0.8, 0.95)
DURATION_S = 900.0


def run_alpha(alpha: float):
    config = WaspConfig.paper_defaults().with_overrides(
        alpha=alpha, estimation_error=0.15
    )
    rngs = RngRegistry(42)
    topology = paper_testbed(rngs.stream("topology"))
    query = topk_topics(topology, rngs.stream("query"))
    run = ExperimentRun(topology, query, wasp(), config=config, rngs=rngs)
    run.run(DURATION_S, bottleneck_dynamics())
    return run


def test_ablation_alpha(bench_once):
    runs = bench_once(lambda: {a: run_alpha(a) for a in ALPHAS})
    print()
    print("Ablation: alpha sweep (15% bandwidth mis-estimation injected)")
    print(f"{'alpha':>6} {'mean delay':>12} {'p95 delay':>11} "
          f"{'adaptations':>12} {'max extra slots':>16}")
    for alpha, run in runs.items():
        rec = run.recorder
        print(
            f"{alpha:6.2f} {rec.mean_delay():12.2f} "
            f"{rec.delay_percentile(95):11.2f} "
            f"{len(run.manager.history):12d} "
            f"{int(max(rec.extra_slots_series())):16d}"
        )

    # Every setting must keep the query alive and lossless; the point of
    # the ablation is the reported trade-off (delay vs adaptation churn vs
    # slots), which varies with the noise realization.
    for run in runs.values():
        assert run.recorder.processed_fraction() == 1.0
    assert runs[0.8].manager.history
    # The sweep must actually exercise different behaviour.
    assert len({len(r.manager.history) for r in runs.values()}) >= 2

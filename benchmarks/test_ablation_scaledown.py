"""Ablation: gradual vs aggressive scale-down (Section 4.2).

The paper "opt[s] to gradually reduce the parallelism by 1 per iteration to
prioritize performance stability over resource utilization" because an
aggressive reduction risks a workload spike right after.  This ablation
runs a workload spike -> lull -> spike pattern and compares the default
one-step scale-down against an aggressive waste threshold that tears
capacity down faster.
"""

import numpy as np

from repro.baselines.variants import wasp
from repro.config import WaspConfig
from repro.core.actions import ActionKind
from repro.experiments.harness import DynamicsSpec, ExperimentRun
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.sim.schedule import Schedule
from repro.workloads.queries import topk_topics

#: spike -> lull -> spike
SPIKY = Schedule.steps(200.0, [1.0, 2.0, 1.0, 2.0, 1.0])
DURATION_S = 1000.0


def run_policy(waste_utilization: float):
    config = WaspConfig.paper_defaults().with_overrides(
        waste_utilization=waste_utilization
    )
    rngs = RngRegistry(42)
    topology = paper_testbed(rngs.stream("topology"))
    query = topk_topics(topology, rngs.stream("query"))
    run = ExperimentRun(topology, query, wasp(), config=config, rngs=rngs)
    run.run(DURATION_S, DynamicsSpec(workload_schedule=SPIKY))
    return run


def test_ablation_scaledown(bench_once):
    runs = bench_once(
        lambda: {
            "conservative (0.5)": run_policy(0.5),
            "aggressive (0.85)": run_policy(0.85),
        }
    )
    print()
    print("Ablation: scale-down aggressiveness under a spiky workload")
    print(f"{'policy':>20} {'mean delay':>11} {'p95':>8} "
          f"{'scale-downs':>12} {'re-scale-ups':>13}")
    for name, run in runs.items():
        kinds = [r.kind for r in run.manager.history]
        downs = sum(1 for k in kinds if k is ActionKind.SCALE_DOWN)
        ups = sum(
            1 for k in kinds
            if k in (ActionKind.SCALE_UP, ActionKind.SCALE_OUT)
        )
        rec = run.recorder
        print(
            f"{name:>20} {rec.mean_delay():11.2f} "
            f"{rec.delay_percentile(95):8.2f} {downs:12d} {ups:13d}"
        )

    # Both settings stay lossless; the run documents churn for inspection.
    for run in runs.values():
        assert run.recorder.processed_fraction() == 1.0
    # The conservative (paper) setting never oscillates more than the
    # aggressive one on scale-downs.
    kinds_cons = [
        r.kind for r in runs["conservative (0.5)"].manager.history
    ]
    kinds_aggr = [
        r.kind for r in runs["aggressive (0.85)"].manager.history
    ]
    downs_cons = sum(1 for k in kinds_cons if k is ActionKind.SCALE_DOWN)
    downs_aggr = sum(1 for k in kinds_aggr if k is ActionKind.SCALE_DOWN)
    assert downs_cons <= downs_aggr + 2

"""Recorder-output digests: the behaviour-preservation oracle.

The hot-path optimization must be invisible to every experiment: a fixed
seed has to produce bit-identical recorder output before and after.  This
module runs two canonical fixed-seed scenarios (the Fig-8 bottleneck run
and a chaos-enabled run with mid-adaptation faults) and hashes every
recorded sample, adaptation and fault event at full float precision.

Compare across commits::

    PYTHONPATH=src python -m benchmarks.perf.digest
"""

from __future__ import annotations

import hashlib

from repro.baselines.variants import wasp
from repro.chaos.faults import BandwidthCollapse, SiteCrash, Straggler
from repro.chaos.injector import ChaosInjector
from repro.experiments.harness import ExperimentRun
from repro.experiments.scenarios import bottleneck_dynamics, fig8_scenario
from repro.sim.recorder import RunRecorder
from repro.sim.rng import RngRegistry

DIGEST_SEED = 20201207


def recorder_digest(recorder: RunRecorder) -> str:
    """SHA-256 over every sample/adaptation/fault at full float precision.

    ``repr`` of a float is exact (round-trips the IEEE-754 value), so two
    digests match iff the recorded runs are bit-identical.
    """
    h = hashlib.sha256()
    for s in recorder.samples:
        h.update(
            (
                f"{s.t_s!r}|{s.delay_s!r}|{s.processed!r}|{s.offered!r}"
                f"|{s.dropped!r}|{s.parallelism}|{s.extra_slots}\n"
            ).encode()
        )
    for a in recorder.adaptations:
        h.update(f"A|{a.t_s!r}|{a.action}|{a.detail}\n".encode())
    for f in recorder.faults:
        h.update(f"F|{f.t_s!r}|{f.kind}|{f.detail}\n".encode())
    return h.hexdigest()


def _build_run(seed: int = DIGEST_SEED) -> ExperimentRun:
    scenario = fig8_scenario("topk-topics")
    rngs = RngRegistry(seed)
    topology = scenario.make_topology(rngs)
    query = scenario.make_query(topology, rngs)
    return ExperimentRun(topology, query, wasp(), rngs=rngs)


def fig8_digest(duration_s: float = 450.0, seed: int = DIGEST_SEED) -> str:
    """Digest of a fixed-seed Fig-8 bottleneck run (WASP variant)."""
    run = _build_run(seed)
    run.run(duration_s, bottleneck_dynamics())
    return recorder_digest(run.recorder)


def chaos_digest(duration_s: float = 450.0, seed: int = DIGEST_SEED) -> str:
    """Digest of a fixed-seed chaos-enabled run (site crash + bandwidth
    collapse + straggler + probabilistic flaps on a seeded stream)."""
    run = _build_run(seed)
    injector = (
        ChaosInjector(rng=RngRegistry(seed).stream("chaos"))
        .at(120.0, SiteCrash(site="edge-1", duration_s=45.0))
        .at(
            200.0,
            BandwidthCollapse(
                src="dc-oregon", dst="dc-ohio", factor=0.3, duration_s=60.0
            ),
        )
        .at(300.0, Straggler(site="dc-oregon", slowdown=4.0, duration_s=80.0))
    )
    run.attach_chaos(injector)
    run.run(duration_s, bottleneck_dynamics())
    return recorder_digest(run.recorder)


def main() -> int:
    print(f"fig8  {fig8_digest()}")
    print(f"chaos {chaos_digest()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

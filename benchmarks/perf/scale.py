"""Topology-scale benchmark sweep: reference vs dense engine backend.

Builds an all-to-all shuffle world (one source per site fanning into a
globally partitioned aggregation) at increasing site counts and measures
steady-state ticks/s for both engine backends.  The shuffle regime is the
honest scale case for a WAN stream processor: with ``n`` sites the world
carries ``n * (n - 1)`` active flows, so per-flow work dominates and the
dense backend's fused array kernels are exercised where they matter.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.scale --out BENCH_scale.json
    PYTHONPATH=src python -m benchmarks.perf.scale --short   # CI sweep

Everything is seeded: same sizes + seed produce the identical world, so
results are comparable across commits (only wall time varies).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import WaspConfig
from repro.engine import operators as ops
from repro.engine.dense import create_runtime
from repro.engine.logical import LogicalPlan
from repro.engine.physical import PhysicalPlan
from repro.engine.runtime import WorkloadModel
from repro.network.site import Site, SiteKind
from repro.network.topology import Topology

#: Seed shared by every sweep point (same worlds across commits).
SCALE_SEED = 42

#: Full sweep: site counts x aggregation parallelism per site.
FULL_SIZES = (4, 16, 64, 128)
FULL_PARALLELISM = (1, 2)

#: Reduced sweep for CI smoke runs.
SHORT_SIZES = (4, 16, 32)
SHORT_PARALLELISM = (2,)

#: Measured ticks per site count (smaller worlds need more ticks for a
#: stable rate; big ones are slow enough that fewer suffice).
_MEASURE_TICKS = {4: 200, 16: 150, 32: 120, 64: 120, 128: 60}
_WARMUP_TICKS = 30
_SHORT_MEASURE = 40
_SHORT_WARMUP = 10


class _ConstWorkload(WorkloadModel):
    """Constant-rate sources; the sweep measures engine mechanics, not
    workload dynamics."""

    def __init__(self, rates: dict[str, float]) -> None:
        self.rates = dict(rates)

    def generation_eps(self, name: str, t_s: float) -> float:
        return self.rates[name]

    def base_rate_eps(self, name: str) -> float:
        return self.rates[name]


def build_world(
    n_sites: int, parallelism: int, seed: int = SCALE_SEED
) -> tuple[Topology, PhysicalPlan, WorkloadModel]:
    """All-to-all shuffle world: one source per site, ``parallelism``
    aggregation tasks on every site, a single sink.

    Per-site source rate grows with ``n_sites`` so the aggregate keeps the
    same per-task load at every size; link capacities and latencies are
    drawn from a seeded RNG so the WAN is heterogeneous but reproducible.
    """
    rng = np.random.default_rng(seed)
    names = [f"s{i:03d}" for i in range(n_sites)]
    sites = [
        Site(nm, SiteKind.DATA_CENTER, total_slots=64, proc_rate_eps=40_000.0)
        for nm in names
    ]
    topo = Topology(sites)
    for a in names:
        for b in names:
            if a != b:
                topo.set_link(
                    a,
                    b,
                    float(rng.uniform(1.0, 10.0)),
                    float(rng.uniform(10.0, 100.0)),
                )
    srcs = []
    rates: dict[str, float] = {}
    for j, site in enumerate(names):
        nm = f"src{j:03d}"
        srcs.append((ops.source(nm, site, event_bytes=200, cost=0.1), site))
        rates[nm] = 2500.0 * n_sites
    agg = ops.window_aggregate(
        "agg", window_s=10.0, selectivity=0.5, state_mb=64.0, cost=2.0
    )
    sink = ops.sink("sink")
    edges = [(s.name, "agg") for s, _ in srcs] + [("agg", "sink")]
    logical = LogicalPlan.from_edges(
        "scale", [s for s, _ in srcs] + [agg, sink], edges
    )
    plan = PhysicalPlan(logical)
    for spec, site in srcs:
        plan.stage(spec.name).add_task(site)
    for nm in names:
        for _ in range(parallelism):
            plan.stage("agg").add_task(nm)
    plan.stage("sink").add_task(names[0])
    return topo, plan, _ConstWorkload(rates)


def run_point(
    backend: str,
    n_sites: int,
    parallelism: int,
    warmup: int,
    measure: int,
    seed: int = SCALE_SEED,
) -> dict:
    """Time ``measure`` steady-state ticks of one backend at one size."""
    topo, plan, workload = build_world(n_sites, parallelism, seed)
    config = WaspConfig.paper_defaults().with_overrides(engine_backend=backend)
    runtime = create_runtime(topo, plan, workload, config)
    for _ in range(warmup):
        runtime.tick()
    t0 = time.perf_counter()
    for _ in range(measure):
        runtime.tick()
    wall = time.perf_counter() - t0
    return {
        "backend": backend,
        "sites": n_sites,
        "parallelism": parallelism,
        "ticks": measure,
        "wall_s": wall,
        "ticks_per_s": measure / wall if wall > 0 else float("inf"),
        # Sanity fingerprints: both backends must agree on these.
        "total_backlog": float(runtime.total_backlog()),
        "sink_events": float(runtime.last_report.sink_events),
    }


def run_sweep(
    sizes: tuple[int, ...],
    parallelisms: tuple[int, ...],
    warmup: int,
    measure_by_size: dict[int, int] | None,
    seed: int = SCALE_SEED,
    verbose: bool = True,
) -> list[dict]:
    points = []
    for n in sizes:
        measure = (
            measure_by_size.get(n, _SHORT_MEASURE)
            if measure_by_size
            else _SHORT_MEASURE
        )
        for p in parallelisms:
            pair = {}
            for backend in ("reference", "dense"):
                res = run_point(backend, n, p, warmup, measure, seed)
                pair[backend] = res
                points.append(res)
                if verbose:
                    print(
                        f"  sites={n:4d} p={p} {backend:9s}: "
                        f"{res['ticks_per_s']:9.1f} ticks/s "
                        f"(backlog={res['total_backlog']:.3f})",
                        file=sys.stderr,
                    )
            speedup = (
                pair["dense"]["ticks_per_s"] / pair["reference"]["ticks_per_s"]
            )
            pair["dense"]["speedup_vs_reference"] = speedup
            if verbose:
                print(
                    f"  sites={n:4d} p={p} speedup  : {speedup:.2f}x",
                    file=sys.stderr,
                )
    return points


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:  # pragma: no cover - no git in exotic environments
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf.scale",
        description="topology-scale sweep: reference vs dense backend",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"site counts to sweep (default {list(FULL_SIZES)})",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        nargs="+",
        default=None,
        help=f"agg tasks per site (default {list(FULL_PARALLELISM)})",
    )
    parser.add_argument(
        "--short",
        action="store_true",
        help="reduced CI sweep: sizes 4/16/32, fewer ticks",
    )
    parser.add_argument("--seed", type=int, default=SCALE_SEED)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the JSON report here (e.g. BENCH_scale.json)",
    )
    args = parser.parse_args(argv)

    if args.short:
        sizes = tuple(args.sizes) if args.sizes else SHORT_SIZES
        parallelisms = (
            tuple(args.parallelism) if args.parallelism else SHORT_PARALLELISM
        )
        warmup, measure_by_size = _SHORT_WARMUP, None
    else:
        sizes = tuple(args.sizes) if args.sizes else FULL_SIZES
        parallelisms = (
            tuple(args.parallelism) if args.parallelism else FULL_PARALLELISM
        )
        warmup, measure_by_size = _WARMUP_TICKS, dict(_MEASURE_TICKS)

    points = run_sweep(sizes, parallelisms, warmup, measure_by_size, args.seed)
    report = {
        "schema": "wasp-scale-bench/v1",
        "commit": _git_commit(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "seed": args.seed,
        "short": bool(args.short),
        "points": points,
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"\nwrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

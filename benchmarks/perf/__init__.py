"""Seeded performance microbenchmarks for the fluid engine.

Every paper figure replays thousands of engine ticks per variant, so the
hot loop in :meth:`repro.engine.runtime.EngineRuntime.tick` dominates the
wall time of the whole evaluation.  This package measures it at three
granularities, each fully seeded and deterministic:

* **queue ops** - raw :class:`~repro.engine.queues.FluidQueue`
  push/pop/drop throughput (the innermost allocation-sensitive layer);
* **single tick** - a deployed Figure-8 runtime advanced tick by tick with
  no controller attached (the pure dataflow hot path);
* **full scenario** - a complete :class:`~repro.experiments.harness.
  ExperimentRun` of the Section-8.4 bottleneck scenario with the adapting
  WASP variant (planner + controller + engine, what the figures actually
  pay for);
* **snapshot** - :meth:`EngineRuntime.mutation_snapshot` / restore cost on
  a loaded runtime (the transactional-adaptation overhead).

Run it from the repo root::

    PYTHONPATH=src python -m benchmarks.perf --mode smoke
    PYTHONPATH=src python -m benchmarks.perf --mode full \
        --baseline BENCH_engine.json --out BENCH_engine.json

The runner emits ``BENCH_engine.json``: ticks/sec, wall times, peak queue
and parcel counts, and snapshot cost, next to the pre-optimization baseline
so the speedup is tracked in-repo.
"""

from .bench import (  # noqa: F401
    BenchResult,
    bench_full_scenario,
    bench_queue_ops,
    bench_single_tick,
    bench_snapshot,
    run_all,
)

"""CLI driver: run the perf benchmarks and emit ``BENCH_engine.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf --mode smoke
    PYTHONPATH=src python -m benchmarks.perf --mode full \
        --baseline BENCH_engine.json --out BENCH_engine.json

``--baseline`` points at an earlier emission (or a raw results file); its
numbers are carried into the output's ``baseline`` block and per-benchmark
speedups are computed against them.  Without ``--out`` the JSON goes to
stdout only.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

from .bench import MODES, run_all


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:  # pragma: no cover - no git in exotic environments
        return "unknown"


def _load_baseline(path: Path) -> dict | None:
    """Extract a ``{bench name: result dict}`` block from a prior emission."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: cannot read baseline {path}: {exc}", file=sys.stderr)
        return None
    for key in ("baseline", "current"):
        block = data.get(key)
        if isinstance(block, dict) and "results" in block:
            return block
    if "results" in data:
        return {"results": data["results"], "commit": data.get("commit")}
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="WASP engine performance benchmarks",
    )
    parser.add_argument("--mode", choices=sorted(MODES), default="full")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the JSON report here (e.g. BENCH_engine.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="prior emission to compare against (its numbers are kept)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "regression check: run fresh, compare per-benchmark rates "
            "against the committed BENCH_engine.json (or --baseline) and "
            "exit 1 on any >20%% rate regression"
        ),
    )
    args = parser.parse_args(argv)

    if args.check:
        baseline_path = args.baseline or Path("BENCH_engine.json")
        baseline = _load_baseline(baseline_path)
        if baseline is None:
            print(f"error: no usable baseline at {baseline_path}", file=sys.stderr)
            return 2
        results = run_all(args.mode)
        print(f"perf check vs {baseline_path} (mode={args.mode})")
        regressions = []
        for res in results:
            base = baseline["results"].get(res.name)
            if not base or not base.get("rate_per_s"):
                print(f"  {res.name:16s} {res.rate_per_s:12.1f} {res.unit:12s} (no baseline)")
                continue
            delta = res.rate_per_s / base["rate_per_s"] - 1.0
            flag = ""
            if delta < -0.20:
                flag = "  << REGRESSION"
                regressions.append(res.name)
            print(
                f"  {res.name:16s} {res.rate_per_s:12.1f} {res.unit:12s} "
                f"baseline {base['rate_per_s']:12.1f}  {delta:+7.1%}{flag}"
            )
        if regressions:
            print(f"\n{len(regressions)} regression(s): {', '.join(regressions)}")
            return 1
        print("\nno rate regressions beyond 20%")
        return 0

    results = run_all(args.mode)
    current = {
        "commit": _git_commit(),
        "mode": args.mode,
        "python": platform.python_version(),
        "results": {r.name: r.as_dict() for r in results},
    }
    report: dict = {"schema": "wasp-bench/v1", "current": current}

    baseline = _load_baseline(args.baseline) if args.baseline else None
    if baseline is not None:
        report["baseline"] = baseline
        speedups = {}
        for name, res in current["results"].items():
            base = baseline["results"].get(name)
            if base and base.get("rate_per_s"):
                speedups[name] = res["rate_per_s"] / base["rate_per_s"]
        report["speedup_vs_baseline"] = speedups

    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"\nwrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

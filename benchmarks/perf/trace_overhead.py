"""Attached-sink overhead report (informational, not a gate).

The observability contract is *zero* overhead when no sink is attached -
`EventBus.__bool__` short-circuits every emission site - and *low* overhead
when one is.  This script quantifies the second half: it runs the same
fixed-seed Fig-8 scenario three times (no sink, ring buffer, JSONL to a
temp file) and reports ticks/s side by side.

Run::

    PYTHONPATH=src python -m benchmarks.perf.trace_overhead [--duration 200]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.experiments.scenarios import bottleneck_dynamics
from repro.obs.sinks import JsonlSink, RingBufferSink

from .digest import DIGEST_SEED, _build_run


def _timed_run(duration_s: float, make_sink) -> tuple[float, int, int]:
    """Returns (wall_s, ticks, records) for one fixed-seed run."""
    run = _build_run(DIGEST_SEED)
    sink = make_sink(run) if make_sink is not None else None
    t0 = time.perf_counter()
    run.run(duration_s, bottleneck_dynamics())
    wall = time.perf_counter() - t0
    ticks = len(run.recorder.samples)
    records = 0
    if isinstance(sink, RingBufferSink):
        records = len(sink)
    elif isinstance(sink, JsonlSink):
        records = sink.written
    run.obs.close()
    return wall, ticks, records


def measure(duration_s: float = 200.0, tmp_dir: str | None = None) -> dict:
    """Overhead of each sink vs the unobserved baseline, as a report dict."""
    with tempfile.TemporaryDirectory(dir=tmp_dir) as tmp:
        trace_path = Path(tmp) / "overhead.jsonl"
        variants = [
            ("no-sink", None),
            ("ring-buffer", lambda run: run.obs.attach(RingBufferSink())),
            ("jsonl", lambda run: run.obs.attach(JsonlSink(trace_path))),
        ]
        rows = []
        baseline_rate = None
        for name, make_sink in variants:
            wall, ticks, records = _timed_run(duration_s, make_sink)
            rate = ticks / wall if wall > 0 else float("inf")
            if baseline_rate is None:
                baseline_rate = rate
            rows.append(
                {
                    "sink": name,
                    "wall_s": wall,
                    "ticks": ticks,
                    "ticks_per_s": rate,
                    "records": records,
                    "overhead_pct": 100.0 * (baseline_rate / rate - 1.0),
                }
            )
    return {"duration_s": duration_s, "seed": DIGEST_SEED, "runs": rows}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=200.0)
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="also write a JSON report"
    )
    args = parser.parse_args(argv)

    report = measure(args.duration)
    print(
        f"attached-sink overhead (fig8 scenario, seed {report['seed']}, "
        f"{report['duration_s']:.0f}s simulated)"
    )
    print(
        "sink".ljust(14)
        + "wall s".rjust(9)
        + "ticks/s".rjust(12)
        + "records".rjust(10)
        + "overhead".rjust(10)
    )
    for row in report["runs"]:
        print(
            row["sink"].ljust(14)
            + f"{row['wall_s']:9.3f}"
            + f"{row['ticks_per_s']:12.0f}"
            + f"{row['records']:10d}"
            + f"{row['overhead_pct']:+9.1f}%"
        )
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

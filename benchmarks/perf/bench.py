"""The microbenchmarks themselves (all seeded, all deterministic).

Timing uses :func:`time.perf_counter` around fixed amounts of *work* (a
fixed op count or a fixed simulated duration), so results are comparable
across commits; only the wall time varies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.variants import wasp
from repro.engine.queues import FluidQueue
from repro.engine.runtime import EngineRuntime
from repro.experiments.harness import ExperimentRun
from repro.experiments.scenarios import bottleneck_dynamics, fig8_scenario
from repro.sim.rng import RngRegistry

#: Seed shared by every benchmark (same world across commits).
BENCH_SEED = 42


@dataclass
class BenchResult:
    """One benchmark's measurements, JSON-serializable via ``__dict__``."""

    name: str
    wall_s: float
    #: primary throughput metric (ops/sec or ticks/sec)
    rate_per_s: float
    unit: str
    detail: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "rate_per_s": self.rate_per_s,
            "unit": self.unit,
            "detail": dict(self.detail),
        }


# --------------------------------------------------------------------------- #
# Queue ops
# --------------------------------------------------------------------------- #


def bench_queue_ops(ops: int = 200_000) -> BenchResult:
    """Tight push/pop/drop cycles on one FluidQueue.

    The access pattern mirrors the engine's: pushes at advancing gen times
    (merging adjacent parcels), fractional pops, and occasional SLO drops -
    the three ops `_run_stage` and `_transfer_stage_flows` hammer.
    """
    queue = FluidQueue()
    t0 = time.perf_counter()
    now = 0.0
    buf: list = []
    pop_into = getattr(queue, "pop_into", None)
    for i in range(ops):
        now += 0.25
        queue.push(100.0 + (i % 7), now)
        if i % 2 == 1:
            if pop_into is not None:
                buf.clear()
                pop_into(150.0, buf)
            else:
                queue.pop(150.0)
        if i % 64 == 63:
            queue.drop_oldest(50.0)
        if i % 256 == 255:
            queue.drop_older_than(now - 16.0)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="queue_ops",
        wall_s=wall,
        rate_per_s=ops / wall if wall > 0 else float("inf"),
        unit="ops/s",
        detail={"ops": float(ops), "residual_count": queue.count},
    )


def bench_queue_fused_ops(rounds: int = 20_000) -> BenchResult:
    """The fused/batched FluidQueue ops the transfer path leans on.

    Each round mimics a WAN hop: a donor queue pops a burst, the receiver
    absorbs it via ``push_aged`` (latency crossing) and ``push_scaled``
    (selectivity), then periodic SLO maintenance (``drop_oldest`` /
    ``drop_older_than``) and snapshot pressure (``clone_cow`` followed by
    a mutation, so copy-on-write actually pays its materialization).
    """
    from repro.engine.queues import FluidQueue

    donor = FluidQueue()
    receiver = FluidQueue()
    now = 0.0
    for i in range(64):
        now += 0.5
        donor.push(200.0 + (i % 5), now)
    t0 = time.perf_counter()
    for i in range(rounds):
        now += 0.25
        donor.push(120.0 + (i % 3), now)
        burst = donor.pop(110.0)
        receiver.push_aged(burst, 0.040)
        receiver.push_scaled(burst, 0.5)
        if i % 32 == 31:
            receiver.drop_oldest(90.0)
        if i % 128 == 127:
            receiver.drop_older_than(now - 24.0)
        if i % 256 == 255:
            snap = receiver.clone_cow()
            receiver.push(1.0, now)  # force the copy-on-write to pay
            snap.drop_oldest(1.0)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="queue_fused_ops",
        wall_s=wall,
        rate_per_s=rounds / wall if wall > 0 else float("inf"),
        unit="rounds/s",
        detail={
            "rounds": float(rounds),
            "residual_donor": donor.count,
            "residual_receiver": receiver.count,
        },
    )


# --------------------------------------------------------------------------- #
# Single tick (engine only, no controller)
# --------------------------------------------------------------------------- #


def _build_run(variant=None) -> ExperimentRun:
    scenario = fig8_scenario("topk-topics")
    rngs = RngRegistry(BENCH_SEED)
    topology = scenario.make_topology(rngs)
    query = scenario.make_query(topology, rngs)
    return ExperimentRun(topology, query, variant or wasp(), rngs=rngs)


def _queue_stats(runtime: EngineRuntime) -> tuple[float, int]:
    """(total queued events, total parcel objects) across all queue tables."""
    events = 0.0
    parcels = 0
    for table in (
        runtime._gen_queue,
        runtime._input_queue,
        runtime._net_queue,
    ):
        for queue in table.values():
            events += queue.count
            parcels += len(queue)
    return events, parcels


def bench_single_tick(ticks: int = 600) -> BenchResult:
    """The engine hot loop alone: tick a deployed Fig-8 runtime.

    The run's controller/checkpoint clock callbacks are bypassed - this
    times ``Runtime.tick()`` and nothing else.  The workload steps at
    t=300s so backlog builds up and queues stay non-trivial.
    """
    run = _build_run()
    run.set_dynamics(bottleneck_dynamics())
    runtime = run.runtime
    dt = run.config.tick_s
    peak_events, peak_parcels = 0.0, 0
    t0 = time.perf_counter()
    for i in range(ticks):
        run._apply_dynamics((i + 1) * dt)
        runtime.tick()
        if i % 16 == 0:
            events, parcels = _queue_stats(runtime)
            peak_events = max(peak_events, events)
            peak_parcels = max(peak_parcels, parcels)
    wall = time.perf_counter() - t0
    events, parcels = _queue_stats(runtime)
    peak_events = max(peak_events, events)
    peak_parcels = max(peak_parcels, parcels)
    return BenchResult(
        name="single_tick",
        wall_s=wall,
        rate_per_s=ticks / wall if wall > 0 else float("inf"),
        unit="ticks/s",
        detail={
            "ticks": float(ticks),
            "peak_queued_events": peak_events,
            "peak_parcels": float(peak_parcels),
        },
    )


# --------------------------------------------------------------------------- #
# Full scenario (planner + controller + engine)
# --------------------------------------------------------------------------- #


def bench_full_scenario(duration_s: float = 600.0) -> BenchResult:
    """One Figure-8-style ExperimentRun end to end (WASP variant).

    This is what every figure regeneration pays per variant: dynamics,
    engine ticks, metric collection, checkpoint rounds and adaptation
    rounds on the paper cadences.
    """
    run = _build_run()
    ticks = int(duration_s / run.config.tick_s)
    peak_events, peak_parcels = 0.0, 0
    t0 = time.perf_counter()
    run.set_dynamics(bottleneck_dynamics())
    for i in range(ticks):
        run.step()
        if i % 16 == 0:
            events, parcels = _queue_stats(run.runtime)
            peak_events = max(peak_events, events)
            peak_parcels = max(peak_parcels, parcels)
    wall = time.perf_counter() - t0
    recorder = run.recorder
    return BenchResult(
        name="full_scenario",
        wall_s=wall,
        rate_per_s=ticks / wall if wall > 0 else float("inf"),
        unit="ticks/s",
        detail={
            "ticks": float(ticks),
            "duration_s": duration_s,
            "peak_queued_events": peak_events,
            "peak_parcels": float(peak_parcels),
            "total_processed": recorder.total_processed(),
            "adaptations": float(len(recorder.adaptations)),
        },
    )


# --------------------------------------------------------------------------- #
# Snapshot cost (transactional adaptation)
# --------------------------------------------------------------------------- #


def bench_snapshot(rounds: int = 200, warm_ticks: int = 350) -> BenchResult:
    """mutation_snapshot + restore cycles on a loaded runtime.

    The runtime first ticks through the Fig-8 workload surge so the queue
    tables are populated; each round then snapshots, mutates one queue (so
    copy-on-write implementations cannot skip all work), and restores.
    """
    run = _build_run()
    run.set_dynamics(bottleneck_dynamics())
    dt = run.config.tick_s
    for i in range(warm_ticks):
        run._apply_dynamics((i + 1) * dt)
        run.runtime.tick()
    runtime = run.runtime
    events, parcels = _queue_stats(runtime)
    source = runtime.plan.source_stages()[0]
    key = (source.name, source.pinned_site)
    t0 = time.perf_counter()
    for _ in range(rounds):
        snapshot = runtime.mutation_snapshot()
        queue = runtime._gen_queue[key]
        queue.push(1.0, runtime.now_s)
        queue.drop_oldest(1.0)
        runtime.restore_mutation_snapshot(snapshot)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="snapshot",
        wall_s=wall,
        rate_per_s=rounds / wall if wall > 0 else float("inf"),
        unit="snapshots/s",
        detail={
            "rounds": float(rounds),
            "queued_events_at_snapshot": events,
            "parcels_at_snapshot": float(parcels),
        },
    )


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #

#: Work sizes per mode: (queue ops, fused-op rounds, single-tick ticks,
#: scenario seconds, snapshot rounds).
MODES = {
    "smoke": (20_000, 4_000, 120, 120.0, 30),
    "full": (200_000, 40_000, 600, 600.0, 200),
}


def run_all(mode: str = "full") -> list[BenchResult]:
    """Run every benchmark at the given mode's work sizes."""
    try:
        ops, fused_rounds, ticks, duration_s, rounds = MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown mode {mode!r}; choose from {sorted(MODES)}"
        ) from None
    return [
        bench_queue_ops(ops),
        bench_queue_fused_ops(fused_rounds),
        bench_single_tick(ticks),
        bench_full_scenario(duration_s),
        bench_snapshot(rounds),
    ]

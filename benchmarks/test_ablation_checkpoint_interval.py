"""Ablation: checkpoint interval vs recovery cost (Section 5).

WASP checkpoints state locally every 30 s (Section 8.3).  The interval is a
live trade-off: on failure, a task restores from its last local snapshot
and must replay everything it processed since, so sparser snapshots mean
more replay work and a longer recovery tail.  This sweep injects the
Section-8.6 total failure under several checkpoint cadences.
"""

import numpy as np

from repro.baselines.variants import wasp
from repro.config import WaspConfig
from repro.experiments.figures import segment_mean
from repro.experiments.harness import DynamicsSpec, ExperimentRun, FailureEvent
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import topk_topics

INTERVALS_S = (5.0, 30.0, 120.0)
FAILURE = DynamicsSpec(failures=[FailureEvent(t_s=240.0, duration_s=60.0)])
DURATION_S = 700.0


def run_interval(interval_s: float):
    config = WaspConfig.paper_defaults().with_overrides(
        checkpoint_interval_s=interval_s
    )
    rngs = RngRegistry(42)
    topology = paper_testbed(rngs.stream("topology"))
    query = topk_topics(topology, rngs.stream("query"))
    run = ExperimentRun(topology, query, wasp(), config=config, rngs=rngs)
    run.run(DURATION_S, FAILURE)
    return run


def test_ablation_checkpoint_interval(bench_once):
    runs = bench_once(lambda: {i: run_interval(i) for i in INTERVALS_S})
    print()
    print("Ablation: checkpoint interval vs failure-recovery cost "
          "(total failure 240-300 s)")
    print(f"{'interval':>9} {'recovery delay 320-450':>23} "
          f"{'p99':>8} {'mean':>7}")
    for interval, run in runs.items():
        delay = run.recorder.delay_series()
        print(
            f"{interval:8.0f}s {segment_mean(delay, 320, 450):23.2f} "
            f"{run.recorder.delay_percentile(99):8.2f} "
            f"{run.recorder.mean_delay():7.2f}"
        )

    # Every cadence recovers losslessly.
    for run in runs.values():
        assert run.recorder.processed_fraction() == 1.0

    # Sparser snapshots replay more work: the recovery stretch can only
    # get worse as the interval grows.
    recovery = {
        interval: segment_mean(run.recorder.delay_series(), 320, 450)
        for interval, run in runs.items()
    }
    assert recovery[120.0] >= recovery[5.0] * 0.99

"""Ablation: long-term dynamics handling (Section 6.2).

"WASP can also be extended to handle long-term dynamics (e.g., daily
workload shift).  This type of dynamics usually follows a specific pattern
and can be predicted.  Thus, WASP will handle this differently by
periodically re-evaluating the query plan in the background."

This benchmark runs the Top-K query through several compressed diurnal
cycles with an amplified day/night swing and compares reactive-only WASP
against WASP with the background loop attached.  Both must stay lossless;
the report shows how the background loop's proactive re-plans change the
adaptation mix.
"""

from repro.baselines.variants import wasp, wasp_long_term
from repro.core.actions import ActionKind
from repro.experiments.harness import ExperimentRun
from repro.experiments.scenarios import quiet_dynamics
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import topk_topics
from repro.workloads.twitter import TwitterSpec

DURATION_S = 1500.0
#: Strong diurnal pattern: 3x day/night over a 600 s compressed cycle.
SPEC = TwitterSpec(mean_rate_eps=17_000.0, day_length_s=600.0,
                   day_night_ratio=3.0)


def run_variant(variant):
    rngs = RngRegistry(42)
    topology = paper_testbed(rngs.stream("topology"))
    query = topk_topics(topology, rngs.stream("query"), SPEC)
    run = ExperimentRun(topology, query, variant, rngs=rngs)
    run.run(DURATION_S, quiet_dynamics())
    return run


def test_ablation_longterm(bench_once):
    runs = bench_once(
        lambda: {v.name: run_variant(v) for v in (wasp(), wasp_long_term())}
    )
    print()
    print("Ablation: long-term dynamics (3x diurnal swing, 600 s cycle)")
    print(f"{'variant':>16} {'mean':>7} {'p95':>7} {'p99':>8} "
          f"{'reactive acts':>14} {'proactive re-plans':>19}")
    for name, run in runs.items():
        proactive = (
            len(run.long_term.history) if run.long_term is not None else 0
        )
        reactive = len(run.manager.history) - proactive
        rec = run.recorder
        print(
            f"{name:>16} {rec.mean_delay():7.2f} "
            f"{rec.delay_percentile(95):7.2f} "
            f"{rec.delay_percentile(99):8.2f} {reactive:14d} {proactive:19d}"
        )

    reactive_run = runs["WASP"]
    longterm_run = runs["WASP/long-term"]

    # Both stay lossless through the cycles.
    assert reactive_run.recorder.processed_fraction() == 1.0
    assert longterm_run.recorder.processed_fraction() == 1.0

    # The background loop never makes things materially worse, and its
    # proactive re-plans (if any) happen through the long-term path.
    assert longterm_run.recorder.mean_delay() <= (
        2.0 * reactive_run.recorder.mean_delay() + 1.0
    )
    if longterm_run.long_term.history:
        assert all(
            r.kind is ActionKind.REPLAN
            for r in longterm_run.long_term.history
        )

"""Ablation: minmax vs sum-minimizing state-migration mapping (Section 5).

WASP minimizes the *slowest* transfer (minmax) because the stage resumes
only after every moved task's state arrives.  A plausible alternative is to
minimize the *total* transferred byte-seconds (sum).  This ablation builds
random migration instances and compares the two objectives: the sum-optimal
mapping can leave one partition on a slow link, inflating the transition
the paper's metric cares about.
"""

import itertools

import numpy as np

from repro.core.migration import MigrationStrategy, plan_migration


def random_instance(rng, n=4):
    sources = {f"s{i}": float(rng.uniform(20, 200)) for i in range(n)}
    destinations = [f"d{i}" for i in range(n)]
    table = {
        (s, d): float(rng.uniform(1, 100))
        for s in sources
        for d in destinations
    }
    return sources, destinations, table


def sum_optimal_transition(sources, destinations, table):
    """Transition time of the mapping minimizing total transfer seconds."""
    names = sorted(sources)
    best_sum, best_perm = float("inf"), None
    for perm in itertools.permutations(range(len(destinations))):
        total = sum(
            sources[s] * 8.0 / table[(s, destinations[j])]
            for s, j in zip(names, perm)
        )
        if total < best_sum:
            best_sum, best_perm = total, perm
    return max(
        sources[s] * 8.0 / table[(s, destinations[j])]
        for s, j in zip(names, best_perm)
    )


def sweep(instances=40):
    rng = np.random.default_rng(7)
    minmax_wins = 0
    ratios = []
    for _ in range(instances):
        sources, destinations, table = random_instance(rng)
        wasp_plan = plan_migration(
            "agg", sources, destinations,
            lambda s, d: table[(s, d)],
            strategy=MigrationStrategy.WASP,
        )
        sum_transition = sum_optimal_transition(sources, destinations, table)
        ratios.append(sum_transition / wasp_plan.transition_s)
        if wasp_plan.transition_s < sum_transition - 1e-9:
            minmax_wins += 1
    return minmax_wins, instances, ratios


def test_ablation_migration_minmax(bench_once):
    minmax_wins, instances, ratios = bench_once(sweep)
    print()
    print("Ablation: minmax vs sum-minimizing migration mapping")
    print(
        f"instances={instances}  minmax strictly faster on {minmax_wins}  "
        f"sum-mapping transition inflation: mean "
        f"{np.mean(ratios):.2f}x, worst {np.max(ratios):.2f}x"
    )

    # Minmax is never slower than the sum-optimal mapping on the metric
    # that matters (transition time), and strictly faster on a
    # non-negligible share of instances (often the two objectives agree).
    assert min(ratios) >= 1.0 - 1e-9
    assert minmax_wins >= instances // 10

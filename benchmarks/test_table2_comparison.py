"""Table 2: qualitative comparison between adaptation techniques.

The table drives the Figure-6 policy; this benchmark prints it and
cross-checks its claims against the *implemented* behaviour: only
degradation reduces quality, re-planning is the only query-granularity /
high-overhead technique, and the re-optimization techniques are general.
"""

from conftest import scenario_runs
from repro.core.comparison import (
    TABLE_2,
    Applicability,
    Granularity,
    Overhead,
    profile,
)
from repro.experiments.figures import table2_report


def test_table2_comparison(bench_once):
    print()
    print(bench_once(table2_report))

    # Structural claims of the table itself.
    assert [row.technique for row in TABLE_2] == [
        "Task Re-Assignment",
        "Operator Scaling",
        "Query Re-Planning",
        "Data Degradation",
    ]
    assert profile("data degradation").quality_reduction
    assert not any(
        row.quality_reduction
        for row in TABLE_2
        if row.technique != "Data Degradation"
    )
    assert profile("query re-planning").overhead is Overhead.HIGH
    assert profile("task").granularity is Granularity.STAGE
    assert profile("operator").applicability is Applicability.GENERAL

    # Cross-check against the Figure 8 runs: the re-optimizing controller
    # (general techniques, no quality reduction) processed every event, the
    # degradation baseline did not.
    runs = scenario_runs("fig8-topk-topics")
    assert runs["WASP"].recorder.processed_fraction() == 1.0
    assert runs["Degrade"].recorder.processed_fraction() < 1.0

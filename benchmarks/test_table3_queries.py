"""Table 3: location-based query details.

Prints the query inventory and validates it against the paper's table:
state classes (<10 MB / ~100 MB / 0 MB), operator vocabularies, and
datasets.
"""

import numpy as np

from repro.engine.operators import OperatorKind
from repro.experiments.figures import table3_report
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import all_queries


def test_table3_queries(bench_once):
    def build():
        rngs = RngRegistry(42)
        topology = paper_testbed(rngs.stream("topology"))
        return all_queries(topology, rngs.stream("query"))

    queries = bench_once(build)
    print()
    print(table3_report(queries))

    by_name = {q.name: q for q in queries}

    # State classes per Table 3.
    ysb_state = sum(
        op.state_mb
        for op in by_name["ysb-advertising"].primary.stateful_operators()
    )
    topk_state = sum(
        op.state_mb
        for op in by_name["topk-topics"].primary.stateful_operators()
    )
    events_state = sum(
        op.state_mb
        for op in by_name["events-of-interest"].primary.stateful_operators()
    )
    assert ysb_state < 10.0
    assert 50.0 <= topk_state <= 150.0
    assert events_state == 0.0

    # Operator vocabularies per Table 3.
    ysb_kinds = {op.kind for op in by_name["ysb-advertising"].primary}
    assert {
        OperatorKind.FILTER, OperatorKind.MAP, OperatorKind.JOIN,
        OperatorKind.WINDOW_AGGREGATE,
    } <= ysb_kinds
    events_kinds = {op.kind for op in by_name["events-of-interest"].primary}
    assert {
        OperatorKind.FILTER, OperatorKind.UNION, OperatorKind.PROJECT,
    } <= events_kinds

    # Datasets.
    assert by_name["ysb-advertising"].table3.dataset.startswith("YSB")
    assert "Twitter" in by_name["topk-topics"].table3.dataset

"""Ablation: relay routing for state migration (Section 2.2, [36]).

The controlled Section 8.7.1 migration moves 60 MB between edge sites whose
direct public-Internet paths are slow.  Routing the bulk transfer through
the best single relay (typically a data center with fast links to both
edges) can shrink the transition - the "to relay or not to relay" question
the paper cites, answered for the migration use case.
"""

from repro.baselines.variants import wasp
from repro.core.migration import MigrationStrategy
from repro.config import WaspConfig
from repro.experiments.figures import measure_overhead
from repro.experiments.scenarios import (
    FIG13_STATE_MB,
    MIGRATION_RUN_DURATION_S,
    MIGRATION_TRIGGER_AT_S,
    build_migration_run,
    force_reassignment,
)


def run_mode(relays: bool):
    # The WASP destination choice already lands on the best *direct* link,
    # where a relay rarely helps; the interesting case is a migration
    # forced over a weak path (here: the Distant destination), which the
    # relay largely rescues.
    config = WaspConfig.paper_defaults().with_overrides(
        migration_relays=relays
    )
    run = build_migration_run(
        wasp(MigrationStrategy.DISTANT), FIG13_STATE_MB, config=config
    )
    run.run(MIGRATION_TRIGGER_AT_S)
    destination = force_reassignment(run)
    run.run(MIGRATION_RUN_DURATION_S - MIGRATION_TRIGGER_AT_S)
    record = run.manager.history[-1]
    return measure_overhead(run, record, destination=destination)


def test_ablation_relay_migration(bench_once):
    results = bench_once(
        lambda: {"direct": run_mode(False), "relayed": run_mode(True)}
    )
    print()
    print("Ablation: relay routing for a 60 MB migration over a weak "
          "edge-to-edge path")
    print(f"{'mode':>9} {'transition':>11} {'stabilize':>10} {'total':>8}")
    for name, b in results.items():
        stab = f"{b.stabilize_s:.1f}" if b.stabilize_s is not None else "-"
        print(f"{name:>9} {b.transition_s:11.1f} {stab:>10} {b.total_s:8.1f}")

    direct, relayed = results["direct"], results["relayed"]
    # Relaying never hurts the transition (it falls back to direct), and on
    # a weak direct path it recovers most of the loss.
    assert relayed.transition_s <= direct.transition_s + 1e-6
    assert relayed.transition_s < 0.9 * direct.transition_s

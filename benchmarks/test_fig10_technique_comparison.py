"""Figure 10: Re-assign vs Scale vs Re-plan, handled individually.

Paper (Section 8.5): workload x{1,2,2,1,1} and bandwidth x{1,1,0.5,0.5,1}
in 300 s intervals on the stateful Top-K query.

Expected shape:
* every adaptive technique beats No Adapt;
* Scale achieves the lowest overall delay, paying with extra slots
  (~20% in the paper) that it releases again via scale-down;
* Re-assign gets stuck when the bandwidth halves (constrained by the
  initial parallelism), so its tail is worse than Scale's;
* Re-plan is competitive for the bulk of the distribution but keeps a
  heavy tail (the paper's 93rd-percentile crossover).
"""

from conftest import scenario_runs
from repro.core.actions import ActionKind
from repro.experiments.figures import fig10_report


def test_fig10_technique_comparison(bench_once):
    runs = bench_once(lambda: scenario_runs("fig10"))
    print()
    print(fig10_report(runs))

    mean = {name: run.recorder.mean_delay() for name, run in runs.items()}
    p50 = {
        name: run.recorder.delay_percentile(50) for name, run in runs.items()
    }

    # Every adaptive technique improves on No Adapt overall.
    for name in ("Re-assign", "Scale", "Re-plan"):
        assert mean[name] < mean["No Adapt"]

    # Scale wins overall (paper: "Scale resulted in the lowest overall
    # delay").
    assert mean["Scale"] < mean["Re-assign"]
    assert mean["Scale"] < mean["Re-plan"]
    assert p50["Scale"] <= p50["Re-assign"]

    # Scale acquires extra slots and later releases some (scale-down).
    scale_run = runs["Scale"]
    extra = scale_run.recorder.extra_slots_series()
    assert max(extra) >= 1
    assert extra[-1] < max(extra)
    kinds = [r.kind for r in scale_run.manager.history]
    assert ActionKind.SCALE_DOWN in kinds

    # Re-assign and Re-plan never change parallelism.
    for name in ("Re-assign", "Re-plan"):
        assert max(runs[name].recorder.extra_slots_series()) == 0

    # Re-plan's tail exceeds Scale's (the unfixable-at-p-fixed backlog).
    assert runs["Re-plan"].recorder.delay_percentile(99) > (
        runs["Scale"].recorder.delay_percentile(99)
    )

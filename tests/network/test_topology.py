"""Tests for repro.network.topology."""

import pytest

from repro.errors import TopologyError, UnknownSiteError
from repro.network.site import Site, SiteKind
from repro.network.topology import (
    LOCAL_BANDWIDTH_MBPS,
    LOCAL_LATENCY_MS,
    Topology,
)


@pytest.fixture
def topo():
    t = Topology(
        [
            Site("a", SiteKind.EDGE, 2),
            Site("b", SiteKind.DATA_CENTER, 8),
        ]
    )
    t.set_link("a", "b", 10.0, 50.0)
    t.set_link("b", "a", 20.0, 50.0)
    return t


class TestSites:
    def test_lookup(self, topo):
        assert topo.site("a").name == "a"

    def test_unknown_site(self, topo):
        with pytest.raises(UnknownSiteError):
            topo.site("zzz")

    def test_contains(self, topo):
        assert "a" in topo and "zzz" not in topo

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            Topology([Site("a", SiteKind.EDGE, 1), Site("a", SiteKind.EDGE, 1)])

    def test_sites_of_kind(self, topo):
        assert [s.name for s in topo.sites_of_kind(SiteKind.EDGE)] == ["a"]

    def test_available_slots_map(self, topo):
        topo.site("b").allocate(3)
        assert topo.available_slots() == {"a": 2, "b": 5}

    def test_available_slots_zero_for_failed(self, topo):
        topo.site("a").fail()
        assert topo.available_slots()["a"] == 0

    def test_total_used_slots(self, topo):
        topo.site("a").allocate(1)
        topo.site("b").allocate(2)
        assert topo.total_used_slots() == 3


class TestLinks:
    def test_directional_bandwidth(self, topo):
        assert topo.bandwidth_mbps("a", "b") == 10.0
        assert topo.bandwidth_mbps("b", "a") == 20.0

    def test_latency(self, topo):
        assert topo.latency_ms("a", "b") == 50.0

    def test_local_transfers_effectively_free(self, topo):
        assert topo.bandwidth_mbps("a", "a") == LOCAL_BANDWIDTH_MBPS
        assert topo.latency_ms("a", "a") == LOCAL_LATENCY_MS

    def test_undefined_link_rejected(self):
        topo = Topology([Site("a", SiteKind.EDGE, 1), Site("b", SiteKind.EDGE, 1)])
        with pytest.raises(TopologyError):
            topo.bandwidth_mbps("a", "b")

    def test_self_link_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.set_link("a", "a", 1.0, 1.0)

    def test_zero_bandwidth_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.set_link("a", "b", 0.0, 1.0)

    def test_negative_latency_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.set_link("a", "b", 1.0, -1.0)

    def test_links_lists_current_values(self, topo):
        links = {(l.src, l.dst): l.bandwidth_mbps for l in topo.links()}
        assert links[("a", "b")] == 10.0

    def test_fully_connected(self, topo):
        assert topo.fully_connected()

    def test_not_fully_connected(self):
        topo = Topology([Site("a", SiteKind.EDGE, 1), Site("b", SiteKind.EDGE, 1)])
        topo.set_link("a", "b", 1.0, 1.0)
        assert not topo.fully_connected()


class TestDynamics:
    def test_per_link_factor(self, topo):
        topo.set_bandwidth_factor("a", "b", 0.5)
        assert topo.bandwidth_mbps("a", "b") == 5.0
        assert topo.bandwidth_mbps("b", "a") == 20.0  # untouched

    def test_global_factor(self, topo):
        topo.set_global_bandwidth_factor(0.5)
        assert topo.bandwidth_mbps("a", "b") == 5.0
        assert topo.bandwidth_mbps("b", "a") == 10.0

    def test_restore_is_exact(self, topo):
        """Section 8.4 halves at t=900 and restores at t=1200."""
        topo.set_global_bandwidth_factor(0.5)
        topo.set_global_bandwidth_factor(1.0)
        assert topo.bandwidth_mbps("a", "b") == 10.0

    def test_factor_on_undefined_link_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.set_bandwidth_factor("b", "b", 0.5)

    def test_negative_factor_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.set_global_bandwidth_factor(-1.0)

    def test_factor_query(self, topo):
        topo.set_bandwidth_factor("a", "b", 0.25)
        assert topo.bandwidth_factor("a", "b") == 0.25
        assert topo.bandwidth_factor("b", "a") == 1.0

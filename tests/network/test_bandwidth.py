"""Tests for repro.network.bandwidth - the Figure 2 process."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.bandwidth import (
    BandwidthProcess,
    BandwidthStats,
    oregon_ohio_trace,
    thirty_minute_rollup,
)


class TestProcess:
    def test_stays_positive(self):
        process = BandwidthProcess(np.random.default_rng(0), 100.0)
        trace = process.trace(1000)
        assert (trace > 0).all()

    def test_bounded_above(self):
        process = BandwidthProcess(np.random.default_rng(0), 100.0)
        trace = process.trace(1000)
        assert trace.max() <= 200.0

    def test_mean_reverts_to_configured_mean(self):
        process = BandwidthProcess(np.random.default_rng(0), 100.0)
        trace = process.trace(5000)
        assert 60.0 < trace.mean() < 130.0

    def test_reproducible(self):
        a = BandwidthProcess(np.random.default_rng(7), 100.0).trace(50)
        b = BandwidthProcess(np.random.default_rng(7), 100.0).trace(50)
        assert np.allclose(a, b)

    def test_exhibits_dips(self):
        """Figure 2 shows occasional deep dips from topology changes."""
        process = BandwidthProcess(np.random.default_rng(3), 100.0)
        trace = process.trace(288)
        assert trace.min() < 0.5 * trace.mean()

    def test_invalid_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            BandwidthProcess(np.random.default_rng(0), 0.0)

    def test_invalid_phi_rejected(self):
        with pytest.raises(ConfigurationError):
            BandwidthProcess(np.random.default_rng(0), 100.0, phi=1.0)

    def test_invalid_dip_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            BandwidthProcess(
                np.random.default_rng(0), 100.0, dip_probability=1.5
            )

    def test_zero_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            BandwidthProcess(np.random.default_rng(0), 100.0).trace(0)


class TestFigure2Statistics:
    def test_one_day_trace_length(self):
        trace = oregon_ohio_trace(np.random.default_rng(0))
        assert len(trace) == 288  # 24 h at 5-minute samples

    def test_deviation_band_matches_paper(self):
        """The paper reports 25%..93% deviation from the mean."""
        trace = oregon_ohio_trace(np.random.default_rng(0))
        stats = BandwidthStats.from_trace(trace)
        assert stats.max_deviation > 0.25  # high variability present
        assert stats.max_deviation < 1.5  # but not absurd

    def test_rollup_averages_six_samples(self):
        trace = np.arange(12, dtype=float)
        rollup = thirty_minute_rollup(trace)
        assert len(rollup) == 2
        assert rollup[0] == pytest.approx(np.mean(np.arange(6)))

    def test_rollup_drops_partial_interval(self):
        assert len(thirty_minute_rollup(np.arange(10, dtype=float))) == 1

    def test_rollup_empty_for_short_trace(self):
        assert len(thirty_minute_rollup(np.arange(5, dtype=float))) == 0

    def test_stats_fields(self):
        trace = np.array([50.0, 100.0, 150.0])
        stats = BandwidthStats.from_trace(trace)
        assert stats.mean_mbps == pytest.approx(100.0)
        assert stats.min_mbps == 50.0
        assert stats.max_mbps == 150.0
        assert stats.max_deviation == pytest.approx(0.5)

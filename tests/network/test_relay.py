"""Tests for repro.network.relay - bulk-transfer relay routing."""

import pytest

from repro.errors import TopologyError
from repro.network.relay import (
    RELAY_EFFICIENCY,
    RelayPath,
    best_relay_path,
    relayed_bandwidth_lookup,
)


def table_lookup(table, default=1.0):
    def lookup(src, dst):
        return table.get((src, dst), default)

    return lookup


class TestBestRelayPath:
    def test_direct_when_fastest(self):
        bw = table_lookup({("a", "b"): 100.0, ("a", "r"): 10.0,
                           ("r", "b"): 10.0})
        path = best_relay_path("a", "b", ["r"], bw)
        assert path.is_direct
        assert path.bandwidth_mbps == 100.0

    def test_relay_beats_weak_direct(self):
        bw = table_lookup({("a", "b"): 2.0, ("a", "r"): 100.0,
                           ("r", "b"): 80.0})
        path = best_relay_path("a", "b", ["r"], bw)
        assert path.via == "r"
        assert path.bandwidth_mbps == pytest.approx(80.0 * RELAY_EFFICIENCY)

    def test_relay_bottleneck_is_min_hop(self):
        bw = table_lookup({("a", "b"): 1.0, ("a", "r"): 100.0,
                           ("r", "b"): 5.0})
        path = best_relay_path("a", "b", ["r"], bw)
        assert path.bandwidth_mbps == pytest.approx(5.0 * RELAY_EFFICIENCY)

    def test_best_among_several_relays(self):
        bw = table_lookup({
            ("a", "b"): 1.0,
            ("a", "r1"): 10.0, ("r1", "b"): 10.0,
            ("a", "r2"): 50.0, ("r2", "b"): 60.0,
        })
        path = best_relay_path("a", "b", ["r1", "r2"], bw)
        assert path.via == "r2"

    def test_endpoints_excluded_as_relays(self):
        bw = table_lookup({("a", "b"): 3.0})
        path = best_relay_path("a", "b", ["a", "b"], bw)
        assert path.is_direct

    def test_same_site_rejected(self):
        with pytest.raises(TopologyError):
            best_relay_path("a", "a", [], table_lookup({}))

    def test_hops(self):
        assert RelayPath("a", "b", None, 1.0).hops() == [("a", "b")]
        assert RelayPath("a", "b", "r", 1.0).hops() == [
            ("a", "r"), ("r", "b"),
        ]

    def test_efficiency_discount_can_keep_direct(self):
        # Relay min-hop 10 * 0.9 = 9 < direct 9.5: direct wins.
        bw = table_lookup({("a", "b"): 9.5, ("a", "r"): 10.0,
                           ("r", "b"): 10.0})
        assert best_relay_path("a", "b", ["r"], bw).is_direct


class TestRelayedLookup:
    def test_transparent_improvement(self):
        bw = table_lookup({("a", "b"): 2.0, ("a", "r"): 100.0,
                           ("r", "b"): 100.0})
        lookup = relayed_bandwidth_lookup(["a", "b", "r"], bw)
        assert lookup("a", "b") == pytest.approx(100.0 * RELAY_EFFICIENCY)

    def test_local_passthrough(self):
        bw = table_lookup({("a", "a"): 12345.0})
        lookup = relayed_bandwidth_lookup(["a"], bw)
        assert lookup("a", "a") == 12345.0


class TestControllerIntegration:
    def test_relay_shortens_migration_transition(self, small_topology):
        """With relays enabled, moving state over the weak edge-x -> dc-2
        link (5 Mbps) routes via dc-1 (10 then 100 Mbps)."""
        import sys

        sys.path.insert(0, "tests")
        from core.test_controller import build_manager
        from repro.config import WaspConfig
        from repro.core.actions import ReassignAction

        def transition_with(relays: bool) -> float:
            # Fresh topology per run (slots are consumed by deployment).
            from repro.network.site import Site, SiteKind
            from repro.network.topology import Topology

            topo = Topology(
                [
                    Site("edge-x", SiteKind.EDGE, 4),
                    Site("dc-1", SiteKind.DATA_CENTER, 8),
                    Site("dc-2", SiteKind.DATA_CENTER, 8),
                ]
            )
            topo.set_link("edge-x", "dc-1", 10.0, 50.0)
            topo.set_link("dc-1", "edge-x", 10.0, 50.0)
            topo.set_link("dc-1", "dc-2", 100.0, 20.0)
            topo.set_link("dc-2", "dc-1", 100.0, 20.0)
            topo.set_link("edge-x", "dc-2", 5.0, 70.0)
            topo.set_link("dc-2", "edge-x", 5.0, 70.0)
            config = WaspConfig.paper_defaults().with_overrides(
                migration_relays=relays
            )
            manager = build_manager(topo, state_mb=100.0, config=config)
            # Move the stage (and its 100 MB) from dc-1 to edge-x: direct
            # dc-1 -> edge-x is 10 Mbps; no relay helps there.  Instead move
            # to dc-2... direct dc-1 -> dc-2 is already fast.  The
            # interesting pair: force the state to edge-x first.
            manager._execute(
                ReassignAction("agg", "setup", {"edge-x": 1}), now_s=0.0
            )
            manager.runtime._suspended_until.clear()
            record = manager._execute(
                ReassignAction("agg", "test", {"dc-2": 1}), now_s=1.0
            )
            return record.transition_s

        direct = transition_with(False)
        relayed = transition_with(True)
        # Direct edge-x -> dc-2 is 5 Mbps (160 s for 100 MB); via dc-1 the
        # bottleneck hop is 10 Mbps * 0.9 (~89 s).
        assert relayed < direct * 0.7

"""Tests for repro.network.monitor - the WAN Monitor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.monitor import WanMonitor


class TestMeasurement:
    def test_exact_without_noise(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng)
        monitor.refresh(0.0)
        assert monitor.bandwidth_mbps("edge-x", "dc-1") == 10.0

    def test_latency_measured(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng)
        monitor.refresh(0.0)
        assert monitor.latency_ms("edge-x", "dc-1") == 50.0

    def test_noise_bounded(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng, relative_error=0.2)
        monitor.refresh(0.0)
        measured = monitor.bandwidth_mbps("edge-x", "dc-1")
        assert 8.0 <= measured <= 12.0

    def test_invalid_error_rejected(self, small_topology, rng):
        with pytest.raises(ConfigurationError):
            WanMonitor(small_topology, rng, relative_error=1.0)

    def test_local_transfer_delegates_to_topology(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng)
        assert monitor.bandwidth_mbps("dc-1", "dc-1") == (
            small_topology.bandwidth_mbps("dc-1", "dc-1")
        )


class TestStaleness:
    def test_measurement_is_stale_until_refresh(self, small_topology, rng):
        """The controller plans against the last measurement, not ground
        truth - mis-estimation the alpha headroom must absorb."""
        monitor = WanMonitor(small_topology, rng)
        monitor.refresh(0.0)
        small_topology.set_bandwidth_factor("edge-x", "dc-1", 0.5)
        assert monitor.bandwidth_mbps("edge-x", "dc-1") == 10.0
        monitor.refresh(40.0)
        assert monitor.bandwidth_mbps("edge-x", "dc-1") == 5.0

    def test_unmeasured_link_falls_back_to_truth(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng)
        assert monitor.bandwidth_mbps("edge-x", "dc-1") == 10.0

    def test_last_refresh_tracked(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng)
        monitor.refresh(42.0)
        assert monitor.last_refresh_s == 42.0

    def test_measurement_record(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng)
        monitor.refresh(10.0)
        sample = monitor.measurement("edge-x", "dc-1")
        assert sample is not None
        assert sample.measured_at_s == 10.0

    def test_bandwidth_matrix_covers_all_links(self, small_topology, rng):
        monitor = WanMonitor(small_topology, rng)
        monitor.refresh(0.0)
        assert len(monitor.bandwidth_matrix()) == 6

"""Tests for repro.network.site."""

import pytest

from repro.errors import InsufficientSlotsError, TopologyError
from repro.network.site import Site, SiteKind


def make_site(slots=4, kind=SiteKind.EDGE):
    return Site("s", kind, slots)


class TestSlotAccounting:
    def test_initially_all_available(self):
        assert make_site(4).available_slots == 4

    def test_allocate_reduces_availability(self):
        site = make_site(4)
        site.allocate(3)
        assert site.available_slots == 1
        assert site.used_slots == 3

    def test_release_returns_slots(self):
        site = make_site(4)
        site.allocate(3)
        site.release(2)
        assert site.available_slots == 3

    def test_over_allocation_rejected(self):
        site = make_site(2)
        with pytest.raises(InsufficientSlotsError):
            site.allocate(3)

    def test_over_release_rejected(self):
        site = make_site(2)
        site.allocate(1)
        with pytest.raises(TopologyError):
            site.release(2)

    def test_negative_allocate_rejected(self):
        with pytest.raises(TopologyError):
            make_site().allocate(-1)

    def test_negative_release_rejected(self):
        with pytest.raises(TopologyError):
            make_site().release(-1)

    def test_allocate_exactly_all(self):
        site = make_site(3)
        site.allocate(3)
        assert site.available_slots == 0

    def test_release_all(self):
        site = make_site(3)
        site.allocate(3)
        site.release_all()
        assert site.used_slots == 0


class TestFailure:
    def test_failed_site_has_no_available_slots(self):
        site = make_site(4)
        site.fail()
        assert site.available_slots == 0

    def test_failed_site_rejects_allocation(self):
        site = make_site(4)
        site.fail()
        with pytest.raises(InsufficientSlotsError):
            site.allocate(1)

    def test_recover_restores_availability(self):
        site = make_site(4)
        site.allocate(1)
        site.fail()
        site.recover()
        assert site.available_slots == 3

    def test_failed_flag(self):
        site = make_site()
        assert not site.failed
        site.fail()
        assert site.failed


class TestValidation:
    def test_negative_slots_rejected(self):
        with pytest.raises(TopologyError):
            Site("s", SiteKind.EDGE, -1)

    def test_zero_proc_rate_rejected(self):
        with pytest.raises(TopologyError):
            Site("s", SiteKind.EDGE, 1, proc_rate_eps=0)

    def test_is_edge(self):
        assert Site("e", SiteKind.EDGE, 1).is_edge
        assert not Site("d", SiteKind.DATA_CENTER, 1).is_edge

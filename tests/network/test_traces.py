"""Tests for repro.network.traces - the Section 8.2 testbed."""

import numpy as np
import pytest

from repro.network.site import SiteKind
from repro.network.traces import (
    EC2_REGIONS,
    TestbedSpec,
    dc_latency_ms,
    great_circle_km,
    network_distributions,
    paper_testbed,
)


@pytest.fixture
def testbed():
    return paper_testbed(np.random.default_rng(0))


class TestGeometry:
    def test_great_circle_zero_for_same_point(self):
        point = EC2_REGIONS["oregon"]
        assert great_circle_km(point, point) == pytest.approx(0.0)

    def test_great_circle_symmetric(self):
        a, b = EC2_REGIONS["oregon"], EC2_REGIONS["seoul"]
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_known_distance_oregon_ohio(self):
        km = great_circle_km(EC2_REGIONS["oregon"], EC2_REGIONS["ohio"])
        assert 3000 < km < 4000  # ~3,400 km

    def test_latency_increases_with_distance(self):
        near = dc_latency_ms("ireland", "frankfurt")
        far = dc_latency_ms("oregon", "singapore")
        assert near < far

    def test_latency_in_plausible_band(self):
        """Figure 7b: DC latencies span roughly 20-300 ms."""
        values = [
            dc_latency_ms(a, b)
            for a in EC2_REGIONS
            for b in EC2_REGIONS
            if a != b
        ]
        assert min(values) > 5.0
        assert max(values) < 350.0


class TestTestbedStructure:
    def test_sixteen_nodes(self, testbed):
        assert len(testbed.site_names) == 16

    def test_eight_dcs_eight_edges(self, testbed):
        assert len(testbed.sites_of_kind(SiteKind.DATA_CENTER)) == 8
        assert len(testbed.sites_of_kind(SiteKind.EDGE)) == 8

    def test_dc_slots(self, testbed):
        """Section 8.2: data-center nodes provide 8 slots."""
        for site in testbed.sites_of_kind(SiteKind.DATA_CENTER):
            assert site.total_slots == 8

    def test_edge_slots_two_to_four(self, testbed):
        for site in testbed.sites_of_kind(SiteKind.EDGE):
            assert 2 <= site.total_slots <= 4

    def test_fully_connected(self, testbed):
        assert testbed.fully_connected()

    def test_custom_spec(self):
        spec = TestbedSpec(dc_count=3, edge_count=2, dc_slots=4)
        topo = paper_testbed(np.random.default_rng(0), spec)
        assert len(topo.sites_of_kind(SiteKind.DATA_CENTER)) == 3
        assert len(topo.sites_of_kind(SiteKind.EDGE)) == 2

    def test_reproducible(self):
        a = paper_testbed(np.random.default_rng(5))
        b = paper_testbed(np.random.default_rng(5))
        for link_a, link_b in zip(a.links(), b.links()):
            assert link_a == link_b


class TestBandwidthRegimes:
    def test_dc_links_in_figure7_band(self, testbed):
        """Figure 7a: DC bandwidth spans roughly 25-250 Mbps."""
        for link in testbed.links():
            src_edge = testbed.site(link.src).is_edge
            dst_edge = testbed.site(link.dst).is_edge
            if not src_edge and not dst_edge:
                assert 25.0 <= link.bandwidth_mbps <= 250.0

    def test_edge_links_public_internet_class(self, testbed):
        """Akamai: edge connectivity averages < 10 Mbps, thin tail above."""
        edge_bws = [
            link.bandwidth_mbps
            for link in testbed.links()
            if testbed.site(link.src).is_edge or testbed.site(link.dst).is_edge
        ]
        assert np.median(edge_bws) < 15.0
        assert max(edge_bws) <= 30.0
        assert min(edge_bws) >= 1.0

    def test_edge_links_slower_than_dc_links_on_average(self, testbed):
        edge, dc = [], []
        for link in testbed.links():
            touches_edge = (
                testbed.site(link.src).is_edge or testbed.site(link.dst).is_edge
            )
            (edge if touches_edge else dc).append(link.bandwidth_mbps)
        assert np.mean(edge) < np.mean(dc)

    def test_per_destination_draws_are_independent(self, testbed):
        """Scale-out relies on different links from one edge having
        different capacities (Figure 4)."""
        edge = testbed.sites_of_kind(SiteKind.EDGE)[0].name
        bws = {
            dst: testbed.bandwidth_mbps(edge, dst)
            for dst in testbed.site_names
            if dst != edge
        }
        assert len(set(bws.values())) > 3


class TestDistributions:
    def test_distribution_keys(self, testbed):
        dists = network_distributions(testbed)
        assert set(dists) == {
            "edge_bandwidth_mbps",
            "edge_latency_ms",
            "dc_bandwidth_mbps",
            "dc_latency_ms",
        }

    def test_dc_pair_count(self, testbed):
        dists = network_distributions(testbed)
        assert len(dists["dc_bandwidth_mbps"]) == 8 * 7

    def test_edge_class_only_intra_region(self, testbed):
        dists = network_distributions(testbed)
        assert (dists["edge_latency_ms"] <= 150.0).all()

"""Tests for repro.errors - the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.TopologyError,
            errors.UnknownSiteError,
            errors.PlanError,
            errors.CycleError,
            errors.PlacementError,
            errors.InfeasiblePlacementError,
            errors.SchedulingError,
            errors.InsufficientSlotsError,
            errors.StateError,
            errors.CheckpointError,
            errors.MigrationError,
            errors.AdaptationError,
            errors.ReplanningError,
            errors.AdaptationRollbackError,
            errors.SimulationError,
            errors.ChaosError,
        ],
    )
    def test_everything_is_a_wasp_error(self, exc):
        assert issubclass(exc, errors.WaspError)

    def test_every_public_error_subclasses_wasp_error(self):
        """The single-``except WaspError`` contract covers the full module."""
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj.__module__ == errors.__name__
            ):
                assert issubclass(obj, errors.WaspError), name

    def test_unknown_site_subclasses_topology(self):
        assert issubclass(errors.UnknownSiteError, errors.TopologyError)

    def test_infeasible_subclasses_placement(self):
        assert issubclass(
            errors.InfeasiblePlacementError, errors.PlacementError
        )

    def test_insufficient_slots_subclasses_scheduling(self):
        assert issubclass(
            errors.InsufficientSlotsError, errors.SchedulingError
        )

    def test_checkpoint_and_migration_subclass_state(self):
        assert issubclass(errors.CheckpointError, errors.StateError)
        assert issubclass(errors.MigrationError, errors.StateError)

    def test_replanning_subclasses_adaptation(self):
        assert issubclass(errors.ReplanningError, errors.AdaptationError)

    def test_rollback_subclasses_adaptation(self):
        assert issubclass(
            errors.AdaptationRollbackError, errors.AdaptationError
        )

    def test_chaos_is_a_direct_wasp_error(self):
        assert issubclass(errors.ChaosError, errors.WaspError)
        assert not issubclass(errors.ChaosError, errors.SimulationError)

    def test_cycle_subclasses_plan(self):
        assert issubclass(errors.CycleError, errors.PlanError)

    def test_unknown_site_carries_name(self):
        exc = errors.UnknownSiteError("atlantis")
        assert exc.site == "atlantis"
        assert "atlantis" in str(exc)

    def test_catching_the_family(self):
        """One except clause covers every library failure."""
        with pytest.raises(errors.WaspError):
            raise errors.InfeasiblePlacementError("nope")

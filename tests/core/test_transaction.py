"""Tests for transactional adaptation: rollback and the fallback chain.

The scenarios here drive the controller's validate -> snapshot -> apply ->
verify -> commit lifecycle directly, injecting faults at the adaptation
points to provoke rollbacks, and assert the post-conditions the paper's
availability story needs: a failed adaptation leaves the system exactly as
it was, and the Figure-6 chain (retry with re-measured bandwidth,
scale-out with state partitioning, abandon state) eventually lands the
stage somewhere consistent.
"""

import numpy as np
import pytest

from repro.config import WaspConfig
from repro.core.actions import ReassignAction, ScaleAction
from repro.core.controller import ReconfigurationManager
from repro.core.migration import MigrationStrategy
from repro.core.transaction import AdaptationPoint
from repro.engine.checkpoint import CheckpointCoordinator
from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, sink, source, window_aggregate
from repro.engine.physical import PhysicalPlan
from repro.engine.runtime import EngineRuntime, WorkloadModel
from repro.engine.state import StateStore
from repro.network.monitor import WanMonitor
from repro.planner.scheduler import Scheduler
from repro.sim.recorder import RunRecorder


class ConstantWorkload(WorkloadModel):
    def __init__(self, rates):
        self.rates = dict(rates)
        self.base_rate_eps = self.rates.get

    def generation_eps(self, source_stage, t_s):
        return self.rates.get(source_stage, 0.0)


def build_manager(topology, *, rate=1000.0, state_mb=100.0, config=None,
                  migration_strategy=MigrationStrategy.WASP):
    ops = [
        source("src", "edge-x", event_bytes=200),
        filter_("flt", selectivity=0.5, event_bytes=100),
        window_aggregate("agg", window_s=10, selectivity=0.01,
                         state_mb=state_mb),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )
    physical = PhysicalPlan(logical)
    scheduler = Scheduler(topology)
    scheduler.deploy(
        physical,
        {"src": {"edge-x": 1}, "agg": {"dc-1": 1}, "out": {"dc-1": 1}},
    )
    state_store = StateStore()
    state_store.initialize_stage("agg", state_mb, ["dc-1"])
    config = config or WaspConfig.paper_defaults()
    runtime = EngineRuntime(
        topology, physical, ConstantWorkload({"src": rate}), config
    )
    monitor = WanMonitor(topology, np.random.default_rng(0))
    monitor.refresh(0.0)
    return ReconfigurationManager(
        runtime,
        scheduler,
        monitor,
        state_store,
        CheckpointCoordinator(state_store, config.checkpoint_interval_s),
        config=config,
        recorder=RunRecorder(),
        migration_strategy=migration_strategy,
        rng=np.random.default_rng(1),
    )


def assert_consistent(manager):
    """The acceptance invariants: placement, state ownership, slots."""
    topology = manager.runtime.topology
    failed = {s.name for s in topology if s.failed}
    for stage in manager.runtime.plan.topological_stages():
        if stage.is_source:
            continue
        placement = stage.placement()
        assert not set(placement) & failed, stage.name
        if stage.stateful:
            assert set(manager.state_store.sites(stage.name)) <= set(
                placement
            ), stage.name
    tasks_at = {}
    for stage in manager.runtime.plan.topological_stages():
        for site, count in stage.placement().items():
            tasks_at[site] = tasks_at.get(site, 0) + count
    for site in topology:
        assert site.used_slots <= max(site.total_slots, site.used_slots)
        if not site.failed:
            assert site.used_slots >= tasks_at.get(site.name, 0)


class TestHappyPath:
    def test_primary_commits_and_is_logged(self, small_topology):
        manager = build_manager(small_topology)
        record = manager._execute(
            ReassignAction("agg", "test", {"dc-2": 1}), now_s=5.0
        )
        assert record is not None
        assert record.attempt == "primary"
        assert [(a.attempt, a.outcome) for a in manager.attempt_log] == [
            ("primary", "committed")
        ]
        assert_consistent(manager)

    def test_transition_unchanged_by_the_transaction_layer(
        self, small_topology
    ):
        manager = build_manager(small_topology, state_mb=100.0)
        record = manager._execute(
            ReassignAction("agg", "test", {"dc-2": 1}), now_s=0.0
        )
        # 100 MB over the 100 Mbps dc-1 -> dc-2 link = 8 s + base overhead:
        # a committed primary pays no retry backoff.
        assert record.transition_s == pytest.approx(
            manager.config.reconfig_base_overhead_s + 8.0
        )


class TestMidMigrationCrash:
    def _crash_destination_in_flight(self, manager, site="dc-2"):
        topology = manager.runtime.topology

        def hook(point, stage, now_s):
            if (
                point is AdaptationPoint.MIGRATION_IN_FLIGHT
                and not topology.site(site).failed
            ):
                topology.site(site).fail()

        manager.adaptation_hook = hook

    def test_rollback_then_retry_commits_elsewhere(self, small_topology):
        manager = build_manager(small_topology, state_mb=100.0)
        self._crash_destination_in_flight(manager)
        record = manager._execute(
            ReassignAction("agg", "bottleneck", {"dc-2": 1}), now_s=5.0
        )
        assert record is not None
        assert record.attempt == "retry-1"
        outcomes = [(a.attempt, a.outcome) for a in manager.attempt_log]
        assert outcomes == [
            ("primary", "rolled-back"),
            ("retry-1", "committed"),
        ]
        # The retry stripped the failed destination and re-homed the task.
        assert "dc-2" not in manager.runtime.plan.stage("agg").placement()
        assert_consistent(manager)

    def test_retry_pays_the_backoff(self, small_topology):
        manager = build_manager(small_topology, state_mb=100.0)
        self._crash_destination_in_flight(manager)
        record = manager._execute(
            ReassignAction("agg", "bottleneck", {"dc-2": 1}), now_s=5.0
        )
        # retry-1 stays at dc-1 (no transfer) but pays 1 * backoff.
        assert record.transition_s == pytest.approx(
            manager.config.reconfig_base_overhead_s
            + manager.config.adaptation_retry_backoff_s
        )

    def test_rollback_restores_state_ownership_and_slots(
        self, small_topology
    ):
        manager = build_manager(small_topology, state_mb=100.0)
        before_slots = {
            s.name: s.used_slots for s in manager.runtime.topology
        }
        before_sites = manager.state_store.sites("agg")

        def hook(point, stage, now_s):
            raise_site = manager.runtime.topology.site("dc-2")
            if not raise_site.failed:
                raise_site.fail()

        # Crash at every point; the retry then also re-raises until the
        # chain lands on an assignment avoiding dc-2, which the first
        # retry already does - so assert the primary rollback was exact
        # by checking the pre-retry snapshot through the attempt log.
        manager.adaptation_hook = hook
        manager._execute(
            ReassignAction("agg", "bottleneck", {"dc-2": 1}), now_s=5.0
        )
        # Whatever committed, dc-2 never kept state or tasks.
        assert "dc-2" not in manager.state_store.sites("agg")
        assert manager.runtime.topology.site("dc-2").used_slots in (0, 1)
        assert_consistent(manager)
        # And the recorder saw the rollback.
        events = [e.action for e in manager.recorder.adaptations]
        assert "rollback" in events
        del before_slots, before_sites

    def test_fault_timeline_lands_in_recorder(self, small_topology):
        manager = build_manager(small_topology, state_mb=100.0)
        self._crash_destination_in_flight(manager)
        manager._execute(
            ReassignAction("agg", "bottleneck", {"dc-2": 1}), now_s=5.0
        )
        events = [e.action for e in manager.recorder.adaptations]
        assert events == ["rollback", "fallback:retry-1"]


class TestFallbackChain:
    def test_dead_link_falls_through_to_abandon_state(self, small_topology):
        """All WAN paths for the state are dead: the chain must end at
        abandon-state (Section 8.7.1's NONE) rather than wedging."""
        manager = build_manager(small_topology, state_mb=100.0)
        # Sever every link out of dc-1 (where the state lives).
        small_topology.set_bandwidth_factor("dc-1", "dc-2", 0.0)
        small_topology.set_bandwidth_factor("dc-1", "edge-x", 0.0)
        manager.wan_monitor.refresh(0.0)
        record = manager._execute(
            ReassignAction("agg", "bottleneck", {"dc-2": 1}), now_s=5.0
        )
        assert record is not None
        assert record.attempt == "abandon-state"
        assert manager.state_lost_mb == pytest.approx(100.0)
        assert manager.runtime.plan.stage("agg").placement() == {"dc-2": 1}
        outcomes = [a.outcome for a in manager.attempt_log]
        assert outcomes[:-1] == ["rolled-back"] * (len(outcomes) - 1)
        assert outcomes[-1] == "committed"
        assert_consistent(manager)

    def test_scale_out_fallback_partitions_state(self, small_topology):
        """When only the primary's exact placement is impossible, the
        scale-out fallback splits the state across more tasks."""
        manager = build_manager(small_topology, state_mb=100.0)
        config = manager.config.with_overrides(adaptation_max_retries=0)
        manager.config = config
        # The direct move is impossible...
        small_topology.set_bandwidth_factor("dc-1", "dc-2", 0.0)
        manager.wan_monitor.refresh(0.0)
        record = manager._execute(
            ReassignAction("agg", "bottleneck", {"dc-2": 1}), now_s=5.0
        )
        # ...so the chain lands on scale-out (dc-1 keeps a task, so only
        # half the state would move - still over a dead link, hence it
        # falls further to abandon-state) or commits scale-out when the
        # extra task keeps state local.  Either way: consistent, recorded.
        assert record is not None
        assert record.attempt in ("scale-out", "abandon-state")
        labels = [a.attempt for a in manager.attempt_log]
        assert "scale-out" in labels
        assert_consistent(manager)

    def test_exhausted_chain_returns_none_and_restores_everything(
        self, small_topology
    ):
        manager = build_manager(small_topology, state_mb=100.0)
        before_placement = dict(
            manager.runtime.plan.stage("agg").placement()
        )
        before_slots = {
            s.name: s.used_slots for s in manager.runtime.topology
        }
        before_sites = list(manager.state_store.sites("agg"))
        record = manager._execute(
            ReassignAction("agg", "test", {}), now_s=5.0
        )
        assert record is None
        assert manager.attempt_log[-1].outcome == "abandoned"
        assert (
            dict(manager.runtime.plan.stage("agg").placement())
            == before_placement
        )
        assert {
            s.name: s.used_slots for s in manager.runtime.topology
        } == before_slots
        assert list(manager.state_store.sites("agg")) == before_sites

    def test_unknown_stage_abandons_without_touching_the_system(
        self, small_topology
    ):
        manager = build_manager(small_topology)
        record = manager._execute(
            ReassignAction("nope", "test", {"dc-2": 1}), now_s=5.0
        )
        assert record is None
        assert [a.outcome for a in manager.attempt_log] == [
            "rolled-back", "abandoned"
        ]

    def test_unknown_action_type_still_raises(self, small_topology):
        from repro.errors import AdaptationError

        manager = build_manager(small_topology)
        with pytest.raises(AdaptationError):
            manager._execute(object(), now_s=0.0)


class TestValidation:
    def test_assignment_on_failed_site_is_vetoed_up_front(
        self, small_topology
    ):
        manager = build_manager(small_topology, state_mb=100.0)
        small_topology.site("dc-2").fail()
        record = manager._execute(
            ReassignAction("agg", "test", {"dc-2": 1}), now_s=5.0
        )
        # Primary is vetoed by validation (never applied), and the retry
        # re-homes onto a live site.
        assert manager.attempt_log[0].outcome == "rolled-back"
        assert record is not None
        assert "dc-2" not in manager.runtime.plan.stage("agg").placement()
        assert_consistent(manager)

    def test_scale_to_failed_site_reroutes(self, small_topology):
        manager = build_manager(small_topology, state_mb=10.0)
        small_topology.site("dc-2").fail()
        record = manager._execute(
            ScaleAction(
                "agg", "test", 2, {"dc-1": 1, "dc-2": 1}, cross_site=True
            ),
            now_s=5.0,
        )
        assert record is not None
        placement = manager.runtime.plan.stage("agg").placement()
        assert "dc-2" not in placement
        assert sum(placement.values()) >= 1
        assert_consistent(manager)


class TestDeterminism:
    def _run_once(self, make_topology):
        topology = make_topology()
        manager = build_manager(topology, state_mb=100.0)
        hooked = []

        def hook(point, stage, now_s):
            hooked.append((point.value, stage, now_s))
            site = topology.site("dc-2")
            if (
                point is AdaptationPoint.MIGRATION_IN_FLIGHT
                and not site.failed
            ):
                site.fail()

        manager.adaptation_hook = hook
        manager._execute(
            ReassignAction("agg", "bottleneck", {"dc-2": 1}), now_s=5.0
        )
        return (
            repr(manager.attempt_log),
            repr(manager.history),
            repr(manager.recorder.adaptations),
            repr(hooked),
        )

    def test_same_seed_same_records_byte_for_byte(self, small_topology):
        from repro.network.site import Site, SiteKind
        from repro.network.topology import Topology

        def make_topology():
            topo = Topology(
                [
                    Site("edge-x", SiteKind.EDGE, 4),
                    Site("dc-1", SiteKind.DATA_CENTER, 8),
                    Site("dc-2", SiteKind.DATA_CENTER, 8),
                ]
            )
            topo.set_link("edge-x", "dc-1", 10.0, 50.0)
            topo.set_link("dc-1", "edge-x", 10.0, 50.0)
            topo.set_link("dc-1", "dc-2", 100.0, 20.0)
            topo.set_link("dc-2", "dc-1", 100.0, 20.0)
            topo.set_link("edge-x", "dc-2", 5.0, 70.0)
            topo.set_link("dc-2", "edge-x", 5.0, 70.0)
            return topo

        assert self._run_once(make_topology) == self._run_once(
            make_topology
        )

"""Tests for repro.core.estimator - the lambda-hat recursion."""

import pytest

from repro.core.estimator import WorkloadEstimator
from repro.engine.logical import LogicalPlan
from repro.engine.metrics import MetricsWindow
from repro.engine.operators import filter_, sink, source, union, window_aggregate
from repro.engine.physical import PhysicalPlan


def window(source_rates):
    return MetricsWindow(
        t_start_s=0.0,
        t_end_s=40.0,
        offered_eps=sum(source_rates.values()),
        source_generation_eps=dict(source_rates),
        stages={},
        sink_source_equiv_eps=0.0,
        mean_delay_s=0.0,
    )


def fan_in_plan():
    ops = [
        source("a", "site-a"),
        source("b", "site-b"),
        filter_("fa", selectivity=0.5),
        filter_("fb", selectivity=0.25),
        union("u"),
        window_aggregate("agg", window_s=10, selectivity=0.1, state_mb=5),
        sink("out"),
    ]
    edges = [
        ("a", "fa"), ("b", "fb"), ("fa", "u"), ("fb", "u"),
        ("u", "agg"), ("agg", "out"),
    ]
    return PhysicalPlan(LogicalPlan.from_edges("q", ops, edges))


class TestRecursion:
    def test_expected_rates_from_sources(self):
        plan = fan_in_plan()
        estimates = WorkloadEstimator().estimate(
            plan, window({"a": 1000.0, "b": 2000.0})
        )
        # a: 1000*0.5 = 500; b: 2000*0.25 = 500; union input = 1000.
        assert estimates["u"].input_eps == pytest.approx(1000.0)
        assert estimates["agg"].input_eps == pytest.approx(1000.0)
        assert estimates["agg"].output_eps == pytest.approx(100.0)

    def test_backpressure_does_not_distort(self):
        """The estimate depends only on source generation, never on the
        (throttled) downstream observations - the whole point of Section
        3.3."""
        plan = fan_in_plan()
        estimator = WorkloadEstimator()
        clean = estimator.estimate(plan, window({"a": 1000.0, "b": 2000.0}))
        # A window with identical generation but (hypothetically) throttled
        # stage metrics produces identical estimates.
        throttled = window({"a": 1000.0, "b": 2000.0})
        assert estimator.estimate(plan, throttled) == clean

    def test_missing_source_treated_as_zero(self):
        plan = fan_in_plan()
        estimates = WorkloadEstimator().estimate(plan, window({"a": 1000.0}))
        assert estimates["u"].input_eps == pytest.approx(500.0)


class TestUpstreamFlows:
    def test_flows_split_by_task_share(self):
        plan = fan_in_plan()
        plan.stage("a").add_task("site-a")
        plan.stage("b").add_task("site-b")
        plan.stage("u").add_task("dc-1")
        plan.stage("u").add_task("dc-2")
        plan.stage("agg").add_task("dc-1")
        estimator = WorkloadEstimator()
        estimates = estimator.estimate(plan, window({"a": 800.0, "b": 0.0}))
        flows = estimator.upstream_flows_eps(
            plan, plan.stage("agg"), estimates
        )
        # Union emits 400 eps, split evenly across its 2 task sites.
        assert flows[("u", "dc-1")] == pytest.approx(200.0)
        assert flows[("u", "dc-2")] == pytest.approx(200.0)

    def test_undeployed_upstream_skipped(self):
        plan = fan_in_plan()
        estimator = WorkloadEstimator()
        estimates = estimator.estimate(plan, window({"a": 800.0}))
        flows = estimator.upstream_flows_eps(
            plan, plan.stage("agg"), estimates
        )
        assert flows == {}

"""Property tests for the Section 3.3 workload estimator.

The paper's claim: because lambda-hat is derived from *source generation*
(observed at the sources, where backpressure cannot throttle the counter)
and propagated through operator selectivities, the estimate (a) is immune
to backpressure-distorted downstream observations, (b) therefore never
falls below any throttled observed rate, and (c) responds monotonically
(indeed linearly) to input-rate changes.  Hypothesis checks these against
a naive topological-recursion reference model over random fan-in plans.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import WorkloadEstimator
from repro.engine.logical import LogicalPlan
from repro.engine.metrics import MetricsWindow
from repro.engine.operators import (
    filter_,
    sink,
    source,
    union,
    window_aggregate,
)
from repro.engine.physical import PhysicalPlan

rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
selectivities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def fan_in_cases(draw):
    """A plan of N sources -> per-source filter -> union -> agg -> sink,
    plus per-source generation rates."""
    n = draw(st.integers(min_value=1, max_value=3))
    sels = [draw(selectivities) for _ in range(n)]
    agg_sel = draw(selectivities)
    source_rates = {f"src{i}": draw(rates) for i in range(n)}
    ops = []
    edges = []
    for i in range(n):
        ops.append(source(f"src{i}", f"edge-{i}"))
        ops.append(filter_(f"f{i}", selectivity=sels[i]))
        edges.append((f"src{i}", f"f{i}"))
        edges.append((f"f{i}", "u"))
    ops.append(union("u"))
    ops.append(
        window_aggregate("agg", window_s=10, selectivity=agg_sel, state_mb=1)
    )
    ops.append(sink("out"))
    edges.append(("u", "agg"))
    edges.append(("agg", "out"))
    plan = PhysicalPlan(LogicalPlan.from_edges("q", ops, edges))
    return plan, sels, agg_sel, source_rates


def window(source_rates, *, offered_eps=None, mean_delay_s=0.0):
    return MetricsWindow(
        t_start_s=0.0,
        t_end_s=40.0,
        offered_eps=(
            sum(source_rates.values()) if offered_eps is None else offered_eps
        ),
        source_generation_eps=dict(source_rates),
        stages={},
        sink_source_equiv_eps=0.0,
        mean_delay_s=mean_delay_s,
    )


def naive_rates(sels, agg_sel, source_rates):
    """Reference recursion, written out by hand for this plan shape."""
    union_in = sum(
        source_rates[f"src{i}"] * sels[i] for i in range(len(sels))
    )
    return {"union_in": union_in, "agg_out": union_in * agg_sel}


class TestEstimatorProperties:
    @given(fan_in_cases())
    @settings(max_examples=150)
    def test_matches_naive_recursion(self, case):
        plan, sels, agg_sel, source_rates = case
        estimates = WorkloadEstimator().estimate(plan, window(source_rates))
        expected = naive_rates(sels, agg_sel, source_rates)
        assert estimates["u"].input_eps == pytest.approx(
            expected["union_in"], rel=1e-9, abs=1e-9
        )
        assert estimates["agg"].input_eps == pytest.approx(
            expected["union_in"], rel=1e-9, abs=1e-9
        )
        assert estimates["agg"].output_eps == pytest.approx(
            expected["agg_out"], rel=1e-9, abs=1e-9
        )

    @given(
        fan_in_cases(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_backpressure_cannot_depress_lambda_hat(
        self, case, throttle, delay_s
    ):
        """A window whose *observed* arrivals are throttled to any fraction
        of the true rate (queues growing, delay exploding) yields the exact
        same estimate - hence lambda-hat >= every throttled observation."""
        plan, _, _, source_rates = case
        estimator = WorkloadEstimator()
        clean = estimator.estimate(plan, window(source_rates))
        observed_eps = throttle * sum(source_rates.values())
        throttled = estimator.estimate(
            plan,
            window(
                source_rates, offered_eps=observed_eps, mean_delay_s=delay_s
            ),
        )
        assert throttled == clean
        for name, estimate in throttled.items():
            # The throttled observed rate at any stage is at most the
            # throttle fraction of its true input; the estimate is the
            # full true input.
            assert estimate.input_eps >= throttle * clean[name].input_eps

    @given(fan_in_cases(), st.integers(min_value=0, max_value=2), rates)
    @settings(max_examples=100)
    def test_monotone_in_source_rates(self, case, which, bump):
        plan, _, _, source_rates = case
        name = f"src{which % len(source_rates)}"
        bumped = dict(source_rates)
        bumped[name] = bumped[name] + bump
        estimator = WorkloadEstimator()
        low = estimator.estimate(plan, window(source_rates))
        high = estimator.estimate(plan, window(bumped))
        for stage in low:
            assert high[stage].input_eps >= low[stage].input_eps - 1e-9
            assert high[stage].output_eps >= low[stage].output_eps - 1e-9

    @given(
        fan_in_cases(),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_linear_in_source_rates(self, case, factor):
        plan, _, _, source_rates = case
        estimator = WorkloadEstimator()
        base = estimator.estimate(plan, window(source_rates))
        scaled = estimator.estimate(
            plan,
            window({k: v * factor for k, v in source_rates.items()}),
        )
        for stage in base:
            assert scaled[stage].input_eps == pytest.approx(
                base[stage].input_eps * factor, rel=1e-9, abs=1e-6
            )
            assert scaled[stage].output_eps == pytest.approx(
                base[stage].output_eps * factor, rel=1e-9, abs=1e-6
            )

"""Tests for repro.core.diagnosis - the Section 3.2 health conditions."""

import pytest

from repro.config import WaspConfig
from repro.core.diagnosis import Diagnoser, Health
from repro.core.estimator import StageEstimate
from repro.engine.logical import LogicalPlan
from repro.engine.metrics import MetricsWindow, StageMetrics
from repro.engine.operators import filter_, sink, source, window_aggregate
from repro.engine.physical import PhysicalPlan


class StubNetwork:
    """Diagnosis network view over fixed rates/bandwidths."""

    def __init__(self, plan, proc_rate=40_000.0, bandwidth=100.0):
        self._plan = plan
        self._proc_rate = proc_rate
        self._bandwidth = bandwidth

    def bandwidth_mbps(self, src, dst):
        return self._bandwidth

    def site_proc_rate_eps(self, site):
        return self._proc_rate

    def plan_for(self, stage_name):
        return self._plan


def make_plan(agg_tasks=("dc-1",)):
    ops = [
        source("src", "edge-x"),
        filter_("flt", selectivity=0.5),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5,
                         cost=1.0),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )
    plan = PhysicalPlan(logical)
    plan.stage("src").add_task("edge-x")
    for site in agg_tasks:
        plan.stage("agg").add_task(site)
    plan.stage("out").add_task("dc-1")
    return plan


def metrics(stage="agg", *, lambda_p=1000.0, lambda_i=1000.0,
            utilization_capacity=40_000.0, backlog=0.0, growth=0.0,
            net_backlog=None, net_growth=None, net_inflow=None):
    return StageMetrics(
        stage=stage,
        lambda_p=lambda_p,
        lambda_i=lambda_i,
        lambda_o=lambda_p * 0.01,
        selectivity=0.01,
        processed_by_site={"dc-1": lambda_p},
        capacity_by_site={"dc-1": utilization_capacity},
        input_backlog=backlog,
        input_backlog_growth=growth,
        input_backlog_by_site={"dc-1": backlog} if backlog else {},
        net_backlog=net_backlog or {},
        net_backlog_growth=net_growth or {},
        net_inflow=net_inflow or {},
    )


def window_for(stage_metrics):
    return MetricsWindow(
        t_start_s=0.0,
        t_end_s=40.0,
        offered_eps=0.0,
        source_generation_eps={},
        stages={m.stage: m for m in stage_metrics},
        sink_source_equiv_eps=0.0,
        mean_delay_s=0.0,
    )


def diagnose(plan, stage_metrics, estimates, **config_overrides):
    config = WaspConfig.paper_defaults().with_overrides(**config_overrides)
    diagnoser = Diagnoser(config)
    return diagnoser.diagnose(
        plan, window_for(stage_metrics), estimates, StubNetwork(plan)
    )


class TestHealthy:
    def test_unconstrained_execution_is_healthy(self):
        plan = make_plan()
        result = diagnose(
            plan,
            [metrics(lambda_p=1000.0, lambda_i=1000.0)],
            {"agg": StageEstimate("agg", 1000.0, 10.0)},
        )
        assert result["agg"].health is Health.HEALTHY

    def test_sources_not_diagnosed(self):
        plan = make_plan()
        result = diagnose(plan, [], {})
        assert "src" not in result

    def test_transient_backlog_tolerated(self):
        """Section 7: transient spikes are ignored - a backlog the stage
        drains within the health window is not a bottleneck."""
        plan = make_plan()
        result = diagnose(
            plan,
            [metrics(backlog=10_000.0, growth=0.0, lambda_p=39_000.0)],
            {"agg": StageEstimate("agg", 30_000.0, 300.0)},
        )
        assert result["agg"].health is Health.HEALTHY


class TestComputeBound:
    def test_expected_rate_above_capacity(self):
        plan = make_plan()
        result = diagnose(
            plan,
            [metrics(lambda_p=40_000.0)],
            {"agg": StageEstimate("agg", 60_000.0, 600.0)},
        )
        assert result["agg"].health is Health.COMPUTE_BOUND
        assert result["agg"].compute_deficit_eps == pytest.approx(20_000.0)

    def test_large_backlog_at_full_utilization(self):
        plan = make_plan()
        result = diagnose(
            plan,
            [metrics(lambda_p=39_000.0, backlog=200_000.0, growth=5_000.0)],
            {"agg": StageEstimate("agg", 39_000.0, 390.0)},
        )
        assert result["agg"].health is Health.COMPUTE_BOUND

    def test_capacity_reflects_task_count(self):
        plan = make_plan(agg_tasks=("dc-1", "dc-2"))
        result = diagnose(
            plan,
            [metrics(lambda_p=60_000.0)],
            {"agg": StageEstimate("agg", 60_000.0, 600.0)},
        )
        assert result["agg"].processing_capacity_eps == pytest.approx(80_000.0)
        assert result["agg"].health is Health.HEALTHY


class TestNetworkBound:
    def test_growing_net_backlog_flags_link(self):
        plan = make_plan()
        result = diagnose(
            plan,
            [
                metrics(
                    net_backlog={("edge-x", "dc-1"): 50_000.0},
                    net_growth={("edge-x", "dc-1"): 20_000.0},
                    net_inflow={("edge-x", "dc-1"): 10_000.0},
                )
            ],
            {"agg": StageEstimate("agg", 1000.0, 10.0)},
        )
        diagnosis = result["agg"]
        assert diagnosis.health is Health.NETWORK_BOUND
        link = diagnosis.constrained_links[0]
        assert (link.src_site, link.dst_site) == ("edge-x", "dc-1")

    def test_standing_backlog_also_flags(self):
        """A huge non-growing queue keeps emitting stale events and must be
        acted upon (regression for the Re-plan baseline)."""
        plan = make_plan()
        result = diagnose(
            plan,
            [
                metrics(
                    net_backlog={("edge-x", "dc-1"): 10_000_000.0},
                    net_growth={("edge-x", "dc-1"): 0.0},
                )
            ],
            {"agg": StageEstimate("agg", 1000.0, 10.0)},
        )
        assert result["agg"].health is Health.NETWORK_BOUND

    def test_small_standing_backlog_ignored(self):
        plan = make_plan()
        result = diagnose(
            plan,
            [
                metrics(
                    net_backlog={("edge-x", "dc-1"): 10.0},
                    net_growth={("edge-x", "dc-1"): 0.0},
                )
            ],
            {"agg": StageEstimate("agg", 1000.0, 10.0)},
        )
        assert result["agg"].health is Health.HEALTHY

    def test_network_takes_priority_over_compute(self):
        """When both bind, the policy treats it as network-bound (scale-out
        adds compute too)."""
        plan = make_plan()
        result = diagnose(
            plan,
            [
                metrics(
                    lambda_p=40_000.0,
                    net_backlog={("edge-x", "dc-1"): 50_000.0},
                    net_growth={("edge-x", "dc-1"): 20_000.0},
                )
            ],
            {"agg": StageEstimate("agg", 60_000.0, 600.0)},
        )
        assert result["agg"].health is Health.NETWORK_BOUND


class TestWasteful:
    def test_low_utilization_with_spare_task(self):
        plan = make_plan(agg_tasks=("dc-1", "dc-2"))
        result = diagnose(
            plan,
            [metrics(lambda_p=5_000.0, utilization_capacity=80_000.0)],
            {"agg": StageEstimate("agg", 5_000.0, 50.0)},
        )
        assert result["agg"].health is Health.WASTEFUL

    def test_single_task_never_wasteful(self):
        plan = make_plan(agg_tasks=("dc-1",))
        result = diagnose(
            plan,
            [metrics(lambda_p=100.0)],
            {"agg": StageEstimate("agg", 100.0, 1.0)},
        )
        assert result["agg"].health is Health.HEALTHY

    def test_not_wasteful_without_headroom_after_removal(self):
        plan = make_plan(agg_tasks=("dc-1", "dc-2"))
        # 39k expected on 80k capacity is 49% utilization, but one task
        # (40k) cannot absorb it with headroom.
        result = diagnose(
            plan,
            [metrics(lambda_p=39_000.0, utilization_capacity=80_000.0)],
            {"agg": StageEstimate("agg", 39_000.0, 390.0)},
        )
        assert result["agg"].health is Health.HEALTHY

    def test_failed_site_contributes_no_capacity(self):
        plan = make_plan(agg_tasks=("dc-1",))

        class FailedNetwork(StubNetwork):
            def site_proc_rate_eps(self, site):
                return 0.0

        diagnoser = Diagnoser(WaspConfig.paper_defaults())
        result = diagnoser.diagnose(
            plan,
            window_for([metrics(lambda_p=0.0)]),
            {"agg": StageEstimate("agg", 1000.0, 10.0)},
            FailedNetwork(plan),
        )
        assert result["agg"].health is Health.COMPUTE_BOUND
        assert result["agg"].processing_capacity_eps == 0.0

"""Tests for repro.core.scaling - DS2-style scale factors."""

import pytest

from repro.config import WaspConfig
from repro.core.diagnosis import LinkPressure, StageDiagnosis, Health
from repro.core.scaling import (
    can_scale_down,
    compute_scale_out_target,
    compute_scale_up_target,
    pick_scale_down_site,
)
from repro.engine.logical import LogicalPlan
from repro.engine.operators import sink, source, window_aggregate


def make_stage(task_sites):
    ops = [
        source("src", "edge-x"),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "agg"), ("agg", "out")]
    )
    from repro.engine.physical import PhysicalPlan

    plan = PhysicalPlan(logical)
    stage = plan.stage("agg")
    for site in task_sites:
        stage.add_task(site)
    return stage


def diagnosis(*, expected=1000.0, capacity=40_000.0, utilization=0.5,
              backlog=0.0, growth=0.0, links=()):
    return StageDiagnosis(
        stage="agg",
        health=Health.HEALTHY,
        expected_input_eps=expected,
        processing_capacity_eps=capacity,
        utilization=utilization,
        input_backlog=backlog,
        input_backlog_growth=growth,
        constrained_links=tuple(links),
    )


class TestScaleUp:
    def test_ds2_formula(self):
        """p' = ceil(lambda_hat_I / lambda_P * p)."""
        stage = make_stage(["a", "a"])
        decision = compute_scale_up_target(
            stage, diagnosis(expected=120_000.0, capacity=80_000.0)
        )
        assert decision.target == 3  # ceil(1.5 * 2)

    def test_minimum_increase_is_one(self):
        stage = make_stage(["a"])
        decision = compute_scale_up_target(
            stage, diagnosis(expected=40_001.0, capacity=40_000.0)
        )
        assert decision.target == 2

    def test_capped_per_round(self):
        """Resource-hoarding guard (Section 6.2)."""
        config = WaspConfig.paper_defaults()
        stage = make_stage(["a"])
        decision = compute_scale_up_target(
            stage, diagnosis(expected=4_000_000.0, capacity=40_000.0), config
        )
        assert decision.target == 1 + config.max_scale_out_per_round

    def test_backlog_drives_recovery_sizing(self):
        """After a failure the accumulated backlog must drain within one
        monitoring interval (Section 8.6 recovery)."""
        stage = make_stage(["a"])
        with_backlog = compute_scale_up_target(
            stage,
            diagnosis(expected=30_000.0, capacity=40_000.0,
                      backlog=4_000_000.0),
        )
        without = compute_scale_up_target(
            stage, diagnosis(expected=30_000.0, capacity=40_000.0)
        )
        assert with_backlog.target > without.target

    def test_zero_capacity_doubles(self):
        stage = make_stage(["a", "a"])
        decision = compute_scale_up_target(
            stage, diagnosis(expected=1000.0, capacity=0.0)
        )
        assert decision.target == 4

    def test_delta(self):
        stage = make_stage(["a"])
        decision = compute_scale_up_target(
            stage, diagnosis(expected=80_000.0, capacity=40_000.0)
        )
        assert decision.delta == decision.target - 1


class TestScaleOut:
    def link(self, deficit_ratio=0.5, flow=10_000.0):
        capacity = flow * (1 - deficit_ratio)
        return LinkPressure(
            src_site="e1", dst_site="d1", backlog_events=10_000.0,
            backlog_growth=1_000.0, expected_flow_eps=flow,
            capacity_eps=capacity,
        )

    def test_no_links_no_change(self):
        stage = make_stage(["a"])
        decision = compute_scale_out_target(stage, diagnosis())
        assert decision.delta == 0

    def test_adds_tasks_for_constrained_link(self):
        stage = make_stage(["a"])
        decision = compute_scale_out_target(
            stage, diagnosis(links=[self.link()])
        )
        assert decision.target > 1

    def test_capped_per_round(self):
        config = WaspConfig.paper_defaults()
        stage = make_stage(["a"])
        links = [self.link() for _ in range(10)]
        decision = compute_scale_out_target(
            stage, diagnosis(links=links), config
        )
        assert decision.delta <= config.max_scale_out_per_round


class TestScaleDown:
    def test_safe_when_remaining_capacity_has_headroom(self):
        stage = make_stage(["a", "b", "c"])
        assert can_scale_down(
            stage, diagnosis(expected=10_000.0, capacity=120_000.0)
        )

    def test_unsafe_when_remaining_would_be_tight(self):
        stage = make_stage(["a", "b"])
        assert not can_scale_down(
            stage, diagnosis(expected=39_000.0, capacity=80_000.0)
        )

    def test_never_below_one_task(self):
        stage = make_stage(["a"])
        assert not can_scale_down(
            stage, diagnosis(expected=0.0, capacity=40_000.0)
        )

    def test_blocked_by_constrained_links(self):
        stage = make_stage(["a", "b"])
        link = LinkPressure("e1", "a", 100.0, 10.0, 1000.0, 500.0)
        assert not can_scale_down(
            stage, diagnosis(expected=100.0, capacity=80_000.0, links=[link])
        )

    def test_blocked_by_growing_backlog(self):
        stage = make_stage(["a", "b"])
        assert not can_scale_down(
            stage, diagnosis(expected=100.0, capacity=80_000.0, growth=10.0)
        )

    def test_prefers_singleton_site(self):
        """Section 4.2: terminate tasks not co-located with the rest."""
        stage = make_stage(["a", "a", "b"])
        assert pick_scale_down_site(stage) == "b"

    def test_balanced_placement_drops_from_largest(self):
        stage = make_stage(["a", "a", "b", "b"])
        assert pick_scale_down_site(stage) in ("a", "b")

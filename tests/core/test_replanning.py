"""Tests for repro.core.replanning - state-safe plan switching."""

import pytest

from repro.config import WaspConfig
from repro.core.replanning import Replanner
from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, join, sink, source, union
from repro.engine.physical import PhysicalPlan
from repro.network.monitor import WanMonitor


def stateless_variant(name, relay_bytes):
    """Two sources -> union -> sink; variants differ in event size so the
    cost model can tell them apart."""
    ops = [
        source("a", "edge-x", event_bytes=200),
        source("b", "dc-2", event_bytes=200),
        filter_("fa", selectivity=0.5, event_bytes=relay_bytes),
        filter_("fb", selectivity=0.5, event_bytes=relay_bytes),
        union("u", event_bytes=relay_bytes),
        sink("out"),
    ]
    edges = [("a", "fa"), ("b", "fb"), ("fa", "u"), ("fb", "u"), ("u", "out")]
    return LogicalPlan.from_edges(name, ops, edges)


def stateful_variant(name, join_pair):
    remaining = ({"a", "b", "c"} - set(join_pair)).pop()
    first = f"join{{{'+'.join(sorted(join_pair))}}}"
    ops = [
        source("a", "edge-x"),
        source("b", "dc-1"),
        source("c", "dc-2"),
        join(first, selectivity=1.0, state_mb=5),  # non-windowed state
        join("join{a+b+c}", selectivity=1.0, state_mb=5),
        sink("out"),
    ]
    edges = [
        (join_pair[0], first),
        (join_pair[1], first),
        (first, "join{a+b+c}"),
        (remaining, "join{a+b+c}"),
        ("join{a+b+c}", "out"),
    ]
    return LogicalPlan.from_edges(name, ops, edges)


@pytest.fixture
def monitor(small_topology, rng):
    m = WanMonitor(small_topology, rng)
    m.refresh(0.0)
    return m


def deployed_physical(logical, assignments):
    plan = PhysicalPlan(logical)
    for stage_name, sites in assignments.items():
        for site in sites:
            plan.stage(stage_name).add_task(site)
    return plan


class TestSafety:
    def test_safe_candidates_exclude_current(self):
        variants = [stateless_variant("v0", 100), stateless_variant("v1", 50)]
        replanner = Replanner(variants)
        safe = replanner.safe_candidates(variants[0])
        assert [p.name for p in safe] == ["v1"]

    def test_incompatible_stateful_filtered(self):
        variants = [
            stateful_variant("v0", ("a", "b")),
            stateful_variant("v1", ("b", "c")),
        ]
        replanner = Replanner(variants)
        assert replanner.safe_candidates(variants[0]) == []

    def test_identical_stateful_subplan_allowed(self):
        v0 = stateful_variant("v0", ("a", "b"))
        v1 = stateful_variant("v1", ("a", "b"))
        replanner = Replanner([v0, v1])
        assert [p.name for p in replanner.safe_candidates(v0)] == ["v1"]


class TestProposal:
    def test_proposes_cheaper_variant(self, small_topology, monitor):
        heavy = stateless_variant("heavy", 150)
        light = stateless_variant("light", 30)
        replanner = Replanner([heavy, light])
        physical = deployed_physical(
            heavy,
            {"a": ["edge-x"], "b": ["dc-2"], "u": ["dc-1"], "out": ["dc-1"]},
        )
        proposal = replanner.propose(
            heavy, physical, monitor,
            {"edge-x": 3, "dc-1": 6, "dc-2": 7},
            {"a": 5000.0, "b": 5000.0},
        )
        assert proposal is not None
        assert proposal.new_plan_name == "light"
        assert "u" in proposal.surviving_stages

    def test_hysteresis_blocks_marginal_wins(self, small_topology, monitor):
        v0 = stateless_variant("v0", 100)
        v1 = stateless_variant("v1", 99)  # nearly identical cost
        replanner = Replanner([v0, v1])
        physical = deployed_physical(
            v0,
            {"a": ["edge-x"], "b": ["dc-2"], "u": ["dc-1"], "out": ["dc-1"]},
        )
        proposal = replanner.propose(
            v0, physical, monitor,
            {"edge-x": 3, "dc-1": 6, "dc-2": 7},
            {"a": 5000.0, "b": 5000.0},
        )
        assert proposal is None

    def test_forced_proposal_ignores_hysteresis(self, small_topology, monitor):
        v0 = stateless_variant("v0", 100)
        v1 = stateless_variant("v1", 99)
        replanner = Replanner([v0, v1])
        physical = deployed_physical(
            v0,
            {"a": ["edge-x"], "b": ["dc-2"], "u": ["dc-1"], "out": ["dc-1"]},
        )
        proposal = replanner.propose(
            v0, physical, monitor,
            {"edge-x": 3, "dc-1": 6, "dc-2": 7},
            {"a": 5000.0, "b": 5000.0},
            require_improvement=False,
        )
        assert proposal is not None

    def test_none_without_candidates(self, small_topology, monitor):
        v0 = stateful_variant("v0", ("a", "b"))
        v1 = stateful_variant("v1", ("b", "c"))
        replanner = Replanner([v0, v1])
        physical = deployed_physical(
            v0,
            {
                "a": ["edge-x"], "b": ["dc-1"], "c": ["dc-2"],
                "join{a+b}": ["dc-1"], "join{a+b+c}": ["dc-1"],
                "out": ["dc-1"],
            },
        )
        proposal = replanner.propose(
            v0, physical, monitor, small_topology.available_slots(),
            {"a": 100.0, "b": 100.0, "c": 100.0},
        )
        assert proposal is None

    def test_live_parallelism_carried_over(self, small_topology, monitor):
        heavy = stateless_variant("heavy", 150)
        light = stateless_variant("light", 30)
        replanner = Replanner([heavy, light])
        physical = deployed_physical(
            heavy,
            {
                "a": ["edge-x"], "b": ["dc-2"],
                "u": ["dc-1", "dc-2"],  # scaled out to 2
                "out": ["dc-1"],
            },
        )
        proposal = replanner.propose(
            heavy, physical, monitor,
            {"edge-x": 3, "dc-1": 6, "dc-2": 6},
            {"a": 5000.0, "b": 5000.0},
        )
        assert proposal is not None
        assert sum(proposal.estimate.assignments["u"].values()) == 2

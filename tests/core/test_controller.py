"""Tests for repro.core.controller - the Reconfiguration Manager."""

import numpy as np
import pytest

from repro.config import WaspConfig
from repro.core.actions import (
    ActionKind,
    ReassignAction,
    ScaleAction,
    ScaleDownAction,
)
from repro.core.controller import ReconfigurationManager
from repro.core.migration import MigrationStrategy
from repro.core.replanning import Replanner
from repro.engine.checkpoint import CheckpointCoordinator
from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, sink, source, window_aggregate
from repro.engine.physical import PhysicalPlan
from repro.engine.runtime import EngineRuntime, WorkloadModel
from repro.engine.state import StateStore
from repro.network.monitor import WanMonitor
from repro.planner.scheduler import Scheduler


class ConstantWorkload(WorkloadModel):
    def __init__(self, rates):
        self.rates = dict(rates)
        self.base_rate_eps = self.rates.get

    def generation_eps(self, source_stage, t_s):
        return self.rates.get(source_stage, 0.0)


def build_manager(topology, *, rate=1000.0, state_mb=10.0,
                  migration_strategy=MigrationStrategy.WASP,
                  config=None):
    ops = [
        source("src", "edge-x", event_bytes=200),
        filter_("flt", selectivity=0.5, event_bytes=100),
        window_aggregate("agg", window_s=10, selectivity=0.01,
                         state_mb=state_mb),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )
    physical = PhysicalPlan(logical)
    scheduler = Scheduler(topology)
    scheduler.deploy(
        physical,
        {"src": {"edge-x": 1}, "agg": {"dc-1": 1}, "out": {"dc-1": 1}},
    )
    state_store = StateStore()
    state_store.initialize_stage("agg", state_mb, ["dc-1"])
    config = config or WaspConfig.paper_defaults()
    runtime = EngineRuntime(
        topology, physical, ConstantWorkload({"src": rate}), config
    )
    monitor = WanMonitor(topology, np.random.default_rng(0))
    monitor.refresh(0.0)
    manager = ReconfigurationManager(
        runtime,
        scheduler,
        monitor,
        state_store,
        CheckpointCoordinator(state_store, config.checkpoint_interval_s),
        config=config,
        migration_strategy=migration_strategy,
        rng=np.random.default_rng(1),
    )
    return manager


class TestReassignExecution:
    def test_moves_tasks_and_state(self, small_topology):
        manager = build_manager(small_topology)
        for _ in range(5):
            manager.runtime.tick()
        record = manager._execute(
            ReassignAction("agg", "test", {"dc-2": 1}), now_s=5.0
        )
        assert record.kind is ActionKind.REASSIGN
        stage = manager.runtime.plan.stage("agg")
        assert stage.placement() == {"dc-2": 1}
        assert manager.state_store.sites("agg") == ["dc-2"]

    def test_transition_includes_migration_time(self, small_topology):
        manager = build_manager(small_topology, state_mb=100.0)
        record = manager._execute(
            ReassignAction("agg", "test", {"dc-2": 1}), now_s=0.0
        )
        # 100 MB over the 100 Mbps dc-1 -> dc-2 link = 8 s + base overhead.
        assert record.transition_s == pytest.approx(
            manager.config.reconfig_base_overhead_s + 8.0
        )
        assert manager.runtime.is_suspended("agg")

    def test_in_flight_traffic_redirected(self, small_topology):
        manager = build_manager(small_topology, rate=60_000.0)
        for _ in range(10):
            manager.runtime.tick()
        assert manager.runtime.net_backlog_for("agg")
        manager._execute(
            ReassignAction("agg", "test", {"dc-2": 1}), now_s=10.0
        )
        backlog = manager.runtime.net_backlog_for("agg")
        assert all(dst == "dc-2" for _, dst in backlog)

    def test_none_strategy_loses_state(self, small_topology):
        manager = build_manager(
            small_topology, state_mb=50.0,
            migration_strategy=MigrationStrategy.NONE,
        )
        record = manager._execute(
            ReassignAction("agg", "test", {"dc-2": 1}), now_s=0.0
        )
        assert manager.state_lost_mb == pytest.approx(50.0)
        assert record.transition_s == pytest.approx(
            manager.config.reconfig_base_overhead_s
        )
        # The state restarts empty at the new site.
        assert manager.state_store.total_mb("agg") == 0.0


class TestScaleExecution:
    def test_scale_out_partitions_state(self, small_topology):
        manager = build_manager(small_topology, state_mb=90.0)
        record = manager._execute(
            ScaleAction("agg", "test", 2, {"dc-1": 1, "dc-2": 1},
                        cross_site=True),
            now_s=0.0,
        )
        assert manager.runtime.plan.stage("agg").parallelism == 2
        assert manager.state_store.mb_at_site("agg", "dc-2") == (
            pytest.approx(45.0)
        )
        # Only the 45 MB slice crossed the WAN: 45 MB / 100 Mbps = 3.6 s.
        assert record.transition_s == pytest.approx(
            manager.config.reconfig_base_overhead_s + 3.6
        )

    def test_scale_up_local_no_migration(self, small_topology):
        manager = build_manager(small_topology, state_mb=90.0)
        record = manager._execute(
            ScaleAction("agg", "test", 2, {"dc-1": 2}, cross_site=False),
            now_s=0.0,
        )
        assert record.transition_s == pytest.approx(
            manager.config.reconfig_base_overhead_s
        )

    def test_scale_that_vacates_site_rehomes_queues(self, small_topology):
        manager = build_manager(small_topology, rate=120_000.0)
        for _ in range(10):
            manager.runtime.tick()
        manager._execute(
            ScaleAction("agg", "test", 2, {"dc-2": 2}, cross_site=True),
            now_s=10.0,
        )
        # Nothing may remain keyed to the vacated site dc-1.
        assert manager.runtime.input_backlog("agg", "dc-1") == 0.0


class TestScaleDownExecution:
    def test_removes_task_and_merges_state(self, small_topology):
        manager = build_manager(small_topology, state_mb=60.0)
        manager.scheduler.add_tasks(
            manager.runtime.plan.stage("agg"), {"dc-2": 1}
        )
        manager.state_store.rebalance("agg", ["dc-1", "dc-2"])
        record = manager._execute(
            ScaleDownAction("agg", "test", "dc-2"), now_s=0.0
        )
        assert manager.runtime.plan.stage("agg").placement() == {"dc-1": 1}
        assert manager.state_store.mb_at_site("agg", "dc-1") == (
            pytest.approx(60.0)
        )
        assert record.kind is ActionKind.SCALE_DOWN


class TestReplanExecution:
    @staticmethod
    def variants():
        def variant(name, relay_bytes):
            ops = [
                source("src", "edge-x", event_bytes=200),
                filter_("flt", selectivity=0.5, event_bytes=relay_bytes),
                window_aggregate(
                    "agg", window_s=10, selectivity=0.01, state_mb=10
                ),
                sink("out"),
            ]
            return LogicalPlan.from_edges(
                name, ops,
                [("src", "flt"), ("flt", "agg"), ("agg", "out")],
            )

        return [variant("v0", 100), variant("v1", 40)]

    def build(self, topology):
        variants = self.variants()
        physical = PhysicalPlan(variants[0])
        scheduler = Scheduler(topology)
        scheduler.deploy(
            physical,
            {"src": {"edge-x": 1}, "agg": {"dc-1": 1}, "out": {"dc-1": 1}},
        )
        state_store = StateStore()
        state_store.initialize_stage("agg", 10.0, ["dc-1"])
        config = WaspConfig.paper_defaults()
        runtime = EngineRuntime(
            topology, physical, ConstantWorkload({"src": 1000.0}), config
        )
        monitor = WanMonitor(topology, np.random.default_rng(0))
        monitor.refresh(0.0)
        manager = ReconfigurationManager(
            runtime, scheduler, monitor, state_store,
            CheckpointCoordinator(state_store),
            replanner=Replanner(variants),
            config=config,
        )
        return manager, variants

    def test_replan_swaps_plan_and_keeps_state(self, small_topology):
        from repro.core.actions import ReplanAction
        from repro.planner.cost import estimate_deployment

        manager, variants = self.build(small_topology)
        for _ in range(5):
            manager.runtime.tick()
        slots = dict(small_topology.available_slots())
        for stage in manager.runtime.plan.topological_stages():
            for site, count in stage.placement().items():
                slots[site] = slots.get(site, 0) + count
        estimate = estimate_deployment(
            variants[1], manager.wan_monitor, slots, {"src": 1000.0},
            parallelism={"agg": 1},
        )
        record = manager._execute(
            ReplanAction("agg", "test", estimate), now_s=5.0
        )
        assert record.kind is ActionKind.REPLAN
        assert manager.runtime.plan.logical.name == "v1"
        # Windowed state re-initializes; the stage must still have a
        # partition entry for its new tasks.
        assert manager.state_store.sites("agg")
        assert manager.runtime.plan.deployed()

    def test_replan_suspends_non_source_stages(self, small_topology):
        from repro.core.actions import ReplanAction
        from repro.planner.cost import estimate_deployment

        manager, variants = self.build(small_topology)
        slots = dict(small_topology.available_slots())
        for stage in manager.runtime.plan.topological_stages():
            for site, count in stage.placement().items():
                slots[site] = slots.get(site, 0) + count
        estimate = estimate_deployment(
            variants[1], manager.wan_monitor, slots, {"src": 1000.0}
        )
        manager._execute(ReplanAction("agg", "test", estimate), now_s=0.0)
        assert manager.runtime.is_suspended("agg")
        assert not manager.runtime.is_suspended("src")


class TestAdaptationRound:
    def test_healthy_run_takes_no_action(self, small_topology):
        manager = build_manager(small_topology)
        for _ in range(40):
            manager.observe_tick(manager.runtime.tick())
        executed = manager.adaptation_round(40.0)
        assert executed == []

    def test_bottleneck_triggers_action(self, small_topology):
        # agg capacity 40k at dc-1; 120k arrives after the filter cannot
        # even cross the 10 Mbps link -> network bound.
        manager = build_manager(small_topology, rate=240_000.0)
        for _ in range(40):
            manager.observe_tick(manager.runtime.tick())
        executed = manager.adaptation_round(40.0)
        assert executed
        assert manager.history

    def test_suspended_stage_not_readapted(self, small_topology):
        manager = build_manager(small_topology, rate=240_000.0)
        for _ in range(40):
            manager.observe_tick(manager.runtime.tick())
        manager.runtime.suspend_stage("agg", until_s=1_000.0)
        executed = manager.adaptation_round(40.0)
        assert all(r.stage != "agg" for r in executed)

    def test_replan_cooldown_enforced(self, small_topology):
        manager = build_manager(small_topology)
        from repro.core.controller import AdaptationRecord

        manager.history.append(
            AdaptationRecord(
                t_s=35.0, kind=ActionKind.REPLAN, stage="agg",
                reason="prior", transition_s=1.0,
            )
        )
        for _ in range(40):
            manager.observe_tick(manager.runtime.tick())
        executed = manager.adaptation_round(40.0)
        assert all(r.kind is not ActionKind.REPLAN for r in executed)

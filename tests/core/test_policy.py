"""Tests for repro.core.policy - the Figure 6 decision tree."""

import pytest

from repro.config import WaspConfig
from repro.core.actions import (
    ActionKind,
    ReassignAction,
    ReplanAction,
    ScaleAction,
    ScaleDownAction,
)
from repro.core.diagnosis import Health, LinkPressure, StageDiagnosis
from repro.core.estimator import StageEstimate
from repro.core.policy import AdaptationPolicy, PolicyContext, PolicyMode
from repro.core.replanning import Replanner
from repro.engine.logical import LogicalPlan
from repro.engine.operators import (
    filter_,
    sink,
    source,
    top_k,
    union,
    window_aggregate,
)
from repro.engine.physical import PhysicalPlan


class StubNetwork:
    def __init__(self, bandwidth=None, latency=None, default_bw=50.0):
        self.bw = bandwidth or {}
        self.lat = latency or {}
        self.default_bw = default_bw

    def bandwidth_mbps(self, src, dst):
        if src == dst:
            return 100_000.0
        return self.bw.get((src, dst), self.default_bw)

    def latency_ms(self, src, dst):
        if src == dst:
            return 0.5
        return self.lat.get((src, dst), 50.0)


def stateful_plan(agg_sites=("dc-1",)):
    ops = [
        source("src", "edge-x", event_bytes=200),
        filter_("flt", selectivity=0.5, event_bytes=100),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=10),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )
    plan = PhysicalPlan(logical)
    plan.stage("src").add_task("edge-x")
    for site in agg_sites:
        plan.stage("agg").add_task(site)
    plan.stage("out").add_task("dc-1")
    for stage in plan.topological_stages():
        stage.initial_parallelism = max(1, stage.parallelism)
    return plan


def diagnosis_for(stage, health, **kwargs):
    defaults = dict(
        expected_input_eps=1000.0,
        processing_capacity_eps=40_000.0,
        utilization=0.5,
        input_backlog=0.0,
        input_backlog_growth=0.0,
        constrained_links=(),
    )
    defaults.update(kwargs)
    return StageDiagnosis(stage=stage, health=health, **defaults)


def context(plan, diagnoses, *, mode=None, replanner=None, slots=None,
            estimates=None, network=None, state_mb=10.0, config=None):
    est = estimates or {
        name: StageEstimate(name, 1000.0, 10.0) for name in plan.stages
    }
    return PolicyContext(
        plan=plan,
        diagnoses=diagnoses,
        estimates=est,
        network=network or StubNetwork(),
        available_slots=slots or {"edge-x": 2, "dc-1": 6, "dc-2": 8},
        state_mb_at=lambda stage, site: state_mb,
        source_generation_eps={"src": 2000.0},
        config=config or WaspConfig.paper_defaults(),
        replanner=replanner,
        mode=mode or PolicyMode.wasp(),
    )


class TestHealthyAndModes:
    def test_healthy_stage_no_action(self):
        plan = stateful_plan()
        ctx = context(
            plan, {"agg": diagnosis_for("agg", Health.HEALTHY)}
        )
        assert AdaptationPolicy().decide(ctx) == []

    def test_missing_diagnosis_skipped(self):
        plan = stateful_plan()
        assert AdaptationPolicy().decide(context(plan, {})) == []

    def test_policy_modes(self):
        assert PolicyMode.reassign_only() == PolicyMode(True, False, False)
        assert PolicyMode.scale_only() == PolicyMode(True, True, False)
        assert PolicyMode.replan_only() == PolicyMode(False, False, True)


class TestComputeBound:
    def test_scale_up_prefers_local_slots(self):
        """Figure 6: compute bottleneck -> scale up within the site."""
        plan = stateful_plan()
        ctx = context(
            plan,
            {
                "agg": diagnosis_for(
                    "agg",
                    Health.COMPUTE_BOUND,
                    expected_input_eps=60_000.0,
                    processing_capacity_eps=40_000.0,
                    utilization=1.0,
                )
            },
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        action = actions[0]
        assert isinstance(action, ScaleAction)
        assert action.kind is ActionKind.SCALE_UP
        assert action.new_assignment.get("dc-1", 0) >= 2

    def test_scale_up_goes_remote_when_local_full(self):
        plan = stateful_plan()
        ctx = context(
            plan,
            {
                "agg": diagnosis_for(
                    "agg",
                    Health.COMPUTE_BOUND,
                    expected_input_eps=60_000.0,
                    processing_capacity_eps=40_000.0,
                )
            },
            slots={"edge-x": 0, "dc-1": 0, "dc-2": 4},
        )
        actions = AdaptationPolicy().decide(ctx)
        action = actions[0]
        assert action.kind is ActionKind.SCALE_OUT
        assert "dc-2" in action.new_assignment

    def test_no_slots_anywhere_no_action(self):
        plan = stateful_plan()
        ctx = context(
            plan,
            {
                "agg": diagnosis_for(
                    "agg",
                    Health.COMPUTE_BOUND,
                    expected_input_eps=60_000.0,
                )
            },
            slots={"edge-x": 0, "dc-1": 0, "dc-2": 0},
        )
        assert AdaptationPolicy().decide(ctx) == []


class TestNetworkBound:
    def constrained(self, expected_flow=8000.0, capacity=4000.0):
        return diagnosis_for(
            "agg",
            Health.NETWORK_BOUND,
            constrained_links=(
                LinkPressure(
                    src_site="edge-x",
                    dst_site="dc-1",
                    backlog_events=50_000.0,
                    backlog_growth=10_000.0,
                    expected_flow_eps=expected_flow,
                    capacity_eps=capacity,
                ),
            ),
        )

    def test_stateful_tries_reassign_first(self):
        """Figure 6: network bottleneck + stateful -> re-assign."""
        plan = stateful_plan()
        network = StubNetwork(
            bandwidth={("edge-x", "dc-1"): 0.5, ("edge-x", "dc-2"): 50.0}
        )
        estimates = {
            "src": StageEstimate("src", 2000.0, 1000.0),
            "agg": StageEstimate("agg", 1000.0, 10.0),
            "out": StageEstimate("out", 10.0, 10.0),
        }
        ctx = context(
            plan, {"agg": self.constrained()},
            network=network, estimates=estimates,
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        assert isinstance(actions[0], ReassignAction)
        # The constrained destination is abandoned; the solver may pick
        # any feasible site (co-locating at the source is optimal here).
        assert "dc-1" not in actions[0].new_assignment

    def test_scale_out_when_no_single_placement_fits(self):
        """Section 8.4: when no alternative link can carry the whole
        stream, scale out across sites instead."""
        plan = stateful_plan()
        # Both candidate links are too weak for the whole flow, but two
        # half-flows fit.
        network = StubNetwork(
            bandwidth={
                ("edge-x", "dc-1"): 0.5,
                ("edge-x", "dc-2"): 0.5,
            },
            default_bw=0.5,
        )
        estimates = {
            "src": StageEstimate("src", 2000.0, 1000.0),
            "agg": StageEstimate("agg", 1000.0, 10.0),
            "out": StageEstimate("out", 10.0, 10.0),
        }
        ctx = context(
            plan, {"agg": self.constrained()},
            network=network, estimates=estimates,
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        assert actions[0].kind in (ActionKind.SCALE_OUT, ActionKind.SCALE_UP)
        assert sum(actions[0].new_assignment.values()) > 1

    def test_migration_overhead_blocks_reassign(self):
        """t_adapt > t_max falls through to scale-out (Section 6.2)."""
        plan = stateful_plan()
        network = StubNetwork(
            bandwidth={("edge-x", "dc-1"): 0.5}, default_bw=2.0
        )
        estimates = {
            "src": StageEstimate("src", 2000.0, 1000.0),
            "agg": StageEstimate("agg", 1000.0, 10.0),
            "out": StageEstimate("out", 10.0, 10.0),
        }
        config = WaspConfig.paper_defaults().with_overrides(t_max_s=0.5)
        ctx = context(
            plan, {"agg": self.constrained()},
            network=network, estimates=estimates, state_mb=500.0,
            config=config,
        )
        actions = AdaptationPolicy().decide(ctx)
        # 500 MB over ~2 Mbps is far above t_max: reassign is rejected.
        assert all(not isinstance(a, ReassignAction) for a in actions)

    def test_reassign_only_mode_gets_stuck(self):
        """The Section 8.5 Re-assign baseline: no solution -> no action."""
        plan = stateful_plan()
        network = StubNetwork(default_bw=0.1)
        estimates = {
            "src": StageEstimate("src", 2000.0, 1000.0),
            "agg": StageEstimate("agg", 1000.0, 10.0),
            "out": StageEstimate("out", 10.0, 10.0),
        }
        ctx = context(
            plan, {"agg": self.constrained()},
            network=network, estimates=estimates,
            mode=PolicyMode.reassign_only(),
        )
        assert AdaptationPolicy().decide(ctx) == []


class TestWasteful:
    def test_scale_down_one_task(self):
        plan = stateful_plan(agg_sites=("dc-1", "dc-2"))
        ctx = context(
            plan,
            {
                "agg": diagnosis_for(
                    "agg",
                    Health.WASTEFUL,
                    expected_input_eps=1000.0,
                    processing_capacity_eps=80_000.0,
                    utilization=0.1,
                )
            },
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        assert isinstance(actions[0], ScaleDownAction)

    def test_scale_down_blocked_without_bandwidth(self):
        """Section 4.2: remaining sites must have the bandwidth to absorb
        the relayed stream."""
        plan = stateful_plan(agg_sites=("dc-1", "dc-2"))
        network = StubNetwork(default_bw=0.001)
        estimates = {
            "src": StageEstimate("src", 20_000.0, 10_000.0),
            "agg": StageEstimate("agg", 10_000.0, 100.0),
            "out": StageEstimate("out", 100.0, 100.0),
        }
        ctx = context(
            plan,
            {
                "agg": diagnosis_for(
                    "agg",
                    Health.WASTEFUL,
                    expected_input_eps=10_000.0,
                    processing_capacity_eps=80_000.0,
                    utilization=0.2,
                )
            },
            network=network,
            estimates=estimates,
        )
        assert AdaptationPolicy().decide(ctx) == []

    def test_scale_disabled_blocks_scale_down(self):
        plan = stateful_plan(agg_sites=("dc-1", "dc-2"))
        ctx = context(
            plan,
            {"agg": diagnosis_for("agg", Health.WASTEFUL, utilization=0.1)},
            mode=PolicyMode.reassign_only(),
        )
        assert AdaptationPolicy().decide(ctx) == []


class TestReplanPaths:
    @staticmethod
    def stateless_variants():
        def variant(name, relay_bytes):
            ops = [
                source("a", "edge-x", event_bytes=200),
                filter_("fa", selectivity=0.5, event_bytes=relay_bytes),
                union("u", event_bytes=relay_bytes),
                sink("out", splittable=False),
            ]
            return LogicalPlan.from_edges(
                name, ops, [("a", "fa"), ("fa", "u"), ("u", "out")]
            )

        return [variant("v0", 150), variant("v1", 30)]

    def test_stateless_network_bound_prefers_replan(self):
        variants = self.stateless_variants()
        plan = PhysicalPlan(variants[0])
        plan.stage("a").add_task("edge-x")
        plan.stage("u").add_task("dc-1")
        plan.stage("out").add_task("dc-1")
        diag = diagnosis_for(
            "u",
            Health.NETWORK_BOUND,
            constrained_links=(
                LinkPressure("edge-x", "dc-1", 10_000.0, 1_000.0,
                             5_000.0, 2_000.0),
            ),
        )
        diag = StageDiagnosis(
            stage="u", health=Health.NETWORK_BOUND,
            expected_input_eps=diag.expected_input_eps,
            processing_capacity_eps=diag.processing_capacity_eps,
            utilization=diag.utilization,
            input_backlog=diag.input_backlog,
            input_backlog_growth=diag.input_backlog_growth,
            constrained_links=diag.constrained_links,
        )
        est = {
            "a": StageEstimate("a", 10_000.0, 5_000.0),
            "u": StageEstimate("u", 5_000.0, 5_000.0),
            "out": StageEstimate("out", 5_000.0, 5_000.0),
        }
        ctx = PolicyContext(
            plan=plan,
            diagnoses={"u": diag},
            estimates=est,
            network=StubNetwork(default_bw=8.0),
            available_slots={"edge-x": 0, "dc-1": 6, "dc-2": 8},
            state_mb_at=lambda s, site: 0.0,
            source_generation_eps={"a": 10_000.0},
            config=WaspConfig.paper_defaults(),
            replanner=Replanner(variants),
            mode=PolicyMode.wasp(),
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        assert isinstance(actions[0], ReplanAction)
        assert actions[0].estimate.logical.name == "v1"

    def test_replan_subsumes_other_actions(self):
        """A replan replaces the entire execution: other per-stage actions
        in the same round are dropped."""
        variants = self.stateless_variants()
        plan = PhysicalPlan(variants[0])
        plan.stage("a").add_task("edge-x")
        plan.stage("u").add_task("dc-1")
        plan.stage("out").add_task("dc-1")
        link = LinkPressure("edge-x", "dc-1", 10_000.0, 1_000.0, 5_000.0,
                            2_000.0)
        diagnoses = {
            "u": diagnosis_for("u", Health.NETWORK_BOUND,
                               constrained_links=(link,)),
            "out": diagnosis_for(
                "out", Health.COMPUTE_BOUND, expected_input_eps=60_000.0,
            ),
        }
        est = {
            "a": StageEstimate("a", 10_000.0, 5_000.0),
            "u": StageEstimate("u", 5_000.0, 5_000.0),
            "out": StageEstimate("out", 5_000.0, 5_000.0),
        }
        ctx = PolicyContext(
            plan=plan,
            diagnoses=diagnoses,
            estimates=est,
            network=StubNetwork(default_bw=8.0),
            available_slots={"edge-x": 0, "dc-1": 6, "dc-2": 8},
            state_mb_at=lambda s, site: 0.0,
            source_generation_eps={"a": 10_000.0},
            config=WaspConfig.paper_defaults(),
            replanner=Replanner(variants),
            mode=PolicyMode.wasp(),
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        assert isinstance(actions[0], ReplanAction)


class TestMigrationBudget:
    """Section 6.2: the t_max budget governs every state-moving action."""

    def _net_diag(self):
        link = LinkPressure("edge-x", "dc-1", 50_000.0, 10_000.0,
                            8_000.0, 4_000.0)
        return diagnosis_for(
            "agg", Health.NETWORK_BOUND, constrained_links=(link,)
        )

    def test_scale_out_avoids_slow_destinations(self):
        """With a fast and a slow candidate, the state slice goes to the
        fast one even if the slow one is latency-closer."""
        plan = stateful_plan()
        network = StubNetwork(
            bandwidth={
                ("edge-x", "dc-1"): 0.5,   # constrained inbound link
                ("dc-1", "dc-2"): 100.0,   # fast state path
                ("dc-1", "edge-x"): 0.2,   # terrible state path
            },
            latency={("dc-1", "edge-x"): 1.0, ("dc-1", "dc-2"): 200.0},
            default_bw=50.0,
        )
        estimates = {
            "src": StageEstimate("src", 2000.0, 1000.0),
            "agg": StageEstimate("agg", 1000.0, 10.0),
            "out": StageEstimate("out", 10.0, 10.0),
        }
        config = WaspConfig.paper_defaults().with_overrides(t_max_s=30.0)
        ctx = context(
            plan, {"agg": self._net_diag()},
            network=network, estimates=estimates, state_mb=200.0,
            config=config,
            slots={"edge-x": 2, "dc-1": 6, "dc-2": 8},
        )
        actions = AdaptationPolicy().decide(ctx)
        scale_actions = [a for a in actions if isinstance(a, ScaleAction)]
        if scale_actions:
            # 100 MB slice over 0.2 Mbps = ~4000 s >> t_max: edge-x must
            # not receive a new stateful task.
            assert "edge-x" not in scale_actions[0].new_assignment

    def test_scale_out_last_resort_waives_budget(self):
        """When no destination meets t_max, scaling still happens (long
        migration beats unbounded queue growth)."""
        plan = stateful_plan()
        network = StubNetwork(default_bw=0.5)
        estimates = {
            "src": StageEstimate("src", 2000.0, 1000.0),
            "agg": StageEstimate("agg", 1000.0, 10.0),
            "out": StageEstimate("out", 10.0, 10.0),
        }
        ctx = context(
            plan, {"agg": self._net_diag()},
            network=network, estimates=estimates, state_mb=100.0,
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        assert "waived" in actions[0].reason

    def test_scale_down_blocked_by_expensive_merge(self):
        """Scale-down is optional: never worth a long state merge."""
        plan = stateful_plan(agg_sites=("dc-1", "dc-2"))
        network = StubNetwork(default_bw=0.1)  # 500 MB merge would take ages
        estimates = {
            "src": StageEstimate("src", 200.0, 100.0),
            "agg": StageEstimate("agg", 100.0, 1.0),
            "out": StageEstimate("out", 1.0, 1.0),
        }
        ctx = context(
            plan,
            {
                "agg": diagnosis_for(
                    "agg", Health.WASTEFUL,
                    expected_input_eps=100.0,
                    processing_capacity_eps=80_000.0,
                    utilization=0.01,
                )
            },
            network=network, estimates=estimates, state_mb=500.0,
        )
        assert AdaptationPolicy().decide(ctx) == []

    def test_scale_down_allowed_with_cheap_merge(self):
        plan = stateful_plan(agg_sites=("dc-1", "dc-2"))
        network = StubNetwork(default_bw=1000.0)
        estimates = {
            "src": StageEstimate("src", 200.0, 100.0),
            "agg": StageEstimate("agg", 100.0, 1.0),
            "out": StageEstimate("out", 1.0, 1.0),
        }
        ctx = context(
            plan,
            {
                "agg": diagnosis_for(
                    "agg", Health.WASTEFUL,
                    expected_input_eps=100.0,
                    processing_capacity_eps=80_000.0,
                    utilization=0.01,
                )
            },
            network=network, estimates=estimates, state_mb=10.0,
        )
        actions = AdaptationPolicy().decide(ctx)
        assert len(actions) == 1
        assert isinstance(actions[0], ScaleDownAction)

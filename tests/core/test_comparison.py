"""Tests for repro.core.comparison - Table 2."""

import pytest

from repro.core.comparison import (
    TABLE_2,
    Applicability,
    Granularity,
    Overhead,
    profile,
    render_table,
)


class TestTable2Contents:
    def test_four_techniques(self):
        assert len(TABLE_2) == 4

    def test_reassignment_row(self):
        row = profile("task re-assignment")
        assert row.applicability is Applicability.GENERAL
        assert row.granularity is Granularity.STAGE
        assert row.overhead is Overhead.LOW
        assert not row.quality_reduction

    def test_scaling_row(self):
        row = profile("operator scaling")
        assert row.applicability is Applicability.GENERAL
        assert not row.quality_reduction

    def test_replanning_row(self):
        row = profile("query re-planning")
        assert row.applicability is Applicability.QUERY_SPECIFIC
        assert row.granularity is Granularity.QUERY
        assert row.overhead is Overhead.HIGH
        assert not row.quality_reduction

    def test_degradation_is_the_only_quality_reducer(self):
        reducers = [row for row in TABLE_2 if row.quality_reduction]
        assert [r.technique for r in reducers] == ["Data Degradation"]

    def test_only_replanning_has_query_granularity(self):
        rows = [r for r in TABLE_2 if r.granularity is Granularity.QUERY]
        assert [r.technique for r in rows] == ["Query Re-Planning"]

    def test_unknown_technique_rejected(self):
        with pytest.raises(KeyError):
            profile("magic")

    def test_lookup_case_insensitive(self):
        assert profile("TASK").technique == "Task Re-Assignment"


class TestRendering:
    def test_render_contains_all_rows(self):
        text = render_table()
        for row in TABLE_2:
            assert row.technique in text

    def test_render_has_header(self):
        assert "Quality reduction" in render_table()

    def test_render_aligned(self):
        lines = render_table().splitlines()
        assert len({len(line) for line in lines[:2]}) == 1

"""Tests for repro.core.longterm - background re-planning (Section 6.2)."""

import pytest

from repro.baselines.variants import wasp_long_term
from repro.core.longterm import (
    LongTermConfig,
    LongTermPlanner,
    OracleForecaster,
    SeasonalNaiveForecaster,
)
from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentRun
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.base import ShapedWorkload
from repro.workloads.queries import topk_topics


class TestForecasters:
    def test_oracle_reads_workload(self):
        workload = ShapedWorkload({"a": 100.0, "b": 200.0})
        oracle = OracleForecaster(workload, ["a", "b"])
        assert oracle.forecast(0.0) == {"a": 100.0, "b": 200.0}

    def test_seasonal_naive_repeats_last_season(self):
        forecaster = SeasonalNaiveForecaster(season_s=100.0)
        forecaster.observe(10.0, {"a": 1.0})
        forecaster.observe(50.0, {"a": 5.0})
        forecaster.observe(110.0, {"a": 11.0})
        # t=150 minus one season = t=50 -> the 5.0 observation.
        assert forecaster.forecast(150.0) == {"a": 5.0}

    def test_seasonal_naive_fallback_before_full_season(self):
        forecaster = SeasonalNaiveForecaster(season_s=1000.0)
        forecaster.observe(10.0, {"a": 1.0})
        assert forecaster.forecast(20.0) == {"a": 1.0}

    def test_seasonal_naive_empty(self):
        assert SeasonalNaiveForecaster(10.0).forecast(100.0) == {}

    def test_seasonal_naive_rejects_stale_observations(self):
        forecaster = SeasonalNaiveForecaster(season_s=10.0)
        forecaster.observe(10.0, {"a": 1.0})
        forecaster.observe(5.0, {"a": 99.0})  # out of order: ignored
        assert forecaster.forecast(20.0) == {"a": 1.0}

    def test_invalid_season_rejected(self):
        with pytest.raises(ConfigurationError):
            SeasonalNaiveForecaster(0.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            LongTermConfig(period_s=0.0)


class TestBackgroundLoop:
    def make_run(self, seed=42):
        rngs = RngRegistry(seed)
        topo = paper_testbed(rngs.stream("topology"))
        query = topk_topics(topo, rngs.stream("query"))
        return ExperimentRun(topo, query, wasp_long_term(), rngs=rngs)

    def test_harness_attaches_planner(self):
        run = self.make_run()
        assert run.long_term is not None

    def test_no_replan_without_clear_improvement(self):
        """Hysteresis: a stable world never triggers proactive churn."""
        run = self.make_run()
        run.run(30)
        record = run.long_term.background_round(30.0)
        # Either nothing (plan already optimal for the forecast) or one
        # clearly-better plan; never an error.
        assert record is None or record.kind.value == "re-plan"

    def test_skips_while_transitioning(self):
        run = self.make_run()
        run.run(10)
        stage = next(
            s for s in run.runtime.plan.topological_stages()
            if not s.is_source
        )
        run.runtime.suspend_stage(stage.name, until_s=1_000.0)
        assert run.long_term.background_round(20.0) is None

    def test_runs_to_completion_with_background_loop(self):
        """The loop coexists with the reactive controller end-to-end."""
        run = self.make_run()
        recorder = run.run(700)
        assert recorder.processed_fraction() == 1.0
        assert recorder.mean_delay() < 5.0

"""Tests for repro.core.migration - network-aware state migration."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.migration import (
    MigrationPlan,
    MigrationStrategy,
    Transfer,
    estimate_transition_s,
    plan_migration,
    rebalance_transfers,
)
from repro.errors import MigrationError


def bandwidth_table(table, default=10.0):
    def lookup(src, dst):
        return table.get((src, dst), default)

    return lookup


class TestTransfer:
    def test_duration(self):
        transfer = Transfer("agg", "a", "b", size_mb=60.0, bandwidth_mbps=12.0)
        assert transfer.duration_s == pytest.approx(40.0)  # 480 Mb / 12

    def test_zero_size_is_instant(self):
        assert Transfer("agg", "a", "b", 0.0, 1.0).duration_s == 0.0

    def test_zero_bandwidth_is_infinite(self):
        assert math.isinf(Transfer("agg", "a", "b", 1.0, 0.0).duration_s)


class TestMinmaxMapping:
    def test_single_partition_best_link(self):
        bw = bandwidth_table({("a", "x"): 1.0, ("a", "y"): 100.0})
        plan = plan_migration(
            "agg", {"a": 60.0}, ["x", "y"], bw,
            strategy=MigrationStrategy.WASP,
        )
        assert plan.transfers[0].to_site == "y"

    def test_minmax_is_optimal_versus_bruteforce(self):
        """WASP's mapping must achieve the brute-force minmax optimum."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            sources = {f"s{i}": float(rng.uniform(10, 200)) for i in range(4)}
            destinations = [f"d{i}" for i in range(4)]
            table = {
                (s, d): float(rng.uniform(1, 100))
                for s in sources
                for d in destinations
            }
            bw = bandwidth_table(table)
            plan = plan_migration(
                "agg", sources, destinations, bw,
                strategy=MigrationStrategy.WASP,
            )
            best = min(
                max(
                    sources[s] * 8.0 / table[(s, destinations[j])]
                    for s, j in zip(sorted(sources), perm)
                )
                for perm in itertools.permutations(range(4))
            )
            assert plan.transition_s == pytest.approx(best)

    def test_distant_is_worst_mapping(self):
        bw = bandwidth_table({("a", "x"): 1.0, ("a", "y"): 100.0})
        plan = plan_migration(
            "agg", {"a": 60.0}, ["x", "y"], bw,
            strategy=MigrationStrategy.DISTANT,
        )
        assert plan.transfers[0].to_site == "x"

    def test_random_requires_rng(self):
        bw = bandwidth_table({})
        with pytest.raises(MigrationError):
            plan_migration(
                "agg", {"a": 1.0}, ["x"], bw,
                strategy=MigrationStrategy.RANDOM,
            )

    def test_random_uses_rng(self):
        bw = bandwidth_table({})
        plan = plan_migration(
            "agg", {"a": 1.0}, ["x", "y"], bw,
            strategy=MigrationStrategy.RANDOM,
            rng=np.random.default_rng(0),
        )
        assert plan.transfers[0].to_site in ("x", "y")

    def test_none_abandons_state(self):
        plan = plan_migration(
            "agg", {"a": 60.0}, ["x"], bandwidth_table({}),
            strategy=MigrationStrategy.NONE,
        )
        assert plan.transfers == ()
        assert plan.state_abandoned_mb == 60.0
        assert plan.transition_s == 0.0

    def test_insufficient_destinations_rejected(self):
        with pytest.raises(MigrationError):
            plan_migration(
                "agg", {"a": 1.0, "b": 1.0}, ["x"], bandwidth_table({})
            )

    def test_empty_migration(self):
        plan = plan_migration("agg", {}, ["x"], bandwidth_table({}))
        assert plan.transition_s == 0.0

    def test_large_instance_uses_greedy(self):
        sources = {f"s{i}": 10.0 for i in range(9)}
        destinations = [f"d{i}" for i in range(9)]
        plan = plan_migration(
            "agg", sources, destinations, bandwidth_table({}, default=10.0)
        )
        assert len(plan.transfers) == 9

    def test_total_mb(self):
        plan = plan_migration(
            "agg", {"a": 30.0, "b": 20.0}, ["x", "y"], bandwidth_table({})
        )
        assert plan.total_mb == pytest.approx(50.0)


class TestTransitionEstimate:
    def test_matches_wasp_plan(self):
        bw = bandwidth_table({("a", "x"): 10.0})
        estimate = estimate_transition_s("agg", {"a": 60.0}, ["x"], bw)
        assert estimate == pytest.approx(48.0)

    def test_zero_without_state(self):
        assert estimate_transition_s("agg", {}, ["x"], bandwidth_table({})) == 0

    def test_infinite_without_destinations(self):
        assert math.isinf(
            estimate_transition_s("agg", {"a": 1.0}, [], bandwidth_table({}))
        )


class TestRebalance:
    def test_scale_out_splits_state(self):
        """Partitioning: each new site pulls |state|/p' over its own link."""
        plan = rebalance_transfers(
            "agg",
            {"a": 90.0},
            {"a": 30.0, "b": 30.0, "c": 30.0},
            bandwidth_table({}, default=10.0),
        )
        assert plan.total_mb == pytest.approx(60.0)
        assert {t.to_site for t in plan.transfers} == {"b", "c"}
        # The slowest transfer moves 30 MB, not the full 90.
        assert plan.transition_s == pytest.approx(24.0)

    def test_partitioning_reduces_transition(self):
        """Section 8.7.2's core claim."""
        bw = bandwidth_table({}, default=10.0)
        whole = rebalance_transfers("agg", {"a": 90.0}, {"b": 90.0}, bw)
        split = rebalance_transfers(
            "agg", {"a": 90.0}, {"b": 30.0, "c": 30.0, "d": 30.0}, bw
        )
        assert split.transition_s < whole.transition_s

    def test_scale_down_merges_state(self):
        plan = rebalance_transfers(
            "agg",
            {"a": 30.0, "b": 30.0},
            {"a": 60.0},
            bandwidth_table({}, default=10.0),
        )
        assert plan.total_mb == pytest.approx(30.0)
        assert plan.transfers[0].from_site == "b"

    def test_wasp_prefers_fast_destination(self):
        bw = bandwidth_table({("a", "b"): 100.0, ("a", "c"): 1.0})
        plan = rebalance_transfers(
            "agg", {"a": 60.0}, {"b": 30.0, "c": 30.0}, bw,
            strategy=MigrationStrategy.WASP,
        )
        assert plan.transfers[0].to_site == "b"

    def test_none_strategy_abandons(self):
        plan = rebalance_transfers(
            "agg", {"a": 60.0}, {"b": 60.0}, bandwidth_table({}),
            strategy=MigrationStrategy.NONE,
        )
        assert plan.state_abandoned_mb == pytest.approx(60.0)

    def test_noop_when_layout_unchanged(self):
        plan = rebalance_transfers(
            "agg", {"a": 60.0}, {"a": 60.0}, bandwidth_table({})
        )
        assert plan.transfers == ()

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0.0, max_value=500.0),
            min_size=1,
        ),
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.floats(min_value=0.0, max_value=500.0),
            min_size=1,
        ),
    )
    @settings(max_examples=100)
    def test_transfers_conserve_mass(self, before, target):
        """Whatever the layouts, shipped volume equals total deficit volume
        (bounded by the total excess)."""
        plan = rebalance_transfers(
            "agg", before, target, bandwidth_table({}, default=10.0)
        )
        eps = 1e-6
        excess = sum(
            max(0.0, before.get(s, 0.0) - target.get(s, 0.0))
            for s in set(before) | set(target)
        )
        deficit = sum(
            max(0.0, target.get(s, 0.0) - before.get(s, 0.0))
            for s in set(before) | set(target)
        )
        assert plan.total_mb <= excess + eps
        assert plan.total_mb == pytest.approx(min(excess, deficit), abs=1e-4)


class TestZeroBandwidthRejection:
    """A collapsed link must surface as MigrationError, never as a silent
    infinite transfer baked into the minmax / overhead estimate."""

    def test_plan_migration_rejects_dead_only_link(self):
        bw = bandwidth_table({("a", "x"): 0.0}, default=0.0)
        with pytest.raises(MigrationError):
            plan_migration("agg", {"a": 10.0}, ["x"], bw)

    def test_plan_migration_routes_around_dead_link(self):
        """With a live alternative the minmax search avoids the dead pair."""
        bw = bandwidth_table({("a", "x"): 0.0, ("a", "y"): 10.0}, default=0.0)
        plan = plan_migration("agg", {"a": 10.0}, ["x", "y"], bw)
        assert plan.transfers[0].to_site == "y"
        assert math.isfinite(plan.transition_s)

    def test_random_strategy_rejects_dead_pick(self):
        bw = bandwidth_table({}, default=0.0)
        with pytest.raises(MigrationError):
            plan_migration(
                "agg", {"a": 10.0}, ["x"], bw,
                strategy=MigrationStrategy.RANDOM,
                rng=np.random.default_rng(0),
            )

    def test_greedy_large_instance_rejects_dead_links(self):
        moved_out = {f"s{i}": 10.0 for i in range(9)}  # > 7: greedy path
        moved_in = [f"d{i}" for i in range(9)]
        with pytest.raises(MigrationError):
            plan_migration(
                "agg", moved_out, moved_in, bandwidth_table({}, default=0.0)
            )

    def test_rebalance_rejects_zero_bandwidth(self):
        with pytest.raises(MigrationError):
            rebalance_transfers(
                "agg", {"a": 60.0}, {"b": 60.0},
                bandwidth_table({}, default=0.0),
            )

    def test_rebalance_none_strategy_unaffected(self):
        """Abandoning state needs no bandwidth, so NONE still succeeds."""
        plan = rebalance_transfers(
            "agg", {"a": 60.0}, {"b": 60.0},
            bandwidth_table({}, default=0.0),
            strategy=MigrationStrategy.NONE,
        )
        assert plan.state_abandoned_mb == pytest.approx(60.0)

    def test_estimate_maps_dead_links_to_inf(self):
        """The policy's t_adapt estimate degrades to inf (rejected by the
        t_max check) rather than raising out of the decision loop."""
        estimate = estimate_transition_s(
            "agg", {"a": 10.0}, ["x"], bandwidth_table({}, default=0.0)
        )
        assert math.isinf(estimate)

"""Tests for repro.engine.checkpoint - localized checkpointing."""

import math

import pytest

from repro.engine.checkpoint import CheckpointCoordinator
from repro.engine.state import StateStore
from repro.errors import CheckpointError


@pytest.fixture
def store():
    s = StateStore()
    s.initialize_stage("agg", 60.0, ["a", "b"])
    return s


class TestCheckpointing:
    def test_snapshots_every_partition_locally(self, store):
        coordinator = CheckpointCoordinator(store, interval_s=30.0)
        records = coordinator.checkpoint_all(10.0)
        assert {(r.stage_name, r.site) for r in records} == {
            ("agg", "a"),
            ("agg", "b"),
        }
        assert all(r.size_mb == pytest.approx(30.0) for r in records)

    def test_record_lookup(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(10.0)
        record = coordinator.record("agg", "a")
        assert record is not None and record.taken_at_s == 10.0

    def test_maybe_checkpoint_respects_interval(self, store):
        coordinator = CheckpointCoordinator(store, interval_s=30.0)
        assert coordinator.maybe_checkpoint(30.0)
        assert not coordinator.maybe_checkpoint(45.0)
        assert coordinator.maybe_checkpoint(60.0)

    def test_invalid_interval_rejected(self, store):
        with pytest.raises(CheckpointError):
            CheckpointCoordinator(store, interval_s=0.0)

    def test_last_checkpoint_tracked(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(42.0)
        assert coordinator.last_checkpoint_s == 42.0

    def test_two_partitions_same_site_aggregate(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a", "a"])
        coordinator = CheckpointCoordinator(store)
        records = coordinator.checkpoint_all(0.0)
        assert len(records) == 1
        assert records[0].size_mb == pytest.approx(60.0)


class TestMigrationSupport:
    def test_migration_mb_uses_live_partition(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(0.0)
        store.set_total_mb("agg", 120.0)  # state grew since the snapshot
        assert coordinator.migration_mb("agg", "a") == pytest.approx(60.0)

    def test_staleness(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(10.0)
        assert coordinator.staleness_s("agg", "a", 25.0) == pytest.approx(15.0)

    def test_staleness_infinite_without_snapshot(self, store):
        coordinator = CheckpointCoordinator(store)
        assert math.isinf(coordinator.staleness_s("agg", "a", 0.0))

    def test_forget_site(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(0.0)
        coordinator.forget_site("agg", "a")
        assert coordinator.record("agg", "a") is None
        assert coordinator.record("agg", "b") is not None


class TestSkipSites:
    def test_skipped_site_keeps_its_stale_snapshot(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(10.0)
        coordinator.checkpoint_all(40.0, skip_sites={"a"})
        # "a" failed: its record stays at t=10, "b" advances to t=40.
        assert coordinator.record("agg", "a").taken_at_s == 10.0
        assert coordinator.record("agg", "b").taken_at_s == 40.0

    def test_skipped_site_without_prior_snapshot_has_none(self, store):
        coordinator = CheckpointCoordinator(store)
        records = coordinator.checkpoint_all(10.0, skip_sites={"a"})
        assert {r.site for r in records} == {"b"}
        assert coordinator.record("agg", "a") is None
        assert math.isinf(coordinator.staleness_s("agg", "a", 10.0))

    def test_maybe_checkpoint_forwards_skips(self, store):
        coordinator = CheckpointCoordinator(store, interval_s=30.0)
        coordinator.maybe_checkpoint(30.0, skip_sites={"b"})
        assert coordinator.record("agg", "a") is not None
        assert coordinator.record("agg", "b") is None


class TestCheckpointLossAndRollback:
    def test_forget_all_at_site(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a", "b"])
        store.initialize_stage("join", 20.0, ["a"])
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(10.0)
        lost = coordinator.forget_all_at_site("a")
        assert lost == ["agg", "join"]
        assert coordinator.record("agg", "a") is None
        assert coordinator.record("join", "a") is None
        assert coordinator.record("agg", "b") is not None

    def test_forget_all_at_empty_site_returns_nothing(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(10.0)
        assert coordinator.forget_all_at_site("zzz") == []

    def test_snapshot_restore_roundtrip(self, store):
        coordinator = CheckpointCoordinator(store)
        coordinator.checkpoint_all(10.0)
        snapshot = coordinator.snapshot_records()
        coordinator.forget_all_at_site("a")
        coordinator.checkpoint_all(50.0, skip_sites={"a"})
        coordinator.restore_records(snapshot)
        assert coordinator.record("agg", "a").taken_at_s == 10.0
        assert coordinator.record("agg", "b").taken_at_s == 10.0

"""Tests for repro.engine.state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.state import StatePartition, StateStore
from repro.errors import StateError


class TestInitialization:
    def test_balanced_partitions(self):
        store = StateStore()
        store.initialize_stage("agg", 90.0, ["a", "b", "c"])
        assert store.total_mb("agg") == pytest.approx(90.0)
        assert all(
            p.size_mb == pytest.approx(30.0) for p in store.partitions("agg")
        )

    def test_empty_task_list(self):
        store = StateStore()
        store.initialize_stage("agg", 90.0, [])
        assert store.partitions("agg") == []

    def test_negative_total_rejected(self):
        with pytest.raises(StateError):
            StateStore().initialize_stage("agg", -1.0, ["a"])

    def test_negative_partition_rejected(self):
        with pytest.raises(StateError):
            StatePartition("agg", "a", -1.0)

    def test_duplicate_sites_allowed(self):
        """Two tasks at the same site hold two partitions there."""
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a", "a", "b"])
        assert store.mb_at_site("agg", "a") == pytest.approx(40.0)


class TestQueries:
    def test_sites(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["b", "a"])
        assert sorted(store.sites("agg")) == ["a", "b"]

    def test_mb_at_site_zero_for_absent(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a"])
        assert store.mb_at_site("agg", "zzz") == 0.0

    def test_stage_names_sorted(self):
        store = StateStore()
        store.initialize_stage("z", 1.0, ["a"])
        store.initialize_stage("a", 1.0, ["a"])
        assert store.stage_names() == ["a", "z"]

    def test_unknown_stage_total_zero(self):
        assert StateStore().total_mb("nope") == 0.0


class TestMutations:
    def test_move_partition(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a", "b"])
        store.move_partition("agg", "a", "c")
        assert store.mb_at_site("agg", "c") == pytest.approx(30.0)
        assert store.mb_at_site("agg", "a") == 0.0

    def test_move_missing_partition_rejected(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a"])
        with pytest.raises(StateError):
            store.move_partition("agg", "zzz", "c")

    def test_rebalance_preserves_total(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a"])
        store.rebalance("agg", ["a", "b", "c"])
        assert store.total_mb("agg") == pytest.approx(60.0)
        assert len(store.partitions("agg")) == 3

    def test_set_total_mb(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a", "b"])
        store.set_total_mb("agg", 120.0)
        assert store.mb_at_site("agg", "a") == pytest.approx(60.0)

    def test_set_total_on_empty_rejected(self):
        with pytest.raises(StateError):
            StateStore().set_total_mb("agg", 10.0)

    def test_drop_stage(self):
        store = StateStore()
        store.initialize_stage("agg", 60.0, ["a"])
        store.drop_stage("agg")
        assert store.total_mb("agg") == 0.0

    def test_drop_missing_stage_is_noop(self):
        StateStore().drop_stage("nope")


class TestInvariants:
    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=8),
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=8),
    )
    def test_rebalance_conserves_mass(self, total, sites_before, sites_after):
        store = StateStore()
        store.initialize_stage("s", total, sites_before)
        store.rebalance("s", sites_after)
        assert store.total_mb("s") == pytest.approx(total)
        assert len(store.partitions("s")) == len(sites_after)

    @given(
        st.floats(min_value=0.1, max_value=1e4),
        st.integers(min_value=1, max_value=16),
    )
    def test_partitions_always_balanced(self, total, n_tasks):
        store = StateStore()
        store.initialize_stage("s", total, [f"site-{i}" for i in range(n_tasks)])
        sizes = [p.size_mb for p in store.partitions("s")]
        assert max(sizes) - min(sizes) < 1e-9

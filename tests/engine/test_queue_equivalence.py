"""Randomized equivalence: the optimized FluidQueue vs reference semantics.

The hot-path rewrite (in-place fused ops, copy-on-write sharing, reused
pop buffers) must be *behaviour-preserving*: every operation has to leave
bit-identical counts, parcel lists and return values compared to the
original list-building implementation.  ``ReferenceQueue`` below is that
original implementation, kept verbatim; a seeded random op stream drives
both side by side and compares exhaustively after every step.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.queues import (
    FluidQueue,
    Parcel,
    age_parcels,
    parcels_total,
    scale_parcels,
)

SEEDS = [7, 42, 20201207]


class ReferenceQueue:
    """The pre-optimization FluidQueue semantics, list-based and eager."""

    _MERGE_EPS = 1e-6

    def __init__(self) -> None:
        self._parcels: list[Parcel] = []
        self._count = 0.0

    @property
    def count(self) -> float:
        return self._count

    def __bool__(self) -> bool:
        return bool(self._count > 1e-12)

    def push(self, count: float, gen_time_s: float) -> None:
        count = float(count)
        if count == 0:
            return
        parcels = self._parcels
        if (
            parcels
            and abs(parcels[-1].gen_time_s - gen_time_s) < self._MERGE_EPS
        ):
            parcels[-1].count += count
        else:
            parcels.append(Parcel(count, gen_time_s))
        self._count += count

    def push_parcels(self, parcels: list[Parcel]) -> None:
        for parcel in parcels:
            self.push(parcel.count, parcel.gen_time_s)

    def pop(self, count: float) -> list[Parcel]:
        parcels = self._parcels
        remaining = min(count, self._count)
        popped: list[Parcel] = []
        while remaining > 1e-12 and parcels:
            head = parcels[0]
            head_count = head.count
            if head_count <= remaining + 1e-12:
                popped.append(head)
                remaining -= head_count
                self._count -= head_count
                parcels.pop(0)
            else:
                popped.append(Parcel(remaining, head.gen_time_s))
                head.count = head_count - remaining
                self._count -= remaining
                remaining = 0.0
        if self._count < 1e-12:
            self._count = 0.0
            parcels.clear()
        return popped

    def drop_oldest(self, count: float) -> float:
        before = self._count
        self.pop(count)
        return before - self._count

    def drop_older_than(self, cutoff_gen_time_s: float) -> float:
        parcels = self._parcels
        dropped = 0.0
        while parcels and parcels[0].gen_time_s < cutoff_gen_time_s:
            head_count = parcels[0].count
            dropped += head_count
            self._count -= head_count
            parcels.pop(0)
        if self._count < 1e-12:
            self._count = 0.0
            parcels.clear()
        return dropped

    def clear(self) -> float:
        dropped = self._count
        self._parcels.clear()
        self._count = 0.0
        return dropped


def assert_equal_state(fluid: FluidQueue, ref: ReferenceQueue) -> None:
    assert fluid.count == ref.count  # bit-exact, no tolerance
    fluid_parcels = [(p.count, p.gen_time_s) for p in fluid._parcels]
    ref_parcels = [(p.count, p.gen_time_s) for p in ref._parcels]
    assert fluid_parcels == ref_parcels


def random_parcels(rng: random.Random, now: float) -> list[Parcel]:
    return [
        Parcel(rng.uniform(0.0, 50.0), now - rng.uniform(0.0, 30.0))
        for _ in range(rng.randrange(0, 6))
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_randomized_op_stream_matches_reference(seed: int) -> None:
    rng = random.Random(seed)
    fluid, ref = FluidQueue(), ReferenceQueue()
    now = 0.0
    cow_clones: list[FluidQueue] = []
    for step in range(3000):
        now += rng.uniform(0.0, 2.0)
        op = rng.randrange(8)
        if op in (0, 1, 2):  # bias toward pushes so queues stay non-trivial
            count = rng.choice([0.0, rng.uniform(0.0, 200.0)])
            gen = now - rng.uniform(0.0, 5.0)
            fluid.push(count, gen)
            ref.push(count, gen)
        elif op == 3:
            amount = rng.uniform(0.0, 150.0)
            got_ref = ref.pop(amount)
            if rng.random() < 0.5:
                got = fluid.pop(amount)
            else:
                got = []
                total = fluid.pop_into(amount, got)
                assert total == parcels_total(got_ref)
            assert [(p.count, p.gen_time_s) for p in got] == [
                (p.count, p.gen_time_s) for p in got_ref
            ]
        elif op == 4:
            amount = rng.uniform(0.0, 150.0)
            assert fluid.drop_oldest(amount) == ref.drop_oldest(amount)
        elif op == 5:
            cutoff = now - rng.uniform(0.0, 10.0)
            assert fluid.drop_older_than(cutoff) == ref.drop_older_than(
                cutoff
            )
        elif op == 6:
            assert fluid.clear() == ref.clear()
        else:
            # Copy-on-write clones must never disturb the original, no
            # matter how the clone is mutated afterwards.
            clone = fluid.clone_cow()
            if rng.random() < 0.5:
                clone.push(rng.uniform(0.0, 30.0), now)
                clone.pop(rng.uniform(0.0, 60.0))
            cow_clones.append(clone)
        assert_equal_state(fluid, ref)
    assert len(cow_clones) > 10  # the stream actually exercised COW


@pytest.mark.parametrize("seed", SEEDS)
def test_fused_push_variants_match_compositions(seed: int) -> None:
    rng = random.Random(seed)
    now = 0.0
    for _ in range(300):
        now += rng.uniform(0.0, 3.0)
        parcels = random_parcels(rng, now)

        factor = rng.choice([0.0, rng.uniform(0.0, 2.0)])
        fused, composed = FluidQueue(), ReferenceQueue()
        seeded = random_parcels(rng, now)
        fused.push_parcels(seeded)
        composed.push_parcels(seeded)
        scaled = scale_parcels(parcels, factor)
        total = fused.push_scaled(parcels, factor)
        composed.push_parcels(scaled)
        assert total == parcels_total(scaled)
        assert_equal_state(fused, composed)

        age = rng.uniform(0.0, 4.0)
        fused, composed = FluidQueue(), ReferenceQueue()
        fused.push_parcels(seeded)
        composed.push_parcels(seeded)
        fused.push_aged(parcels, age)
        composed.push_parcels(age_parcels(parcels, age))
        assert_equal_state(fused, composed)


def test_clone_cow_restores_exactly_after_mutation() -> None:
    queue = FluidQueue()
    for i in range(20):
        queue.push(10.0 + i, float(i))
    snapshot = queue.clone_cow()
    before = [(p.count, p.gen_time_s) for p in queue._parcels]
    queue.pop(55.0)
    queue.push(3.0, 99.0)
    queue.drop_oldest(7.0)
    restored = snapshot.clone_cow()
    assert [(p.count, p.gen_time_s) for p in restored._parcels] == before
    assert restored.count == sum(c for c, _ in before)
    # The snapshot itself is still intact for a second restore.
    again = snapshot.clone_cow()
    assert [(p.count, p.gen_time_s) for p in again._parcels] == before

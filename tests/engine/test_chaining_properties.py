"""Property-based tests: operator chaining is semantics-preserving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.logical import LogicalPlan
from repro.engine.operators import (
    filter_,
    map_,
    sink,
    source,
    window_aggregate,
)
from repro.engine.physical import PhysicalPlan

chain_specs = st.lists(
    st.tuples(
        st.sampled_from(["filter", "map"]),
        st.floats(min_value=0.05, max_value=1.0),  # selectivity
        st.floats(min_value=0.1, max_value=3.0),  # cost
    ),
    min_size=0,
    max_size=5,
)


def build_linear_plan(specs):
    """source -> [narrow ops] -> window -> sink."""
    ops = [source("src", "site-a", event_bytes=200)]
    edges = []
    prev = "src"
    for i, (kind, sel, cost) in enumerate(specs):
        name = f"op{i}"
        if kind == "filter":
            ops.append(filter_(name, selectivity=sel, cost=cost,
                               event_bytes=100))
        else:
            ops.append(map_(name, selectivity=sel, cost=cost,
                            event_bytes=100))
        edges.append((prev, name))
        prev = name
    ops.append(
        window_aggregate("agg", window_s=10, selectivity=0.1, state_mb=1)
    )
    edges.append((prev, "agg"))
    ops.append(sink("out"))
    edges.append(("agg", "out"))
    return LogicalPlan.from_edges("q", ops, edges)


class TestChainingInvariants:
    @given(chain_specs)
    @settings(max_examples=100)
    def test_chained_selectivity_is_product(self, specs):
        plan = build_linear_plan(specs)
        physical = PhysicalPlan(plan)
        src_stage = physical.stage("src")
        expected = 1.0
        for _, sel, _ in specs:
            expected *= sel
        assert src_stage.selectivity == pytest.approx(expected)

    @given(chain_specs, st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=100)
    def test_stage_rates_invariant_under_chaining(self, specs, rate):
        """Expected rates at the window/sink are identical whether the
        narrow operators run fused or as separate stages."""
        plan = build_linear_plan(specs)
        chained = PhysicalPlan(plan, chaining=True)
        unchained = PhysicalPlan(plan, chaining=False)
        rates_c = chained.expected_stage_rates({"src": rate})
        rates_u = unchained.expected_stage_rates({"src": rate})
        assert rates_c["agg"]["input"] == pytest.approx(
            rates_u["agg"]["input"]
        )
        assert rates_c["out"]["input"] == pytest.approx(
            rates_u["out"]["input"]
        )

    @given(chain_specs)
    @settings(max_examples=100)
    def test_chained_cost_never_exceeds_sum(self, specs):
        """Selectivity discounting: a chained stage's per-ingested-event
        cost is at most the naive sum of operator costs."""
        plan = build_linear_plan(specs)
        physical = PhysicalPlan(plan)
        stage = physical.stage("src")
        naive = sum(op.cost for op in stage.operators)
        assert stage.cost <= naive + 1e-9

    @given(chain_specs)
    @settings(max_examples=50)
    def test_every_operator_lands_in_exactly_one_stage(self, specs):
        plan = build_linear_plan(specs)
        physical = PhysicalPlan(plan)
        seen = []
        for stage in physical.topological_stages():
            seen.extend(op.name for op in stage.operators)
        assert sorted(seen) == sorted(plan.operators)

"""Tests for repro.engine.metrics - the Global Metric Monitor."""

import math

import pytest

from repro.engine.metrics import GlobalMetricMonitor
from repro.engine.runtime import TickReport


def report(t, **kwargs):
    r = TickReport(t_s=t)
    for key, value in kwargs.items():
        setattr(r, key, value)
    return r


class TestAggregation:
    def test_rates_averaged_over_window(self):
        monitor = GlobalMetricMonitor()
        for t in (1.0, 2.0, 3.0, 4.0):
            monitor.observe(
                report(t, processed={"agg": 100.0}, arrived={"agg": 110.0},
                       emitted={"agg": 50.0})
            )
        window = monitor.collect()
        metrics = window.stages["agg"]
        assert metrics.lambda_p == pytest.approx(100.0)
        assert metrics.lambda_i == pytest.approx(110.0)
        assert metrics.lambda_o == pytest.approx(50.0)

    def test_selectivity_from_window(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(
            report(1.0, processed={"agg": 200.0}, emitted={"agg": 50.0})
        )
        assert monitor.collect().stages["agg"].selectivity == pytest.approx(
            0.25
        )

    def test_collect_resets_window(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(report(1.0, processed={"agg": 100.0}))
        monitor.collect()
        assert monitor.pending_ticks == 0
        assert monitor.collect().stages == {}

    def test_empty_collect(self):
        window = GlobalMetricMonitor().collect()
        assert window.offered_eps == 0.0
        assert math.isnan(window.mean_delay_s)

    def test_source_generation_rates(self):
        monitor = GlobalMetricMonitor()
        for t in (1.0, 2.0):
            monitor.observe(
                report(t, offered=200.0, offered_by_source={"src": 200.0})
            )
        window = monitor.collect()
        assert window.source_generation_eps["src"] == pytest.approx(200.0)
        assert window.offered_eps == pytest.approx(200.0)

    def test_mean_delay_weighted(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(
            report(1.0, sink_events=100.0, sink_delay_weighted_s=100.0)
        )
        monitor.observe(
            report(2.0, sink_events=300.0, sink_delay_weighted_s=600.0)
        )
        assert monitor.collect().mean_delay_s == pytest.approx(1.75)

    def test_sink_conversion_applied(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(report(1.0, sink_events=10.0))
        window = monitor.collect(sink_source_equiv=lambda events: events * 100)
        assert window.sink_source_equiv_eps == pytest.approx(1000.0)


class TestBacklogs:
    def test_backlog_growth_last_minus_first(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(report(1.0, input_backlog={("agg", "a"): 100.0}))
        monitor.observe(report(2.0, input_backlog={("agg", "a"): 400.0}))
        metrics = monitor.collect().stages["agg"]
        assert metrics.input_backlog == pytest.approx(400.0)
        assert metrics.input_backlog_growth == pytest.approx(300.0)

    def test_standing_backlog_zero_growth(self):
        monitor = GlobalMetricMonitor()
        for t in (1.0, 2.0):
            monitor.observe(report(t, input_backlog={("agg", "a"): 500.0}))
        metrics = monitor.collect().stages["agg"]
        assert metrics.input_backlog_growth == pytest.approx(0.0)

    def test_net_backlog_keyed_by_link(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(
            report(1.0, net_backlog={("src", "agg", "e1", "d1"): 10.0})
        )
        monitor.observe(
            report(2.0, net_backlog={("src", "agg", "e1", "d1"): 50.0})
        )
        metrics = monitor.collect().stages["agg"]
        assert metrics.net_backlog[("e1", "d1")] == pytest.approx(50.0)
        assert metrics.net_backlog_growth[("e1", "d1")] == pytest.approx(40.0)

    def test_net_inflow_rate(self):
        monitor = GlobalMetricMonitor()
        for t in (1.0, 2.0):
            monitor.observe(
                report(t, net_sent={("src", "agg", "e1", "d1"): 30.0})
            )
        metrics = monitor.collect().stages["agg"]
        assert metrics.net_inflow[("e1", "d1")] == pytest.approx(30.0)

    def test_per_site_processing_and_capacity(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(
            report(
                1.0,
                processed={"agg": 150.0},
                processed_by_site={("agg", "a"): 100.0, ("agg", "b"): 50.0},
                capacity_by_site={("agg", "a"): 200.0, ("agg", "b"): 200.0},
            )
        )
        metrics = monitor.collect().stages["agg"]
        assert metrics.processed_by_site["a"] == pytest.approx(100.0)
        assert metrics.utilization == pytest.approx(150.0 / 400.0)

    def test_utilization_zero_without_capacity(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(report(1.0, processed={"agg": 10.0}))
        assert monitor.collect().stages["agg"].utilization == 0.0


class TestCollectEdgeCases:
    """Degenerate windows the controller can hand the monitor."""

    def test_empty_window_is_zeroed(self):
        monitor = GlobalMetricMonitor()
        window = monitor.collect()
        assert window.stages == {}
        assert window.offered_eps == 0.0
        assert window.sink_source_equiv_eps == 0.0
        assert window.duration_s == 0.0
        assert math.isnan(window.mean_delay_s)

    def test_empty_window_does_not_carry_state(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(report(1.0, processed={"agg": 10.0}))
        monitor.collect()
        window = monitor.collect()  # nothing observed since
        assert window.stages == {}
        assert monitor.pending_ticks == 0

    def test_zero_duration_window_single_report_at_t0(self):
        # One report at t=0: the span falls back to a positive epsilon, so
        # every rate stays finite instead of dividing by zero.
        monitor = GlobalMetricMonitor()
        monitor.observe(report(0.0, offered=100.0, processed={"agg": 50.0}))
        window = monitor.collect()
        assert window.duration_s == 0.0
        assert math.isfinite(window.offered_eps)
        assert math.isfinite(window.stages["agg"].lambda_p)
        assert window.stages["agg"].lambda_p >= 0.0

    def test_zero_duration_window_identical_timestamps(self):
        monitor = GlobalMetricMonitor()
        for _ in range(3):
            monitor.observe(report(5.0, processed={"agg": 30.0}))
        window = monitor.collect()
        assert window.duration_s == 0.0
        assert math.isfinite(window.stages["agg"].lambda_p)

    def test_stage_absent_in_later_tick_still_aggregates(self):
        # A stage undeployed mid-window reports in tick 1 but not tick 2;
        # absent ticks count as zero and the backlog reads the last tick.
        monitor = GlobalMetricMonitor()
        monitor.observe(
            report(
                1.0,
                processed={"agg": 100.0},
                input_backlog={("agg", "a"): 40.0},
            )
        )
        monitor.observe(report(2.0, processed={"other": 10.0}))
        window = monitor.collect()
        metrics = window.stages["agg"]
        assert metrics.lambda_p == pytest.approx(50.0)  # 100 over 2 ticks
        assert metrics.input_backlog == 0.0  # gone from the final tick
        assert metrics.input_backlog_growth == pytest.approx(-40.0)
        assert "other" in window.stages

    def test_stage_appearing_mid_window_aggregates(self):
        monitor = GlobalMetricMonitor()
        monitor.observe(report(1.0, processed={"other": 10.0}))
        monitor.observe(
            report(
                2.0,
                processed={"late": 80.0},
                input_backlog={("late", "b"): 5.0},
            )
        )
        window = monitor.collect()
        metrics = window.stages["late"]
        assert metrics.lambda_p == pytest.approx(40.0)
        assert metrics.input_backlog == pytest.approx(5.0)
        assert metrics.input_backlog_growth == pytest.approx(5.0)

"""Tests for repro.engine.runtime - the fluid-flow engine."""

import math

import pytest

from repro.config import WaspConfig
from repro.engine.logical import LogicalPlan
from repro.engine.operators import (
    filter_,
    sink,
    source,
    window_aggregate,
)
from repro.engine.physical import PhysicalPlan
from repro.engine.runtime import EngineRuntime, WorkloadModel, mbps_to_eps


class ConstantWorkload(WorkloadModel):
    def __init__(self, rates):
        self.rates = dict(rates)
        self.base_rate_eps = self.rates.get  # duck-typed weighting hook

    def generation_eps(self, source_stage, t_s):
        return self.rates.get(source_stage, 0.0)


def build_pipeline(topology, *, rate=1000.0, selectivity=0.5,
                   agg_site="dc-1", event_bytes=100.0, degrade_slo=None,
                   agg_cost=1.0):
    """source(edge-x)+filter -> agg(dc-1) -> sink(dc-1)."""
    ops = [
        source("src", "edge-x", event_bytes=200.0),
        filter_("flt", selectivity=selectivity, event_bytes=event_bytes),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5,
                         cost=agg_cost),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )
    physical = PhysicalPlan(logical)
    physical.stage("src").add_task("edge-x")
    physical.stage("agg").add_task(agg_site)
    physical.stage("out").add_task(agg_site)
    runtime = EngineRuntime(
        topology,
        physical,
        ConstantWorkload({"src": rate}),
        WaspConfig.paper_defaults(),
        degrade_slo_s=degrade_slo,
    )
    return runtime


class TestHealthyFlow:
    def test_conservation_at_steady_state(self, small_topology):
        runtime = build_pipeline(small_topology)
        for _ in range(30):
            report = runtime.tick()
        # 1000 * 0.5 * 0.01 = 5 events/s at the sink.
        assert report.sink_events == pytest.approx(5.0, rel=0.01)
        assert runtime.total_backlog() < 1.0

    def test_delay_includes_link_latency(self, small_topology):
        runtime = build_pipeline(small_topology)
        for _ in range(10):
            report = runtime.tick()
        # 50 ms edge-x -> dc-1 plus the half-tick generation offset.
        assert 0.5 <= report.mean_sink_delay_s() <= 0.7

    def test_offered_tracks_workload(self, small_topology):
        runtime = build_pipeline(small_topology, rate=2500.0)
        report = runtime.tick()
        assert report.offered == pytest.approx(2500.0)
        assert report.offered_by_source["src"] == pytest.approx(2500.0)

    def test_sink_source_equivalents(self, small_topology):
        runtime = build_pipeline(small_topology)
        for _ in range(20):
            report = runtime.tick()
        equiv = runtime.sink_source_equiv(report.sink_events)
        assert equiv == pytest.approx(1000.0, rel=0.02)

    def test_no_sink_events_is_nan_delay(self, small_topology):
        runtime = build_pipeline(small_topology, rate=0.0)
        report = runtime.tick()
        assert math.isnan(report.mean_sink_delay_s())


class TestComputeBottleneck:
    def test_input_queue_grows_when_undersized(self, small_topology):
        # agg capacity: 40_000 / 20 = 2_000 eps < 2_500 eps arriving.
        runtime = build_pipeline(
            small_topology, rate=5000.0, agg_cost=20.0
        )
        for _ in range(30):
            report = runtime.tick()
        assert runtime.input_backlog("agg") > 1000.0
        assert report.input_backlog[("agg", "dc-1")] > 1000.0

    def test_delay_grows_with_backlog(self, small_topology):
        runtime = build_pipeline(small_topology, rate=5000.0, agg_cost=20.0)
        for _ in range(10):
            early = runtime.tick().mean_sink_delay_s()
        for _ in range(50):
            late = runtime.tick().mean_sink_delay_s()
        assert late > early + 5.0


class TestNetworkBottleneck:
    def test_net_queue_grows_on_constrained_link(self, small_topology):
        # 10 Mbps at 100 B/event = 12_500 eps; offer 2x that post-filter.
        flow_eps = mbps_to_eps(10.0, 100.0)
        runtime = build_pipeline(small_topology, rate=flow_eps * 4)
        for _ in range(30):
            report = runtime.tick()
        key = ("src", "agg", "edge-x", "dc-1")
        assert report.net_backlog[key] > 1000.0

    def test_transfer_respects_link_budget(self, small_topology):
        flow_eps = mbps_to_eps(10.0, 100.0)
        runtime = build_pipeline(small_topology, rate=flow_eps * 4)
        for _ in range(10):
            report = runtime.tick()
        key = ("src", "agg", "edge-x", "dc-1")
        assert report.net_sent[key] == pytest.approx(flow_eps, rel=0.01)

    def test_local_flows_unconstrained(self, small_topology):
        """Co-located stages exchange data without WAN involvement."""
        runtime = build_pipeline(small_topology, rate=50_000.0,
                                 agg_site="edge-x")
        for _ in range(10):
            report = runtime.tick()
        assert not report.net_backlog


class TestDegrade:
    def test_drops_late_events(self, small_topology):
        flow_eps = mbps_to_eps(10.0, 100.0)
        runtime = build_pipeline(
            small_topology, rate=flow_eps * 4, degrade_slo=10.0
        )
        total_dropped = 0.0
        for _ in range(60):
            total_dropped += runtime.tick().dropped_source_equiv
        assert total_dropped > 0.0

    def test_keeps_delay_within_slo(self, small_topology):
        flow_eps = mbps_to_eps(10.0, 100.0)
        runtime = build_pipeline(
            small_topology, rate=flow_eps * 4, degrade_slo=10.0
        )
        for _ in range(120):
            report = runtime.tick()
        assert report.mean_sink_delay_s() < 10.5

    def test_drop_accounting_in_source_equivalents(self, small_topology):
        flow_eps = mbps_to_eps(10.0, 100.0)
        rate = flow_eps * 4
        runtime = build_pipeline(small_topology, rate=rate, degrade_slo=10.0)
        dropped = 0.0
        offered = 0.0
        for _ in range(200):
            report = runtime.tick()
            dropped += report.dropped_source_equiv
            offered += report.offered
        # Post-filter the link passes flow_eps of 2*flow_eps: half the
        # surviving events must eventually drop, i.e. ~50% of source rate.
        assert dropped / offered == pytest.approx(0.5, abs=0.1)


class TestSuspension:
    def test_suspended_stage_does_not_process(self, small_topology):
        runtime = build_pipeline(small_topology)
        runtime.suspend_stage("agg", until_s=5.0)
        for _ in range(4):
            report = runtime.tick()
        assert report.processed.get("agg", 0.0) == 0.0
        assert runtime.input_backlog("agg") > 0.0

    def test_resumes_after_transition(self, small_topology):
        runtime = build_pipeline(small_topology)
        runtime.suspend_stage("agg", until_s=5.0)
        for _ in range(30):
            report = runtime.tick()
        assert report.processed["agg"] > 0.0
        assert runtime.total_backlog() < 1.0

    def test_is_suspended(self, small_topology):
        runtime = build_pipeline(small_topology)
        runtime.suspend_stage("agg", until_s=5.0)
        assert runtime.is_suspended("agg")
        for _ in range(6):
            runtime.tick()
        assert not runtime.is_suspended("agg")

    def test_suspension_only_extends(self, small_topology):
        runtime = build_pipeline(small_topology)
        runtime.suspend_stage("agg", until_s=10.0)
        runtime.suspend_stage("agg", until_s=5.0)
        assert runtime.suspended_until("agg") == 10.0


class TestFailure:
    def test_failed_site_stops_processing(self, small_topology):
        runtime = build_pipeline(small_topology)
        for _ in range(5):
            runtime.tick()
        small_topology.site("dc-1").fail()
        for _ in range(5):
            report = runtime.tick()
        assert report.sink_events == 0.0

    def test_events_accumulate_during_failure(self, small_topology):
        runtime = build_pipeline(small_topology)
        small_topology.site("dc-1").fail()
        small_topology.site("edge-x").fail()
        for _ in range(10):
            runtime.tick()
        # External generation continues; everything queues at the source.
        assert runtime.total_backlog() == pytest.approx(10_000.0, rel=0.01)

    def test_recovery_drains_backlog(self, small_topology):
        runtime = build_pipeline(small_topology)
        small_topology.site("dc-1").fail()
        for _ in range(10):
            runtime.tick()
        small_topology.site("dc-1").recover()
        for _ in range(200):
            runtime.tick()
        assert runtime.total_backlog() < 10.0


class TestMutations:
    def test_move_task_queue(self, small_topology):
        runtime = build_pipeline(small_topology, rate=5000.0, agg_cost=20.0)
        for _ in range(10):
            runtime.tick()
        before = runtime.input_backlog("agg", "dc-1")
        runtime.move_task_queue("agg", "dc-1", "dc-2")
        assert runtime.input_backlog("agg", "dc-2") == pytest.approx(before)
        assert runtime.input_backlog("agg", "dc-1") == 0.0

    def test_redirect_flows(self, small_topology):
        flow_eps = mbps_to_eps(10.0, 100.0)
        runtime = build_pipeline(small_topology, rate=flow_eps * 4)
        for _ in range(10):
            runtime.tick()
        runtime.redirect_flows("agg", "dc-1", "dc-2")
        backlog = runtime.net_backlog_for("agg")
        assert ("edge-x", "dc-2") in backlog
        assert ("edge-x", "dc-1") not in backlog

    def test_relay_queue_moves_via_wan(self, small_topology):
        runtime = build_pipeline(small_topology, rate=5000.0, agg_cost=20.0)
        for _ in range(10):
            runtime.tick()
        queued = runtime.input_backlog("agg", "dc-1")
        assert queued > 0
        runtime.relay_queue("agg", "dc-1", "dc-2")
        assert runtime.input_backlog("agg", "dc-1") == 0.0
        # The relayed events are in a WAN queue, not teleported.
        assert runtime.net_backlog_for("agg")[("dc-1", "dc-2")] == (
            pytest.approx(queued)
        )

    def test_rehome_relays_orphaned_input(self, small_topology):
        runtime = build_pipeline(small_topology, rate=5000.0, agg_cost=20.0)
        for _ in range(10):
            runtime.tick()
        stage = runtime.plan.stage("agg")
        stage.remove_task_at("dc-1")
        stage.add_task("dc-2")
        runtime.rehome_to_placement("agg")
        assert runtime.input_backlog("agg", "dc-1") == 0.0


class TestReplayInjection:
    def test_replay_enters_the_input_queue_with_original_age(
        self, small_topology
    ):
        runtime = build_pipeline(small_topology)
        for _ in range(5):
            runtime.tick()
        before = runtime.total_backlog()
        runtime.inject_replay("agg", "dc-1", 400.0, gen_time_s=1.0)
        assert runtime.total_backlog() == pytest.approx(before + 400.0)
        # Replayed events carry their pre-failure generation time, so the
        # delay of whatever drains next reflects the recovery cost (the
        # healthy-flow floor here is ~0.6 s; replay blends in ~5 s ages).
        report = runtime.tick()
        assert report.mean_sink_delay_s() > 1.5

    def test_replay_at_a_source_stage_feeds_generation_queue(
        self, small_topology
    ):
        runtime = build_pipeline(small_topology)
        runtime.inject_replay("src", "edge-x", 100.0, gen_time_s=0.0)
        assert runtime.total_backlog() >= 100.0

    def test_non_positive_replay_is_ignored(self, small_topology):
        runtime = build_pipeline(small_topology)
        before = runtime.total_backlog()
        runtime.inject_replay("agg", "dc-1", 0.0, gen_time_s=0.0)
        runtime.inject_replay("agg", "dc-1", -5.0, gen_time_s=0.0)
        assert runtime.total_backlog() == before


class TestMutationSnapshot:
    def test_rollback_restores_queues_and_suspensions(self, small_topology):
        runtime = build_pipeline(small_topology, rate=60_000.0)
        for _ in range(5):
            runtime.tick()  # builds net/input backlog on the slow link
        snapshot = runtime.mutation_snapshot()
        backlog = runtime.total_backlog()
        runtime.suspend_stage("agg", 99.0)
        runtime.move_task_queue("agg", "dc-1", "dc-2")
        runtime.inject_replay("agg", "dc-2", 1000.0, gen_time_s=0.0)
        runtime.restore_mutation_snapshot(snapshot)
        assert runtime.total_backlog() == pytest.approx(backlog)
        assert not runtime.is_suspended("agg")

    def test_snapshot_is_isolated_from_later_ticks(self, small_topology):
        runtime = build_pipeline(small_topology, rate=60_000.0)
        for _ in range(3):
            runtime.tick()
        snapshot = runtime.mutation_snapshot()
        backlog = runtime.total_backlog()
        for _ in range(5):
            runtime.tick()  # mutates live queues
        runtime.restore_mutation_snapshot(snapshot)
        assert runtime.total_backlog() == pytest.approx(backlog)

"""Tests for repro.engine.physical - stages, chaining, tasks."""

import pytest

from repro.engine.logical import LogicalPlan
from repro.engine.operators import (
    filter_,
    map_,
    sink,
    source,
    union,
    window_aggregate,
)
from repro.engine.physical import PhysicalPlan
from repro.errors import PlanError


def chained_logical():
    ops = [
        source("src", "site-a", event_bytes=200),
        filter_("flt", selectivity=0.5, event_bytes=100),
        map_("mp", event_bytes=100, cost=0.5),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=6,
                         event_bytes=64),
        sink("out"),
    ]
    edges = [("src", "flt"), ("flt", "mp"), ("mp", "agg"), ("agg", "out")]
    return LogicalPlan.from_edges("q", ops, edges)


def fan_in_logical():
    ops = [
        source("a", "site-a"),
        source("b", "site-b"),
        filter_("fa", selectivity=0.5),
        filter_("fb", selectivity=0.5),
        union("u"),
        sink("out"),
    ]
    edges = [("a", "fa"), ("b", "fb"), ("fa", "u"), ("fb", "u"), ("u", "out")]
    return LogicalPlan.from_edges("q", ops, edges)


class TestChaining:
    def test_narrow_ops_chain_into_source(self):
        plan = PhysicalPlan(chained_logical())
        stage = plan.stage("src")
        assert [op.name for op in stage.operators] == ["src", "flt", "mp"]

    def test_window_starts_new_stage(self):
        plan = PhysicalPlan(chained_logical())
        assert "agg" in plan.stages

    def test_stage_count(self):
        plan = PhysicalPlan(chained_logical())
        assert set(plan.stages) == {"src", "agg", "out"}

    def test_chaining_disabled(self):
        plan = PhysicalPlan(chained_logical(), chaining=False)
        assert set(plan.stages) == {"src", "flt", "mp", "agg", "out"}

    def test_fan_in_not_chained(self):
        """A union with two inputs cannot chain into either upstream."""
        plan = PhysicalPlan(fan_in_logical())
        assert "u" in plan.stages

    def test_filters_chain_per_branch(self):
        plan = PhysicalPlan(fan_in_logical())
        assert [op.name for op in plan.stage("a").operators] == ["a", "fa"]

    def test_stage_of_operator(self):
        plan = PhysicalPlan(chained_logical())
        assert plan.stage_of_operator("mp").name == "src"


class TestCombinedProperties:
    def test_combined_selectivity(self):
        plan = PhysicalPlan(chained_logical())
        assert plan.stage("src").selectivity == pytest.approx(0.5)

    def test_combined_cost_discounts_by_survival(self):
        plan = PhysicalPlan(chained_logical())
        # src(0.25) + flt(1.0)*1.0 + mp(0.5)*0.5 = 1.5
        assert plan.stage("src").cost == pytest.approx(0.25 + 1.0 + 0.25)

    def test_output_event_bytes_from_tail(self):
        plan = PhysicalPlan(chained_logical())
        assert plan.stage("src").output_event_bytes == 100.0
        assert plan.stage("agg").output_event_bytes == 64.0

    def test_statefulness_bubbles_up(self):
        plan = PhysicalPlan(chained_logical())
        assert plan.stage("agg").stateful
        assert not plan.stage("src").stateful

    def test_state_mb_sums(self):
        plan = PhysicalPlan(chained_logical())
        assert plan.stage("agg").state_mb == 6.0

    def test_pinned_site(self):
        plan = PhysicalPlan(chained_logical())
        assert plan.stage("src").pinned_site == "site-a"
        assert plan.stage("agg").pinned_site is None

    def test_sink_not_splittable(self):
        plan = PhysicalPlan(chained_logical())
        assert not plan.stage("out").splittable


class TestTasks:
    def test_add_task_assigns_ids(self):
        plan = PhysicalPlan(chained_logical())
        stage = plan.stage("agg")
        t0 = stage.add_task("site-a")
        t1 = stage.add_task("site-b")
        assert t0.task_id != t1.task_id
        assert stage.parallelism == 2

    def test_placement_counts(self):
        plan = PhysicalPlan(chained_logical())
        stage = plan.stage("agg")
        stage.add_task("a")
        stage.add_task("a")
        stage.add_task("b")
        assert stage.placement() == {"a": 2, "b": 1}
        assert stage.sites() == ["a", "b"]

    def test_remove_task_at(self):
        plan = PhysicalPlan(chained_logical())
        stage = plan.stage("agg")
        stage.add_task("a")
        stage.add_task("b")
        stage.remove_task_at("a")
        assert stage.placement() == {"b": 1}

    def test_remove_missing_task_rejected(self):
        plan = PhysicalPlan(chained_logical())
        with pytest.raises(PlanError):
            plan.stage("agg").remove_task_at("nowhere")

    def test_state_per_task_balanced(self):
        plan = PhysicalPlan(chained_logical())
        stage = plan.stage("agg")
        stage.add_task("a")
        stage.add_task("b")
        assert stage.state_mb_per_task() == pytest.approx(3.0)

    def test_state_per_task_zero_for_stateless(self):
        plan = PhysicalPlan(chained_logical())
        stage = plan.stage("src")
        stage.add_task("site-a")
        assert stage.state_mb_per_task() == 0.0


class TestStageGraph:
    def test_stage_edges(self):
        plan = PhysicalPlan(chained_logical())
        assert plan.stage_edges == [("agg", "out"), ("src", "agg")]

    def test_upstream_downstream_stages(self):
        plan = PhysicalPlan(chained_logical())
        assert [s.name for s in plan.upstream_stages("agg")] == ["src"]
        assert [s.name for s in plan.downstream_stages("agg")] == ["out"]

    def test_source_and_sink_stages(self):
        plan = PhysicalPlan(fan_in_logical())
        assert {s.name for s in plan.source_stages()} == {"a", "b"}
        assert [s.name for s in plan.sink_stages()] == ["out"]

    def test_unknown_stage_rejected(self):
        with pytest.raises(PlanError):
            PhysicalPlan(chained_logical()).stage("zzz")

    def test_total_parallelism(self):
        plan = PhysicalPlan(chained_logical())
        plan.stage("src").add_task("site-a")
        plan.stage("agg").add_task("x")
        assert plan.total_parallelism() == 2

    def test_deployed_requires_all_stages(self):
        plan = PhysicalPlan(chained_logical())
        assert not plan.deployed()
        for name in plan.stages:
            plan.stage(name).add_task("site-a")
        assert plan.deployed()


class TestExpectedRates:
    def test_rates_through_chain(self):
        plan = PhysicalPlan(chained_logical())
        rates = plan.expected_stage_rates({"src": 1000.0})
        assert rates["src"]["output"] == pytest.approx(500.0)
        assert rates["agg"]["input"] == pytest.approx(500.0)
        assert rates["agg"]["output"] == pytest.approx(5.0)

    def test_fan_in_rates_sum(self):
        plan = PhysicalPlan(fan_in_logical())
        rates = plan.expected_stage_rates({"a": 100.0, "b": 300.0})
        assert rates["u"]["input"] == pytest.approx(200.0)

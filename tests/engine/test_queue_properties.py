"""Hypothesis property tests for FluidQueue vs a naive reference model.

Complements ``test_queue_equivalence.py`` (seeded random op streams against
the verbatim pre-optimization implementation) with *property-based*
coverage: Hypothesis searches the op space for mass-conservation breaks,
fused-vs-compositional divergence and copy-on-write leaks, and shrinks any
counterexample to a minimal op sequence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.queues import (
    FluidQueue,
    Parcel,
    age_parcels,
    parcels_total,
    scale_parcels,
)

counts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
gen_times = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
parcel_lists = st.lists(st.tuples(counts, gen_times), max_size=12)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), counts, gen_times),
        st.tuples(st.just("pop"), counts),
        st.tuples(st.just("drop_oldest"), counts),
        st.tuples(st.just("drop_older_than"), gen_times),
        st.tuples(
            st.just("push_scaled"),
            parcel_lists,
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        ),
        st.tuples(
            st.just("push_aged"),
            parcel_lists,
            st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
        ),
        st.tuples(st.just("clear")),
        st.tuples(st.just("clone_cow")),
    ),
    max_size=25,
)


def fill(pairs) -> FluidQueue:
    queue = FluidQueue()
    for count, gen in pairs:
        queue.push(count, gen)
    return queue


def as_pairs(queue: FluidQueue) -> list[tuple[float, float]]:
    return [(p.count, p.gen_time_s) for p in queue.parcels()]


class TestMassConservation:
    """Events are never created or destroyed by any op sequence.

    The reference model is a pair of running totals maintained naively
    from the op stream; the queue's internal ``_count`` bookkeeping (and
    its parcel list) must track it within float tolerance.
    """

    @given(ops)
    @settings(max_examples=150)
    def test_count_matches_naive_ledger(self, sequence):
        queue = FluidQueue()
        pushed = 0.0
        removed = 0.0
        clones = []
        for op in sequence:
            kind = op[0]
            if kind == "push":
                queue.push(op[1], op[2])
                pushed += op[1]
            elif kind == "pop":
                removed += sum(p.count for p in queue.pop(op[1]))
            elif kind == "drop_oldest":
                removed += queue.drop_oldest(op[1])
            elif kind == "drop_older_than":
                removed += queue.drop_older_than(op[1])
            elif kind == "push_scaled":
                parcels = [Parcel(c, g) for c, g in op[1]]
                pushed += queue.push_scaled(parcels, op[2])
            elif kind == "push_aged":
                parcels = [Parcel(c, g) for c, g in op[1]]
                queue.push_aged(parcels, op[2])
                pushed += parcels_total(parcels)
            elif kind == "clear":
                removed += queue.clear()
            elif kind == "clone_cow":
                clones.append(queue.clone_cow())
            tol = 1e-6 + 1e-9 * max(pushed, removed)
            assert queue.count == pytest.approx(
                pushed - removed, abs=tol
            ), f"ledger diverged after {kind}"
            assert queue.count >= 0.0
            assert parcels_total(queue.parcels()) == pytest.approx(
                queue.count, abs=tol
            )
        del clones  # kept alive so COW sharing stays active throughout

    @given(parcel_lists, counts)
    @settings(max_examples=100)
    def test_pop_returns_exactly_what_leaves(self, pairs, amount):
        queue = fill(pairs)
        before = queue.count
        out: list[Parcel] = []
        popped = queue.pop_into(amount, out)
        assert popped == pytest.approx(
            parcels_total(out), abs=1e-9 + 1e-12 * before
        )
        assert popped <= amount + 1e-9
        assert queue.count + popped == pytest.approx(
            before, abs=1e-9 + 1e-12 * before
        )


class TestFusedEqualsCompositional:
    """The fused hot-path ops are bit-identical to their compositions."""

    @given(
        parcel_lists,
        parcel_lists,
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_push_scaled(self, pairs, extra, factor):
        fused = fill(pairs)
        composed = fused.clone()
        parcels = [Parcel(c, g) for c, g in extra]
        returned = fused.push_scaled(parcels, factor)
        scaled = scale_parcels(parcels, factor)
        composed.push_parcels(scaled)
        assert as_pairs(fused) == as_pairs(composed)
        assert fused.count == composed.count
        assert returned == parcels_total(scaled)

    @given(
        parcel_lists,
        parcel_lists,
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_push_aged(self, pairs, extra, age):
        fused = fill(pairs)
        composed = fused.clone()
        parcels = [Parcel(c, g) for c, g in extra]
        fused.push_aged(parcels, age)
        composed.push_parcels(age_parcels(parcels, age))
        assert as_pairs(fused) == as_pairs(composed)
        assert fused.count == composed.count

    @given(parcel_lists, counts)
    @settings(max_examples=100)
    def test_drop_oldest_leaves_same_tail_as_pop(self, pairs, amount):
        dropper = fill(pairs)
        popper = dropper.clone()
        dropped = dropper.drop_oldest(amount)
        popped = popper.pop(amount)
        assert as_pairs(dropper) == as_pairs(popper)
        assert dropped == pytest.approx(
            parcels_total(popped), abs=1e-9 + 1e-12 * dropped
        )


class TestCopyOnWriteIsolation:
    """clone_cow shares storage but never observable state."""

    @given(parcel_lists, ops)
    @settings(max_examples=100)
    def test_mutating_original_never_touches_clone(self, pairs, sequence):
        queue = fill(pairs)
        snapshot = queue.clone()  # eager, trivially independent
        cow = queue.clone_cow()
        self._apply(queue, sequence)
        assert as_pairs(cow) == as_pairs(snapshot)
        assert cow.count == snapshot.count

    @given(parcel_lists, ops)
    @settings(max_examples=100)
    def test_mutating_clone_never_touches_original(self, pairs, sequence):
        queue = fill(pairs)
        snapshot = queue.clone()
        cow = queue.clone_cow()
        self._apply(cow, sequence)
        assert as_pairs(queue) == as_pairs(snapshot)
        assert queue.count == snapshot.count

    @staticmethod
    def _apply(queue: FluidQueue, sequence) -> None:
        for op in sequence:
            kind = op[0]
            if kind == "push":
                queue.push(op[1], op[2])
            elif kind == "pop":
                queue.pop(op[1])
            elif kind == "drop_oldest":
                queue.drop_oldest(op[1])
            elif kind == "drop_older_than":
                queue.drop_older_than(op[1])
            elif kind == "push_scaled":
                queue.push_scaled([Parcel(c, g) for c, g in op[1]], op[2])
            elif kind == "push_aged":
                queue.push_aged([Parcel(c, g) for c, g in op[1]], op[2])
            elif kind == "clear":
                queue.clear()
            elif kind == "clone_cow":
                queue.clone_cow()

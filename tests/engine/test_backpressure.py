"""Tests for repro.engine.backpressure - observed vs actual rates."""

import pytest

from repro.engine.backpressure import (
    TopologyCapacityModel,
    bottleneck_stages,
    steady_state_rates,
)
from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, sink, source, window_aggregate
from repro.engine.physical import PhysicalPlan
from repro.engine.runtime import EngineRuntime, mbps_to_eps
from tests.engine.test_runtime import ConstantWorkload, build_pipeline


def make_deployed_plan(agg_site="dc-1", agg_cost=1.0):
    ops = [
        source("src", "edge-x", event_bytes=200),
        filter_("flt", selectivity=0.5, event_bytes=100),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5,
                         cost=agg_cost),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )
    plan = PhysicalPlan(logical)
    plan.stage("src").add_task("edge-x")
    plan.stage("agg").add_task(agg_site)
    plan.stage("out").add_task(agg_site)
    return plan


class TestSteadyState:
    def test_unconstrained_ratios_are_one(self, small_topology):
        plan = make_deployed_plan()
        observed = steady_state_rates(
            plan, {"src": 1000.0}, TopologyCapacityModel(small_topology)
        )
        for rates in observed.values():
            assert rates.throughput_ratio == pytest.approx(1.0)

    def test_network_bottleneck_throttles_observed_rates(self, small_topology):
        """Observed input at the bottlenecked stage < unthrottled input -
        the Section 3.3 distortion."""
        plan = make_deployed_plan()
        link_eps = mbps_to_eps(10.0, 100.0)
        rate = link_eps * 4  # post-filter demand = 2x link capacity
        observed = steady_state_rates(
            plan, {"src": rate}, TopologyCapacityModel(small_topology)
        )
        agg = observed["agg"]
        assert agg.input_eps == pytest.approx(link_eps, rel=0.01)
        assert agg.throughput_ratio == pytest.approx(0.5, rel=0.01)

    def test_compute_bottleneck_clips_processing(self, small_topology):
        plan = make_deployed_plan(agg_cost=20.0)  # capacity 2_000 eps
        observed = steady_state_rates(
            plan, {"src": 10_000.0}, TopologyCapacityModel(small_topology)
        )
        agg = observed["agg"]
        assert agg.processed_eps == pytest.approx(2_000.0)
        assert agg.input_eps == pytest.approx(5_000.0)

    def test_downstream_inherits_throttling(self, small_topology):
        """Every stage downstream of the bottleneck observes the lie."""
        plan = make_deployed_plan(agg_cost=20.0)
        observed = steady_state_rates(
            plan, {"src": 10_000.0}, TopologyCapacityModel(small_topology)
        )
        assert observed["out"].throughput_ratio == pytest.approx(
            observed["agg"].throughput_ratio, rel=0.01
        )

    def test_straggler_reflected_in_capacity(self, small_topology):
        plan = make_deployed_plan()
        small_topology.site("dc-1").set_slowdown(10.0)
        observed = steady_state_rates(
            plan, {"src": 10_000.0}, TopologyCapacityModel(small_topology)
        )
        assert observed["agg"].processed_eps == pytest.approx(4_000.0)


class TestBottleneckOrigins:
    def test_no_bottleneck(self, small_topology):
        plan = make_deployed_plan()
        assert bottleneck_stages(
            plan, {"src": 1000.0}, TopologyCapacityModel(small_topology)
        ) == []

    def test_network_origin_identified(self, small_topology):
        # Rate low enough that source ingestion keeps up (its chain caps at
        # 32k eps) but the post-filter stream overflows the 10 Mbps link.
        plan = make_deployed_plan()
        rate = 30_000.0  # post-filter 15k eps > 12.5k eps link capacity
        origins = bottleneck_stages(
            plan, {"src": rate}, TopologyCapacityModel(small_topology)
        )
        assert origins == ["agg"]

    def test_source_ingestion_can_be_the_origin(self, small_topology):
        """At extreme rates the source chain itself clips first."""
        plan = make_deployed_plan()
        origins = bottleneck_stages(
            plan, {"src": 100_000.0}, TopologyCapacityModel(small_topology)
        )
        assert "src" in origins

    def test_compute_origin_identified(self, small_topology):
        plan = make_deployed_plan(agg_cost=20.0)
        origins = bottleneck_stages(
            plan, {"src": 10_000.0}, TopologyCapacityModel(small_topology)
        )
        assert origins == ["agg"]


class TestAgreementWithFluidEngine:
    def test_fluid_engine_converges_to_fixed_point(self, small_topology):
        """The engine's long-run sink throughput equals the analytic
        steady state - the fluid model and the theory agree."""
        link_eps = mbps_to_eps(10.0, 100.0)
        rate = link_eps * 4
        runtime = build_pipeline(small_topology, rate=rate)
        for _ in range(60):
            report = runtime.tick()
        observed = steady_state_rates(
            runtime.plan, {"src": rate},
            TopologyCapacityModel(small_topology),
        )
        assert report.sink_events == pytest.approx(
            observed["out"].output_eps, rel=0.05
        )

    def test_estimator_recovers_actual_from_sources(self, small_topology):
        """Under backpressure the estimator's lambda-hat matches the
        *unthrottled* demand, not the throttled observation (Section 3.3)."""
        from repro.core.estimator import WorkloadEstimator
        from repro.engine.metrics import MetricsWindow

        plan = make_deployed_plan()
        link_eps = mbps_to_eps(10.0, 100.0)
        rate = link_eps * 4
        window = MetricsWindow(
            t_start_s=0.0, t_end_s=40.0, offered_eps=rate,
            source_generation_eps={"src": rate}, stages={},
            sink_source_equiv_eps=0.0, mean_delay_s=0.0,
        )
        estimates = WorkloadEstimator().estimate(plan, window)
        throttled = steady_state_rates(
            plan, {"src": rate}, TopologyCapacityModel(small_topology)
        )
        # The estimator reports twice what the throttled system observes.
        assert estimates["agg"].input_eps == pytest.approx(
            2 * throttled["agg"].input_eps, rel=0.01
        )

"""Tests for repro.engine.logical - plans, signatures, state safety."""

import pytest

from repro.engine.logical import LogicalPlan, can_replace_preserving_state
from repro.engine.operators import (
    filter_,
    join,
    sink,
    source,
    union,
    window_aggregate,
)
from repro.errors import CycleError, PlanError


def linear_plan(name="q"):
    ops = [
        source("src", "site-a"),
        filter_("flt", selectivity=0.5),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5),
        sink("out"),
    ]
    edges = [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    return LogicalPlan.from_edges(name, ops, edges)


class TestConstruction:
    def test_topological_order(self):
        plan = linear_plan()
        names = [op.name for op in plan.topological()]
        assert names == ["src", "flt", "agg", "out"]

    def test_upstream_downstream(self):
        plan = linear_plan()
        assert [o.name for o in plan.upstream("agg")] == ["flt"]
        assert [o.name for o in plan.downstream("flt")] == ["agg"]

    def test_sources_and_sinks(self):
        plan = linear_plan()
        assert [s.name for s in plan.sources()] == ["src"]
        assert [s.name for s in plan.sinks()] == ["out"]

    def test_stateful_operators(self):
        assert [o.name for o in linear_plan().stateful_operators()] == ["agg"]

    def test_contains(self):
        plan = linear_plan()
        assert "agg" in plan and "nope" not in plan

    def test_duplicate_operator_rejected(self):
        with pytest.raises(PlanError):
            LogicalPlan.from_edges(
                "q",
                [source("a", "x"), source("a", "x"), sink("out")],
                [("a", "out")],
            )

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(PlanError):
            LogicalPlan.from_edges(
                "q", [source("a", "x"), sink("out")], [("a", "zzz")]
            )

    def test_self_loop_rejected(self):
        with pytest.raises(PlanError):
            LogicalPlan.from_edges(
                "q", [source("a", "x"), sink("out")],
                [("a", "out"), ("out", "out")],
            )

    def test_cycle_rejected(self):
        ops = [
            source("a", "x"),
            filter_("f1", selectivity=1.0),
            filter_("f2", selectivity=1.0),
            sink("out"),
        ]
        edges = [("a", "f1"), ("f1", "f2"), ("f2", "f1"), ("f1", "out")]
        with pytest.raises((CycleError, PlanError)):
            LogicalPlan.from_edges("q", ops, edges)

    def test_source_with_inputs_rejected(self):
        ops = [source("a", "x"), source("b", "y"), sink("out")]
        with pytest.raises(PlanError):
            LogicalPlan.from_edges("q", ops, [("a", "b"), ("b", "out")])

    def test_dangling_operator_rejected(self):
        ops = [source("a", "x"), filter_("f", selectivity=1.0), sink("out")]
        with pytest.raises(PlanError):
            LogicalPlan.from_edges("q", ops, [("a", "out")])

    def test_plan_without_sink_rejected(self):
        with pytest.raises(PlanError):
            LogicalPlan.from_edges("q", [source("a", "x")], [])


class TestRatePropagation:
    def test_linear_selectivity_chain(self):
        plan = linear_plan()
        rates = plan.propagate_rates({"src": 1000.0})
        assert rates["flt"] == pytest.approx(500.0)
        assert rates["agg"] == pytest.approx(5.0)

    def test_fan_in_sums(self):
        ops = [
            source("a", "x"),
            source("b", "y"),
            union("u"),
            sink("out"),
        ]
        edges = [("a", "u"), ("b", "u"), ("u", "out")]
        plan = LogicalPlan.from_edges("q", ops, edges)
        rates = plan.propagate_rates({"a": 100.0, "b": 50.0})
        assert rates["u"] == pytest.approx(150.0)

    def test_plan_selectivity_unit(self):
        plan = linear_plan()
        assert plan.plan_selectivity() == pytest.approx(0.5 * 0.01)

    def test_plan_selectivity_weighted(self):
        """Weighted conversion: heavy sources dominate (YSB campaign fix)."""
        ops = [
            source("big", "x"),
            source("small", "y"),
            filter_("f", selectivity=0.5),
            union("u"),
            sink("out"),
        ]
        edges = [("big", "f"), ("f", "u"), ("small", "u"), ("u", "out")]
        plan = LogicalPlan.from_edges("q", ops, edges)
        heavy = plan.plan_selectivity({"big": 1000.0, "small": 0.0})
        assert heavy == pytest.approx(0.5)
        light = plan.plan_selectivity({"big": 0.0, "small": 1000.0})
        assert light == pytest.approx(1.0)

    def test_zero_weights_fall_back_to_unit(self):
        plan = linear_plan()
        assert plan.plan_selectivity({"src": 0.0}) == plan.plan_selectivity()


class TestSignatures:
    def test_same_structure_same_signature(self):
        a = linear_plan("a")
        b = linear_plan("b")
        assert a.subplan_signature("agg") == b.subplan_signature("agg")

    def test_different_upstream_different_signature(self):
        a = linear_plan()
        ops = [
            source("src", "site-b"),  # different pinned site
            filter_("flt", selectivity=0.5),
            window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5),
            sink("out"),
        ]
        b = LogicalPlan.from_edges(
            "b", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
        )
        assert a.subplan_signature("agg") != b.subplan_signature("agg")

    def test_signature_ignores_operator_name(self):
        """Signatures are structural: renaming an upstream operator that
        computes the same function must not change the signature."""
        ops = [
            source("src", "site-a"),
            filter_("renamed", selectivity=0.5),
            window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5),
            sink("out"),
        ]
        b = LogicalPlan.from_edges(
            "b", ops, [("src", "renamed"), ("renamed", "agg"), ("agg", "out")]
        )
        assert (
            linear_plan().subplan_signature("agg") == b.subplan_signature("agg")
        )

    def test_stateful_signatures_map(self):
        plan = linear_plan()
        assert set(plan.stateful_signatures()) == {"agg"}


class TestStateSafety:
    """Section 4.3: switching plans must preserve stateful sub-plans."""

    @staticmethod
    def two_join_plan(name, join_left, *, windowed=False):
        """Join tree over sources a, b, c: (left pair) then join with rest."""
        window = 10.0 if windowed else 0.0
        remaining = ({"a", "b", "c"} - set(join_left)).pop()
        ops = [
            source("a", "site-a"),
            source("b", "site-b"),
            source("c", "site-c"),
            join(
                f"join{{{'+'.join(sorted(join_left))}}}",
                selectivity=1.0, state_mb=5, window_s=window,
            ),
            join("join{a+b+c}", selectivity=1.0, state_mb=5, window_s=window),
            sink("out"),
        ]
        first = f"join{{{'+'.join(sorted(join_left))}}}"
        edges = [
            (join_left[0], first),
            (join_left[1], first),
            (first, "join{a+b+c}"),
            (remaining, "join{a+b+c}"),
            ("join{a+b+c}", "out"),
        ]
        return LogicalPlan.from_edges(name, ops, edges)

    def test_incompatible_stateful_subplans_rejected(self):
        """sigma(A|><|B) cannot be recovered by sigma(B|><|C)."""
        ab = self.two_join_plan("p1", ("a", "b"))
        bc = self.two_join_plan("p2", ("b", "c"))
        assert not can_replace_preserving_state(
            ab, bc, allow_window_boundary=False
        )

    def test_identical_stateful_subplans_accepted(self):
        ab1 = self.two_join_plan("p1", ("a", "b"))
        ab2 = self.two_join_plan("p2", ("a", "b"))
        assert can_replace_preserving_state(
            ab1, ab2, allow_window_boundary=False
        )

    def test_window_boundary_exemption(self):
        """Windowed operators can switch at the window boundary."""
        ab = self.two_join_plan("p1", ("a", "b"), windowed=True)
        bc = self.two_join_plan("p2", ("b", "c"), windowed=True)
        assert can_replace_preserving_state(ab, bc)
        assert not can_replace_preserving_state(
            ab, bc, allow_window_boundary=False
        )

    def test_stateless_plans_always_replaceable(self):
        def stateless(name, mid):
            ops = [
                source("a", "x"),
                filter_(mid, selectivity=0.5),
                sink("out"),
            ]
            return LogicalPlan.from_edges(
                name, ops, [("a", mid), (mid, "out")]
            )

        assert can_replace_preserving_state(
            stateless("p1", "f1"), stateless("p2", "f2"),
            allow_window_boundary=False,
        )

"""Plan-cache coherence: caching must be invisible to the simulation.

The engine caches placement-derived execution records (sorted site rows,
fan-out fractions, chained selectivities) keyed by the plan's monotonic
mutation version.  These tests drive a fixed-seed, chaos-enabled
experiment - site crash, bandwidth collapse and straggler landing around
adaptation rounds, so plans mutate mid-run - and require the recorder
output to be bit-identical whether the cache is reused or rebuilt from the
plan on every single tick.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.baselines.variants import wasp
from repro.chaos.faults import BandwidthCollapse, SiteCrash, Straggler
from repro.chaos.injector import ChaosInjector
from repro.engine.runtime import EngineRuntime
from repro.experiments.harness import ExperimentRun
from repro.experiments.scenarios import bottleneck_dynamics, fig8_scenario
from repro.sim.recorder import RunRecorder
from repro.sim.rng import RngRegistry

SEED = 20201207
DURATION_S = 450.0


def _recorder_digest(recorder: RunRecorder) -> str:
    """SHA-256 over every recorded value at full float precision.

    ``repr`` round-trips IEEE-754 doubles exactly, so two digests are equal
    iff the runs are bit-identical.
    """
    h = hashlib.sha256()
    for s in recorder.samples:
        h.update(
            (
                f"{s.t_s!r}|{s.delay_s!r}|{s.processed!r}|{s.offered!r}"
                f"|{s.dropped!r}|{s.parallelism}|{s.extra_slots}\n"
            ).encode()
        )
    for a in recorder.adaptations:
        h.update(f"A|{a.t_s!r}|{a.action}|{a.detail}\n".encode())
    for f in recorder.faults:
        h.update(f"F|{f.t_s!r}|{f.kind}|{f.detail}\n".encode())
    return h.hexdigest()


def _chaos_run_digest(seed: int = SEED) -> str:
    scenario = fig8_scenario("topk-topics")
    rngs = RngRegistry(seed)
    topology = scenario.make_topology(rngs)
    query = scenario.make_query(topology, rngs)
    run = ExperimentRun(topology, query, wasp(), rngs=rngs)
    injector = (
        ChaosInjector(rng=RngRegistry(seed).stream("chaos"))
        .at(120.0, SiteCrash(site="edge-1", duration_s=45.0))
        .at(
            200.0,
            BandwidthCollapse(
                src="dc-oregon", dst="dc-ohio", factor=0.3, duration_s=60.0
            ),
        )
        .at(300.0, Straggler(site="dc-oregon", slowdown=4.0, duration_s=80.0))
    )
    run.attach_chaos(injector)
    run.run(DURATION_S, bottleneck_dynamics())
    assert run.recorder.samples, "scenario produced no samples"
    return _recorder_digest(run.recorder)


def test_fixed_seed_chaos_run_is_deterministic() -> None:
    assert _chaos_run_digest() == _chaos_run_digest()


def test_plan_cache_does_not_change_recorder_output(monkeypatch) -> None:
    """Force a cache rebuild on every tick and compare bit-for-bit.

    If any cached value (site row, fraction, selectivity, source list)
    could drift from the live plan, rebuilding from scratch each tick
    would produce a different run.
    """
    cached = _chaos_run_digest()

    original_tick = EngineRuntime.tick
    rebuilds = {"n": 0}

    def tick_without_cache(self, *args, **kwargs):
        self._exec_cache = None
        rebuilds["n"] += 1
        return original_tick(self, *args, **kwargs)

    monkeypatch.setattr(EngineRuntime, "tick", tick_without_cache)
    uncached = _chaos_run_digest()
    assert rebuilds["n"] > 0
    assert cached == uncached


def test_mutation_version_invalidates_cache() -> None:
    scenario = fig8_scenario("topk-topics")
    rngs = RngRegistry(SEED)
    topology = scenario.make_topology(rngs)
    query = scenario.make_query(topology, rngs)
    run = ExperimentRun(topology, query, wasp(), rngs=rngs)
    runtime = run.runtime
    runtime.tick()
    cache = runtime._exec_cache
    assert cache is not None
    runtime.tick()
    assert runtime._exec_cache is cache  # unchanged plan: cache reused

    stage = next(
        s for s in runtime.plan.topological_stages() if not s.is_source
    )
    site = stage.tasks[0].site
    before = runtime.plan.mutation_version()
    stage.add_task(site)
    assert runtime.plan.mutation_version() > before
    runtime.tick()
    rebuilt = runtime._exec_cache
    assert rebuilt is not cache  # placement change invalidated the cache
    row = next(
        ex for ex in rebuilt.topo if ex.name == stage.name
    )
    counts = {s: n for s, _, n, _ in row.site_rows}
    assert counts == stage.placement()


def test_version_bumps_cover_all_mutation_paths() -> None:
    scenario = fig8_scenario("topk-topics")
    rngs = RngRegistry(SEED)
    topology = scenario.make_topology(rngs)
    query = scenario.make_query(topology, rngs)
    run = ExperimentRun(topology, query, wasp(), rngs=rngs)
    stage = next(
        s for s in run.runtime.plan.topological_stages() if s.tasks
    )
    v = stage.version
    task = stage.add_task(stage.tasks[0].site)
    assert stage.version == v + 1
    stage.remove_task(task)
    assert stage.version == v + 2
    stage.add_task(stage.tasks[0].site)
    stage.remove_task_at(stage.tasks[0].site)
    assert stage.version == v + 4
    snapshot = list(stage.tasks)
    stage.clear_tasks()
    assert stage.version == v + 5 and not stage.tasks
    stage.set_tasks(snapshot)
    assert stage.version == v + 6 and stage.tasks == snapshot


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))

"""Tests for repro.engine.queues - fluid FIFO queues with age accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.queues import (
    FluidQueue,
    Parcel,
    age_parcels,
    parcels_mean_gen_time,
    parcels_total,
    scale_parcels,
)
from repro.errors import SimulationError


class TestPushPop:
    def test_empty_queue(self):
        queue = FluidQueue()
        assert queue.count == 0.0
        assert not queue

    def test_push_accumulates(self):
        queue = FluidQueue()
        queue.push(10.0, 0.0)
        queue.push(5.0, 1.0)
        assert queue.count == 15.0

    def test_pop_fifo_order(self):
        queue = FluidQueue()
        queue.push(10.0, 0.0)
        queue.push(10.0, 1.0)
        popped = queue.pop(10.0)
        assert len(popped) == 1
        assert popped[0].gen_time_s == 0.0

    def test_pop_splits_parcel(self):
        queue = FluidQueue()
        queue.push(10.0, 0.0)
        popped = queue.pop(4.0)
        assert parcels_total(popped) == pytest.approx(4.0)
        assert queue.count == pytest.approx(6.0)

    def test_pop_across_parcels(self):
        queue = FluidQueue()
        queue.push(3.0, 0.0)
        queue.push(3.0, 1.0)
        popped = queue.pop(5.0)
        assert parcels_total(popped) == pytest.approx(5.0)
        assert [p.gen_time_s for p in popped] == [0.0, 1.0]

    def test_pop_more_than_available(self):
        queue = FluidQueue()
        queue.push(3.0, 0.0)
        popped = queue.pop(10.0)
        assert parcels_total(popped) == pytest.approx(3.0)
        assert queue.count == 0.0

    def test_push_zero_is_noop(self):
        queue = FluidQueue()
        queue.push(0.0, 5.0)
        assert len(queue) == 0

    def test_negative_push_rejected(self):
        with pytest.raises(SimulationError):
            FluidQueue().push(-1.0, 0.0)

    def test_negative_pop_rejected(self):
        with pytest.raises(SimulationError):
            FluidQueue().pop(-1.0)

    def test_same_gen_time_parcels_merge(self):
        queue = FluidQueue()
        queue.push(1.0, 5.0)
        queue.push(2.0, 5.0)
        assert len(queue) == 1
        assert queue.count == 3.0


class TestDropping:
    def test_drop_oldest(self):
        queue = FluidQueue()
        queue.push(10.0, 0.0)
        queue.push(10.0, 5.0)
        dropped = queue.drop_oldest(12.0)
        assert dropped == pytest.approx(12.0)
        assert queue.oldest_gen_time_s() == 5.0

    def test_drop_older_than_cutoff(self):
        """The Degrade baseline's move: drop events past the SLO."""
        queue = FluidQueue()
        queue.push(10.0, 0.0)
        queue.push(10.0, 50.0)
        dropped = queue.drop_older_than(10.0)
        assert dropped == pytest.approx(10.0)
        assert queue.count == pytest.approx(10.0)

    def test_drop_older_than_keeps_fresh(self):
        queue = FluidQueue()
        queue.push(10.0, 100.0)
        assert queue.drop_older_than(50.0) == 0.0

    def test_clear(self):
        queue = FluidQueue()
        queue.push(7.0, 0.0)
        assert queue.clear() == pytest.approx(7.0)
        assert not queue


class TestAges:
    def test_mean_age(self):
        queue = FluidQueue()
        queue.push(10.0, 0.0)
        queue.push(10.0, 10.0)
        assert queue.mean_age_s(now_s=20.0) == pytest.approx(15.0)

    def test_mean_age_empty(self):
        assert FluidQueue().mean_age_s(0.0) == 0.0

    def test_oldest_gen_time_none_when_empty(self):
        assert FluidQueue().oldest_gen_time_s() is None


class TestParcelHelpers:
    def test_scale(self):
        parcels = [Parcel(10.0, 0.0), Parcel(20.0, 1.0)]
        scaled = scale_parcels(parcels, 0.5)
        assert parcels_total(scaled) == pytest.approx(15.0)

    def test_scale_zero_returns_empty(self):
        assert scale_parcels([Parcel(10.0, 0.0)], 0.0) == []

    def test_scale_negative_rejected(self):
        with pytest.raises(SimulationError):
            scale_parcels([Parcel(1.0, 0.0)], -1.0)

    def test_age_shifts_gen_time(self):
        aged = age_parcels([Parcel(1.0, 10.0)], 0.5)
        assert aged[0].gen_time_s == pytest.approx(9.5)

    def test_age_negative_rejected(self):
        with pytest.raises(SimulationError):
            age_parcels([Parcel(1.0, 0.0)], -0.1)

    def test_mean_gen_time_weighted(self):
        parcels = [Parcel(30.0, 0.0), Parcel(10.0, 4.0)]
        assert parcels_mean_gen_time(parcels) == pytest.approx(1.0)

    def test_mean_gen_time_empty_rejected(self):
        with pytest.raises(SimulationError):
            parcels_mean_gen_time([])


# ------------------------------------------------------------------------ #
# Property-based invariants
# ------------------------------------------------------------------------ #

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.floats(min_value=0.0, max_value=1e6),
            st.floats(min_value=0.0, max_value=1e6),
        ),
        st.tuples(st.just("pop"), st.floats(min_value=0.0, max_value=1e6)),
    ),
    max_size=60,
)


class TestInvariants:
    @given(operations)
    @settings(max_examples=200)
    def test_mass_conservation(self, ops):
        """pushed == popped + remaining, under any operation sequence."""
        queue = FluidQueue()
        pushed = popped = 0.0
        for op in ops:
            if op[0] == "push":
                queue.push(op[1], op[2])
                pushed += op[1]
            else:
                popped += parcels_total(queue.pop(op[1]))
        assert pushed == pytest.approx(popped + queue.count, abs=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=1e3),
                st.floats(min_value=0.0, max_value=1e3),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_pop_order_is_fifo(self, pushes):
        """Popped parcels appear in push order."""
        queue = FluidQueue()
        for count, gen in pushes:
            queue.push(count, gen)
        popped = queue.pop(sum(c for c, _ in pushes))
        order = [p.gen_time_s for p in popped]
        # Merging only combines *adjacent* equal times, so the output order
        # must match the input order with adjacent duplicates collapsed.
        expected = []
        for _, gen in pushes:
            if not expected or abs(expected[-1] - gen) >= 1e-6:
                expected.append(gen)
        assert len(order) == len(expected)
        for got, want in zip(order, expected):
            assert got == pytest.approx(want)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=1e3),
                st.floats(min_value=0.0, max_value=1e3),
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=2e3),
    )
    def test_drop_older_than_partitions_by_cutoff(self, pushes, cutoff):
        queue = FluidQueue()
        for count, gen in pushes:
            queue.push(count, gen)
        total = queue.count
        dropped = queue.drop_older_than(cutoff)
        # drop_older_than only scans the head: it is exact when stale
        # parcels are oldest-first, which FIFO + monotone gen times give.
        # For arbitrary gen-time order it may under-drop, and parcels whose
        # gen times fall within the merge epsilon of the cutoff may be
        # quantized onto either side - so the upper bound uses the
        # epsilon-widened cutoff.  Conservation always holds.
        upper_bound = sum(c for c, g in pushes if g < cutoff + 1e-6)
        assert dropped <= upper_bound + 1e-6
        assert queue.count == pytest.approx(total - dropped, abs=1e-6)

    @given(st.floats(min_value=0.0, max_value=10.0),
           st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=10))
    def test_scale_preserves_gen_times(self, factor, counts):
        parcels = [Parcel(c, float(i)) for i, c in enumerate(counts)]
        scaled = scale_parcels(parcels, factor)
        if factor > 0:
            assert [p.gen_time_s for p in scaled] == [
                p.gen_time_s for p in parcels
            ]
            assert parcels_total(scaled) == pytest.approx(
                factor * parcels_total(parcels)
            )

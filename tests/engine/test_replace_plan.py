"""Tests for EngineRuntime.replace_plan - re-planning at the engine level."""

import pytest

from repro.config import WaspConfig
from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, sink, source, union, window_aggregate
from repro.engine.physical import PhysicalPlan
from repro.engine.runtime import EngineRuntime, mbps_to_eps
from tests.engine.test_runtime import ConstantWorkload


def variant(name, *, via_relay: bool, agg_cost: float = 2.0):
    """a, b -> (optional relay union) -> final aggregate -> sink."""
    ops = [
        source("a", "edge-x", event_bytes=200),
        source("b", "dc-2", event_bytes=200),
        filter_("fa", selectivity=0.5, event_bytes=100),
        filter_("fb", selectivity=0.5, event_bytes=100),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5,
                         cost=agg_cost),
        sink("out"),
    ]
    edges = [("a", "fa"), ("b", "fb")]
    if via_relay:
        ops.append(union("relay", event_bytes=100))
        edges += [("fa", "relay"), ("fb", "relay"), ("relay", "agg")]
    else:
        edges += [("fa", "agg"), ("fb", "agg")]
    edges.append(("agg", "out"))
    return LogicalPlan.from_edges(name, ops, edges)


def deploy(logical, assignments):
    plan = PhysicalPlan(logical)
    for stage_name, sites in assignments.items():
        for site in sites:
            plan.stage(stage_name).add_task(site)
    return plan


@pytest.fixture
def runtime(small_topology):
    plan = deploy(
        variant("direct", via_relay=False),
        {"a": ["edge-x"], "b": ["dc-2"], "agg": ["dc-1"], "out": ["dc-1"]},
    )
    return EngineRuntime(
        small_topology, plan,
        ConstantWorkload({"a": 1000.0, "b": 1000.0}),
        WaspConfig.paper_defaults(),
    )


class TestPlanSwap:
    def new_plan(self):
        return deploy(
            variant("relayed", via_relay=True),
            {
                "a": ["edge-x"], "b": ["dc-2"], "relay": ["dc-1"],
                "agg": ["dc-1"], "out": ["dc-1"],
            },
        )

    def test_swaps_logical_plan(self, runtime):
        runtime.replace_plan(self.new_plan())
        assert runtime.plan.logical.name == "relayed"

    def test_flow_continues_after_swap(self, runtime):
        for _ in range(10):
            runtime.tick()
        runtime.replace_plan(self.new_plan())
        for _ in range(20):
            report = runtime.tick()
        # 2 sources * 1000 * 0.5 * 0.01 = 10 events/s at the sink.
        assert report.sink_events == pytest.approx(10.0, rel=0.05)

    def test_surviving_stage_keeps_queue(self, small_topology):
        # Build a backlogged agg (compute-bound, co-located with its
        # source), then swap to the relayed plan: the agg stage survives by
        # name and keeps its queued input.
        plan = deploy(
            variant("direct", via_relay=False, agg_cost=20.0),
            {"a": ["edge-x"], "b": ["dc-2"], "agg": ["edge-x"],
             "out": ["edge-x"]},
        )
        runtime = EngineRuntime(
            small_topology, plan,
            ConstantWorkload({"a": 20_000.0, "b": 0.0}),
            WaspConfig.paper_defaults(),
        )
        for _ in range(10):
            runtime.tick()
        queued_before = runtime.input_backlog("agg")
        assert queued_before > 0
        new_plan = deploy(
            variant("relayed", via_relay=True, agg_cost=20.0),
            {
                "a": ["edge-x"], "b": ["dc-2"], "relay": ["edge-x"],
                "agg": ["edge-x"], "out": ["edge-x"],
            },
        )
        runtime.replace_plan(new_plan)
        assert runtime.input_backlog("agg") == pytest.approx(queued_before)

    def test_net_queues_rebind_to_new_downstream(self, small_topology):
        """In-flight traffic from a surviving source re-binds to the new
        consumer when the old edge disappears."""
        plan = deploy(
            variant("direct", via_relay=False),
            {"a": ["edge-x"], "b": ["dc-2"], "agg": ["dc-1"],
             "out": ["dc-1"]},
        )
        rate = mbps_to_eps(10.0, 100.0) * 4
        runtime = EngineRuntime(
            small_topology, plan,
            ConstantWorkload({"a": rate, "b": 0.0}),
            WaspConfig.paper_defaults(),
        )
        for _ in range(10):
            runtime.tick()
        assert runtime.net_backlog_for("agg")
        runtime.replace_plan(self.new_plan())
        # The a -> agg edge no longer exists; the queue now feeds the relay.
        assert runtime.net_backlog_for("relay")
        assert not runtime.net_backlog_for("agg")

    def test_conversion_constants_refresh(self, runtime):
        for _ in range(5):
            runtime.tick()
        before = runtime.sink_source_equiv(1.0)
        runtime.replace_plan(self.new_plan())
        after = runtime.sink_source_equiv(1.0)
        # Same plan selectivity (the relay is a pure union): conversion is
        # stable across the swap.
        assert after == pytest.approx(before)

    def test_mass_conserved_across_swap(self, small_topology):
        plan = deploy(
            variant("direct", via_relay=False),
            {"a": ["edge-x"], "b": ["dc-2"], "agg": ["dc-1"],
             "out": ["dc-1"]},
        )
        rate = mbps_to_eps(10.0, 100.0) * 4
        runtime = EngineRuntime(
            small_topology, plan,
            ConstantWorkload({"a": rate, "b": 0.0}),
            WaspConfig.paper_defaults(),
        )
        for _ in range(10):
            runtime.tick()
        backlog_before = runtime.total_backlog()
        runtime.replace_plan(self.new_plan())
        assert runtime.total_backlog() == pytest.approx(
            backlog_before, rel=1e-9
        )
